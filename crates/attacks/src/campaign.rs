//! Coordinated multi-attacker campaigns.
//!
//! The paper's security analysis (Sec. 4) considers lone adversaries; the
//! secure-clock-sync requirements literature (Narula & Humphreys 2018,
//! Annessi et al. 2017) makes clear that *colluding insiders* and
//! *reactive jamming keyed to the protocol's own schedule* are the attacks
//! that actually break multicast time synchronization. This module
//! coordinates several compromised stations through one shared
//! [`CampaignSpec`]:
//!
//! * **Coalition** — a fast-beacon leader and replay amplifiers take
//!   turns (beacon-period parity) so exactly one colluder owns slot 0
//!   each BP: the leader wins contention with guard-passing erroneous
//!   timestamps while the amplifiers magnify the offset by replaying
//!   recorded beacons with a configurable delay. Against TSF the rotation
//!   suppresses every legitimate beacon; against SSTSP the replays die on
//!   µTESLA's interval check and the leader's influence stays under δ.
//! * **Sybil candidacy flood** ([`CampaignKind::SybilFlood`]) — colluders
//!   flood the earliest election-candidacy slots of per-domain reference
//!   election, deterministically out-competing every honest candidate the
//!   moment a domain falls silent, and hold the captured role by
//!   re-flooding each BP. µTESLA forces them to sign with their own
//!   published chains and the guard bounds the time error they can inject.
//! * **Reactive reference-slot jammer** ([`CampaignKind::RefSlotJam`]) —
//!   tracks the sitting reference through its wrapped honest receiver and
//!   transmits *only* in that reference's beacon slot, following
//!   re-elections to the new winner's slot. Everything outside the tracked
//!   slot is left untouched (see the `jammer_slot_props` proptest).
//!
//! Members coordinate without any shared runtime state: the plan assigns
//! roles and transmission parity purely from each member's index, so the
//! campaign is deterministic and replayable.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use mac80211::frame::BeaconBody;
use protocols::api::{
    BeaconIntent, BeaconPayload, MeshRole, NodeCtx, NodeId, ReceivedBeacon, SyncProtocol,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sstsp_crypto::{ChainElement, IntervalSchedule, MuTeslaSigner};
use sstsp_telemetry as telemetry;

/// How many tape entries a coalition amplifier keeps (oldest evicted).
const AMPLIFIER_TAPE: usize = 8;

/// Per-member transmission counters (fixed keys: telemetry requires
/// `'static` names). Members past the table share the overflow key.
const MEMBER_TX_KEYS: [&str; 8] = [
    "campaign.member.0.tx",
    "campaign.member.1.tx",
    "campaign.member.2.tx",
    "campaign.member.3.tx",
    "campaign.member.4.tx",
    "campaign.member.5.tx",
    "campaign.member.6.tx",
    "campaign.member.7.tx",
];

/// The coordinated behavior a campaign's members execute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CampaignKind {
    /// Colluding fast-beacon leader + replay amplifiers rotating ownership
    /// of slot 0 by BP parity.
    Coalition {
        /// Leader timestamp error, µs slower than its clock (crafted to
        /// pass the guard check when under δ).
        error_us: f64,
        /// Amplifier replay delay in beacon periods (≥ 1).
        delay_bps: u32,
    },
    /// Sybil-style candidacy flooding against (per-domain) reference
    /// election.
    SybilFlood {
        /// Timestamp error of the flooded candidacies, µs.
        error_us: f64,
    },
    /// Reactive selective jammer firing only in the sitting reference's
    /// beacon slot, tracking re-elections.
    RefSlotJam,
}

impl CampaignKind {
    /// Spec-grammar token naming this kind.
    pub fn token(&self) -> &'static str {
        match self {
            CampaignKind::Coalition { .. } => "coalition",
            CampaignKind::SybilFlood { .. } => "sybil",
            CampaignKind::RefSlotJam => "jamref",
        }
    }
}

/// The role a member index plays under a campaign kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignRole {
    /// Coalition member 0: fast-beacon contention winner.
    Leader,
    /// Coalition members 1..: delayed-replay offset magnifiers.
    Amplifier,
    /// Candidacy flooder.
    Sybil,
    /// Reference-slot jammer.
    Jammer,
}

impl CampaignRole {
    /// Stable lowercase token used in `campaign` trace events.
    pub fn token(&self) -> &'static str {
        match self {
            CampaignRole::Leader => "leader",
            CampaignRole::Amplifier => "amplifier",
            CampaignRole::Sybil => "sybil",
            CampaignRole::Jammer => "jammer",
        }
    }
}

/// A shared campaign plan: kind, coalition size and activity window.
///
/// The engine compromises the `attackers` highest-id island stations (the
/// tail of the last island for bridged meshes, the tail of the id space
/// otherwise) and hands every member the same spec plus its index; all
/// coordination derives deterministically from `(spec, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Coordinated behavior.
    pub kind: CampaignKind,
    /// Number of colluding stations (≥ 2 for coalitions, ≥ 1 otherwise).
    pub attackers: u32,
    /// Campaign start, seconds of synchronized time.
    pub start_s: f64,
    /// Campaign end, seconds of synchronized time.
    pub end_s: f64,
}

impl CampaignSpec {
    /// The role member `idx` (0-based) plays.
    pub fn role_of(&self, idx: u32) -> CampaignRole {
        match self.kind {
            CampaignKind::Coalition { .. } => {
                if idx == 0 {
                    CampaignRole::Leader
                } else {
                    CampaignRole::Amplifier
                }
            }
            CampaignKind::SybilFlood { .. } => CampaignRole::Sybil,
            CampaignKind::RefSlotJam => CampaignRole::Jammer,
        }
    }

    /// Smallest colluding subset that still is this campaign (shrink
    /// floor): a coalition needs a leader and one amplifier.
    pub fn min_attackers(&self) -> u32 {
        match self.kind {
            CampaignKind::Coalition { .. } => 2,
            _ => 1,
        }
    }

    /// Validate field ranges, naming the offending token.
    pub fn validate(&self) -> Result<(), String> {
        if self.attackers < self.min_attackers() {
            return Err(format!(
                "campaign `{}` needs at least {} attacker(s), got {} (token `attackers`)",
                self.kind.token(),
                self.min_attackers(),
                self.attackers
            ));
        }
        match self.kind {
            CampaignKind::Coalition {
                error_us,
                delay_bps,
            } => {
                if !error_us.is_finite() || error_us < 0.0 {
                    return Err(format!(
                        "campaign error must be finite and non-negative, got {error_us} (token `error_us`)"
                    ));
                }
                if delay_bps == 0 {
                    return Err(
                        "campaign replay delay must be at least 1 BP (token `delay_bps`)".into(),
                    );
                }
            }
            CampaignKind::SybilFlood { error_us } => {
                if !error_us.is_finite() || error_us < 0.0 {
                    return Err(format!(
                        "campaign error must be finite and non-negative, got {error_us} (token `error_us`)"
                    ));
                }
            }
            CampaignKind::RefSlotJam => {}
        }
        if !self.start_s.is_finite() || self.start_s < 0.0 {
            return Err(format!(
                "campaign start must be finite and non-negative, got {} (token `start_s`)",
                self.start_s
            ));
        }
        if !self.end_s.is_finite() || self.end_s <= self.start_s {
            return Err(format!(
                "campaign window is empty: start {} end {} (token `end_s`)",
                self.start_s, self.end_s
            ));
        }
        Ok(())
    }

    /// Whether synchronized second `t_s` is inside the activity window.
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

/// `coalition:K:ERR:DELAY:START:END`, `sybil:K:ERR:START:END`,
/// `jamref:K:START:END` — the inverse of [`CampaignSpec::from_str`].
impl fmt::Display for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CampaignKind::Coalition {
                error_us,
                delay_bps,
            } => write!(
                f,
                "coalition:{}:{}:{}:{}:{}",
                self.attackers, error_us, delay_bps, self.start_s, self.end_s
            ),
            CampaignKind::SybilFlood { error_us } => write!(
                f,
                "sybil:{}:{}:{}:{}",
                self.attackers, error_us, self.start_s, self.end_s
            ),
            CampaignKind::RefSlotJam => write!(
                f,
                "jamref:{}:{}:{}",
                self.attackers, self.start_s, self.end_s
            ),
        }
    }
}

fn field<T: FromStr>(parts: &[&str], i: usize, name: &str) -> Result<T, String> {
    let raw = parts
        .get(i)
        .ok_or_else(|| format!("campaign spec missing token `{name}`"))?;
    raw.parse()
        .map_err(|_| format!("invalid campaign value `{raw}` (token `{name}`)"))
}

impl FromStr for CampaignSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let (kind, want) = match parts[0] {
            "coalition" => (
                CampaignKind::Coalition {
                    error_us: field(&parts, 2, "error_us")?,
                    delay_bps: field(&parts, 3, "delay_bps")?,
                },
                6,
            ),
            "sybil" => (
                CampaignKind::SybilFlood {
                    error_us: field(&parts, 2, "error_us")?,
                },
                5,
            ),
            "jamref" => (CampaignKind::RefSlotJam, 4),
            other => {
                return Err(format!(
                    "unknown campaign kind `{other}` (expected coalition/sybil/jamref)"
                ))
            }
        };
        if parts.len() != want {
            return Err(format!(
                "campaign `{}` takes {} `:`-separated values, got {}",
                parts[0],
                want - 1,
                parts.len() - 1
            ));
        }
        let spec = CampaignSpec {
            kind,
            attackers: field(&parts, 1, "attackers")?,
            start_s: field(&parts, want - 2, "start_s")?,
            end_s: field(&parts, want - 1, "end_s")?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// One compromised station executing its share of a campaign.
///
/// Wraps an honest protocol instance exactly like
/// [`FastBeaconAttacker`](crate::FastBeaconAttacker): outside the window
/// the member behaves like any station (which keeps it synchronized enough
/// to know the µTESLA interval, craft guard-passing timestamps, and track
/// the sitting reference); inside the window it executes its role.
pub struct CampaignMember<P: SyncProtocol> {
    spec: CampaignSpec,
    idx: u32,
    inner: P,
    /// Whether crafted beacons carry µTESLA fields (campaign against
    /// SSTSP) or are plain TSF beacons.
    secured: bool,
    mesh_role: Option<MeshRole>,
    signer: Option<MuTeslaSigner>,
    seq: u32,
    /// Own BP counter, driving the coalition's transmission parity.
    bp: u64,
    /// Amplifier tape: (age in BPs, recorded beacon), oldest first.
    tape: VecDeque<(u32, BeaconPayload)>,
    armed: Option<BeaconPayload>,
    /// Beacons this member actually got on the air while attacking.
    pub beacons_sent: u64,
}

impl<P: SyncProtocol> CampaignMember<P> {
    /// Wrap `inner` as campaign member `idx` of `spec.attackers`.
    pub fn new(spec: CampaignSpec, idx: u32, inner: P, secured: bool) -> Self {
        assert!(idx < spec.attackers, "member index out of range");
        spec.validate().expect("campaign spec must be valid");
        CampaignMember {
            spec,
            idx,
            inner,
            secured,
            mesh_role: None,
            signer: None,
            seq: 0,
            bp: 0,
            tape: VecDeque::new(),
            armed: None,
            beacons_sent: 0,
        }
    }

    /// The wrapped honest protocol (for inspection).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// This member's role under the shared plan.
    pub fn role(&self) -> CampaignRole {
        self.spec.role_of(self.idx)
    }

    fn active(&self, local_us: f64) -> bool {
        self.spec.active_at(self.inner.clock_us(local_us) / 1e6)
    }

    /// BP-parity rotation: exactly one coalition member owns slot 0 each
    /// BP, so colluders never collide with each other.
    fn my_turn(&self) -> bool {
        self.bp % self.spec.attackers as u64 == self.idx as u64
    }

    fn gap(&self, ctx: &NodeCtx<'_>) -> u32 {
        ctx.config.beacon_airtime_slots + 1
    }

    /// The slot the sitting reference `r` beacons in: the per-domain
    /// staggered slot when mesh roles were distributed, slot 0 otherwise
    /// (mirrors the SSTSP slot plan).
    fn reference_slot_of(&self, r: NodeId, ctx: &NodeCtx<'_>) -> u32 {
        match &self.mesh_role {
            Some(role) => role.domain_of(r) * self.gap(ctx),
            None => 0,
        }
    }

    /// The candidacy slot a sybil member floods. With mesh roles:
    /// `(num_domains + idx) · gap` — earlier than every honest candidacy
    /// (honest station `i` contends at `(num_domains + i) · gap` and
    /// member indices start at 0), so the flood deterministically wins any
    /// election in the member's collision domain. Without roles the
    /// secured variant floods the first post-reference slots; the plain
    /// variant (against TSF, which has no election) degrades to staggered
    /// contention-winning suppression from slot 0.
    fn sybil_slot(&self, ctx: &NodeCtx<'_>) -> u32 {
        let gap = self.gap(ctx);
        match (&self.mesh_role, self.secured) {
            (Some(role), _) => (role.num_domains + self.idx) * gap,
            (None, true) => (1 + self.idx) * gap,
            (None, false) => self.idx * gap,
        }
    }

    /// See [`FastBeaconAttacker`](crate::FastBeaconAttacker): an internal
    /// adversary signs with its compromised station's published chain, or
    /// publishes one of its own when the wrapped protocol has none.
    fn ensure_signer(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.signer.is_none() {
            let sched = IntervalSchedule::new(0.0, ctx.config.bp_us, ctx.config.total_intervals);
            if let Some(seed) = self.inner.chain_seed() {
                self.signer = Some(MuTeslaSigner::new(seed, sched));
                return;
            }
            let mut seed: ChainElement = [0u8; 16];
            ctx.rng.fill(&mut seed);
            let signer = MuTeslaSigner::new(seed, sched);
            ctx.anchors.publish(ctx.id, signer.anchor());
            self.signer = Some(signer);
        }
    }

    /// A fast-beacon body `error_us` slower than the member's clock,
    /// signed with its own chain when secured.
    fn craft(&mut self, ctx: &mut NodeCtx<'_>, error_us: f64) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        let clock = self.inner.clock_us(ctx.local_us);
        let body = BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: (clock - error_us).max(0.0) as u64,
            root: ctx.id,
            hop: 0,
        };
        if self.secured {
            self.ensure_signer(ctx);
            let j = ((clock / ctx.config.bp_us).round().max(1.0) as usize)
                .min(ctx.config.total_intervals);
            let signer = self.signer.as_mut().expect("signer ensured");
            let auth = signer.sign(&body.auth_bytes(), j);
            BeaconPayload::Secured(body, auth)
        } else {
            BeaconPayload::Plain(body)
        }
    }

    fn count_tx(&self) {
        telemetry::counter_add("campaign.tx", 1);
        let key = MEMBER_TX_KEYS[(self.idx as usize).min(MEMBER_TX_KEYS.len() - 1)];
        telemetry::counter_add(key, 1);
    }
}

impl<P: SyncProtocol> SyncProtocol for CampaignMember<P> {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.active(ctx.local_us) {
            return self.inner.intent(ctx);
        }
        match self.role() {
            CampaignRole::Leader => {
                if self.my_turn() {
                    BeaconIntent::FixedSlot(0)
                } else {
                    BeaconIntent::Silent
                }
            }
            CampaignRole::Amplifier => {
                if !self.my_turn() {
                    return BeaconIntent::Silent;
                }
                if self.armed.is_none() {
                    let delay = match self.spec.kind {
                        CampaignKind::Coalition { delay_bps, .. } => delay_bps,
                        _ => unreachable!("amplifiers only exist in coalitions"),
                    };
                    if let Some(&(age, payload)) = self.tape.front() {
                        if age >= delay {
                            self.tape.pop_front();
                            self.armed = Some(payload);
                        }
                    }
                }
                if self.armed.is_some() {
                    BeaconIntent::FixedSlot(0)
                } else {
                    BeaconIntent::Silent
                }
            }
            CampaignRole::Sybil => BeaconIntent::FixedSlot(self.sybil_slot(ctx)),
            CampaignRole::Jammer => {
                if !self.secured {
                    // No reference concept to track in the TSF family: jam
                    // the contention window's first slot.
                    return BeaconIntent::FixedSlot(0);
                }
                match self.inner.current_reference() {
                    Some(r) => BeaconIntent::FixedSlot(self.reference_slot_of(r, ctx)),
                    // No sitting reference (election in progress): a
                    // *selective* jammer stays silent rather than spraying.
                    None => BeaconIntent::Silent,
                }
            }
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        if !self.active(ctx.local_us) {
            return self.inner.make_beacon(ctx);
        }
        self.beacons_sent += 1;
        self.count_tx();
        match self.role() {
            CampaignRole::Leader => {
                let error_us = match self.spec.kind {
                    CampaignKind::Coalition { error_us, .. } => error_us,
                    _ => unreachable!(),
                };
                self.craft(ctx, error_us)
            }
            CampaignRole::Amplifier => {
                self.armed.take().unwrap_or_else(|| {
                    // Defensive: an amplifier only bids for the channel
                    // with a replay armed; an empty chamber degrades to a
                    // plain stale beacon.
                    self.seq = self.seq.wrapping_add(1);
                    BeaconPayload::Plain(BeaconBody {
                        src: ctx.id,
                        seq: self.seq,
                        timestamp_us: 0,
                        root: ctx.id,
                        hop: 0,
                    })
                })
            }
            CampaignRole::Sybil => {
                let error_us = match self.spec.kind {
                    CampaignKind::SybilFlood { error_us } => error_us,
                    _ => unreachable!(),
                };
                self.craft(ctx, error_us)
            }
            CampaignRole::Jammer => {
                // Energy in the victim's slot; the content is an obviously
                // stale plain beacon no receiver disciplines to.
                self.seq = self.seq.wrapping_add(1);
                BeaconPayload::Plain(BeaconBody {
                    src: ctx.id,
                    seq: self.seq,
                    timestamp_us: 0,
                    root: ctx.id,
                    hop: 0,
                })
            }
        }
    }

    fn on_tx_outcome(&mut self, ctx: &mut NodeCtx<'_>, collided: bool) {
        if !self.active(ctx.local_us) {
            self.inner.on_tx_outcome(ctx, collided);
            return;
        }
        // Collisions are the jammer's product and do not deter anyone.
        if collided {
            telemetry::counter_add("campaign.collisions", 1);
        }
    }

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        // The inner protocol stays synchronized (that is what makes forged
        // timestamps guard-passing and reference tracking current).
        self.inner.on_beacon(ctx, rx);
        if matches!(self.role(), CampaignRole::Amplifier) {
            if self.tape.len() == AMPLIFIER_TAPE {
                self.tape.pop_back();
            }
            self.tape.push_back((0, rx.payload));
        }
    }

    fn on_bp_end(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_bp_end(ctx);
        self.bp += 1;
        for (age, _) in self.tape.iter_mut() {
            *age += 1;
        }
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.inner.clock_us(local_us)
    }

    fn on_join(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_join(ctx);
    }

    fn on_leave(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_leave(ctx);
    }

    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.init(ctx);
    }

    fn chain_seed(&self) -> Option<ChainElement> {
        self.inner.chain_seed()
    }

    fn set_mesh_role(&mut self, role: MeshRole) {
        self.mesh_role = Some(role.clone());
        self.inner.set_mesh_role(role);
    }

    fn is_reference(&self) -> bool {
        self.inner.is_reference()
    }

    fn is_synchronized(&self) -> bool {
        self.inner.is_synchronized()
    }

    fn name(&self) -> &'static str {
        "CampaignMember"
    }

    fn sstsp_stats(&self) -> Option<protocols::sstsp::SstspStats> {
        self.inner.sstsp_stats()
    }

    fn current_reference(&self) -> Option<NodeId> {
        self.inner.current_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::api::{AnchorRegistry, ProtocolConfig};
    use protocols::TsfNode;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use std::sync::Arc;

    fn coalition(attackers: u32) -> CampaignSpec {
        CampaignSpec {
            kind: CampaignKind::Coalition {
                error_us: 30.0,
                delay_bps: 2,
            },
            attackers,
            start_s: 20.0,
            end_s: 40.0,
        }
    }

    struct Env {
        config: ProtocolConfig,
        anchors: AnchorRegistry,
        rng: ChaCha12Rng,
    }

    impl Env {
        fn new() -> Self {
            Env {
                config: ProtocolConfig::paper(),
                anchors: AnchorRegistry::new(),
                rng: ChaCha12Rng::seed_from_u64(5),
            }
        }
        fn ctx(&mut self, local_us: f64) -> NodeCtx<'_> {
            NodeCtx {
                id: 99,
                local_us,
                rng: &mut self.rng,
                anchors: &mut self.anchors,
                config: &self.config,
            }
        }
    }

    #[test]
    fn spec_round_trips_through_display() {
        for spec in [
            coalition(3),
            CampaignSpec {
                kind: CampaignKind::SybilFlood { error_us: 120.5 },
                attackers: 2,
                start_s: 6.0,
                end_s: 12.25,
            },
            CampaignSpec {
                kind: CampaignKind::RefSlotJam,
                attackers: 1,
                start_s: 0.0,
                end_s: 1.5,
            },
        ] {
            let s = spec.to_string();
            assert_eq!(s.parse::<CampaignSpec>().unwrap(), spec, "spec `{s}`");
        }
    }

    #[test]
    fn malformed_specs_name_the_bad_token() {
        for (bad, token) in [
            ("warp:2:20:40", "unknown campaign kind"),
            ("coalition:1:30:2:20:40", "`attackers`"),
            ("coalition:2:nan:2:20:40", "`error_us`"),
            ("coalition:2:30:0:20:40", "`delay_bps`"),
            ("sybil:0:30:20:40", "`attackers`"),
            ("sybil:2:30:40:40", "`end_s`"),
            ("jamref:1:40:20", "`end_s`"),
            ("jamref:1:-3:20", "`start_s`"),
            ("jamref:1:20", "takes 3"),
            ("jamref:1:20:30:7", "takes 3"),
        ] {
            let err = bad.parse::<CampaignSpec>().unwrap_err();
            assert!(err.contains(token), "`{bad}` → `{err}` lacks `{token}`");
        }
    }

    #[test]
    fn coalition_members_rotate_slot_zero_without_self_collision() {
        let spec = coalition(3);
        let mut members: Vec<_> = (0..3)
            .map(|i| CampaignMember::new(spec, i, TsfNode::new(), false))
            .collect();
        let mut env = Env::new();
        // An amplifier bids only once its oldest taped beacon has aged past
        // the replay delay (2 BPs here): member 1's first turn comes too
        // early and it sits out, so the channel is never double-booked.
        let expected: [&[u32]; 9] = [&[0], &[], &[2], &[0], &[1], &[2], &[0], &[1], &[2]];
        for (bp, want) in expected.iter().enumerate() {
            let heard = BeaconPayload::Plain(BeaconBody {
                src: 3,
                seq: bp as u32,
                timestamp_us: 30_000_000,
                root: 3,
                hop: 0,
            });
            let mut fixed = Vec::new();
            for m in members.iter_mut() {
                m.on_beacon(
                    &mut env.ctx(30e6),
                    ReceivedBeacon {
                        payload: heard,
                        local_rx_us: 30e6,
                    },
                );
                if m.intent(&mut env.ctx(30e6)) == BeaconIntent::FixedSlot(0) {
                    fixed.push(m.idx);
                }
            }
            assert_eq!(&fixed, want, "BP {bp}: one colluder at most owns slot 0");
            for m in members.iter_mut() {
                m.on_bp_end(&mut env.ctx(30e6));
            }
        }
    }

    #[test]
    fn members_behave_honestly_outside_window() {
        let mut m = CampaignMember::new(coalition(2), 0, TsfNode::new(), false);
        let mut env = Env::new();
        assert_eq!(m.intent(&mut env.ctx(10e6)), BeaconIntent::Contend);
        let b = m.make_beacon(&mut env.ctx(10e6));
        assert_eq!(b.body().timestamp_us, 10_000_000);
        assert_eq!(m.beacons_sent, 0);
    }

    #[test]
    fn leader_crafts_guard_passing_secured_beacons() {
        let mut m = CampaignMember::new(coalition(2), 0, TsfNode::new(), true);
        let mut env = Env::new();
        let b = m.make_beacon(&mut env.ctx(30e6));
        assert!(b.is_secured());
        assert_eq!(b.body().timestamp_us, 30_000_000 - 30);
        assert!(env.anchors.get(99).is_some(), "own anchor published");
        assert_eq!(m.beacons_sent, 1);
    }

    #[test]
    fn amplifier_replays_a_taped_beacon_after_the_delay() {
        let mut m = CampaignMember::new(coalition(2), 1, TsfNode::new(), false);
        let mut env = Env::new();
        let taped = BeaconPayload::Plain(BeaconBody {
            src: 3,
            seq: 41,
            timestamp_us: 29_000_000,
            root: 3,
            hop: 0,
        });
        m.on_beacon(
            &mut env.ctx(29e6),
            ReceivedBeacon {
                payload: taped,
                local_rx_us: 29e6,
            },
        );
        // Tape too fresh: the amplifier sits out its first turns.
        m.on_bp_end(&mut env.ctx(30e6)); // bp=1: amplifier's turn, age 1 < 2
        assert_eq!(m.intent(&mut env.ctx(30e6)), BeaconIntent::Silent);
        m.on_bp_end(&mut env.ctx(30e6));
        m.on_bp_end(&mut env.ctx(30e6)); // bp=3: its turn again, age 3 ≥ 2
        assert_eq!(m.intent(&mut env.ctx(30e6)), BeaconIntent::FixedSlot(0));
        assert_eq!(m.make_beacon(&mut env.ctx(30e6)), taped);
    }

    fn mesh_role(domain: u32, num_domains: u32, domain_of: Vec<u32>) -> MeshRole {
        MeshRole {
            domain,
            num_domains,
            bridge_index: None,
            domain_of: Arc::new(domain_of),
            bridges: Arc::new(vec![]),
        }
    }

    #[test]
    fn sybil_floods_the_earliest_candidacy_slot_of_its_domain() {
        let spec = CampaignSpec {
            kind: CampaignKind::SybilFlood { error_us: 30.0 },
            attackers: 2,
            start_s: 20.0,
            end_s: 40.0,
        };
        let mut m = CampaignMember::new(spec, 0, TsfNode::new(), true);
        m.set_mesh_role(mesh_role(1, 2, vec![0, 0, 0, 1, 1, 1]));
        let mut env = Env::new();
        // gap = airtime+1 = 8; earliest candidacy slot = num_domains·gap.
        assert_eq!(m.intent(&mut env.ctx(30e6)), BeaconIntent::FixedSlot(16));
        // Honest station 3's candidacy slot is (2+3)·8 = 40: the flood wins.
    }

    #[test]
    fn jammer_tracks_the_sitting_reference_slot() {
        let spec = CampaignSpec {
            kind: CampaignKind::RefSlotJam,
            attackers: 1,
            start_s: 20.0,
            end_s: 40.0,
        };
        // TSF inner has no reference concept: the secured jammer stays
        // silent rather than guessing.
        let mut m = CampaignMember::new(spec, 0, TsfNode::new(), true);
        m.set_mesh_role(mesh_role(1, 2, vec![0, 0, 0, 1, 1, 1]));
        let mut env = Env::new();
        assert_eq!(m.intent(&mut env.ctx(30e6)), BeaconIntent::Silent);
        // The plain variant jams TSF's contention floor.
        let mut p = CampaignMember::new(spec, 0, TsfNode::new(), false);
        assert_eq!(p.intent(&mut env.ctx(30e6)), BeaconIntent::FixedSlot(0));
        let b = p.make_beacon(&mut env.ctx(30e6));
        assert_eq!(b.body().timestamp_us, 0, "content no receiver adopts");
    }
}
