//! Replay attacker.
//!
//! Records legitimate synchronization beacons and re-transmits them
//! `delay_bps` beacon periods later "to deliberately magnify the offset of
//! the time declared in the replayed message and actual time" (Sec. 4).
//! With `delay_bps = 1` and a jammed original this is the *pulse-delay*
//! attack of Ganeriwal et al. (the paper's reference \[8\]).
//!
//! Against SSTSP the attack is defeated twice over: the µTESLA interval
//! check rejects beacons whose interval index does not match the receiver's
//! current interval, and the guard time rejects the stale timestamp.

use protocols::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use std::collections::VecDeque;

/// A station that records and replays beacons.
pub struct ReplayAttacker {
    /// Recorded beacons with their age in BPs.
    tape: VecDeque<(u32, BeaconPayload)>,
    /// Replay delay in beacon periods (≥ 1).
    delay_bps: u32,
    /// Attack window in the attacker's local clock, µs.
    start_us: f64,
    /// End of window.
    end_us: f64,
    /// Replays transmitted.
    pub replays_sent: u64,
    armed: Option<BeaconPayload>,
}

impl ReplayAttacker {
    /// Replay each overheard beacon `delay_bps` BPs later during
    /// `[start_us, end_us)` of the attacker's clock.
    pub fn new(delay_bps: u32, start_us: f64, end_us: f64) -> Self {
        assert!(delay_bps >= 1, "replay needs at least one BP of delay");
        ReplayAttacker {
            tape: VecDeque::new(),
            delay_bps,
            start_us,
            end_us,
            replays_sent: 0,
            armed: None,
        }
    }

    fn active(&self, local_us: f64) -> bool {
        local_us >= self.start_us && local_us < self.end_us
    }
}

impl SyncProtocol for ReplayAttacker {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.active(ctx.local_us) {
            return BeaconIntent::Silent;
        }
        // Age the tape; arm the oldest sufficiently delayed recording.
        if self.armed.is_none() {
            if let Some(&(age, payload)) = self.tape.front() {
                if age >= self.delay_bps {
                    self.armed = Some(payload);
                    self.tape.pop_front();
                }
            }
        }
        if self.armed.is_some() {
            // Grab the window start so the replay reliably beats honest
            // contenders (a replayed reference beacon would also be slot 0).
            BeaconIntent::FixedSlot(0)
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, _ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.replays_sent += 1;
        self.armed
            .take()
            .expect("armed payload present when transmitting")
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, _ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        // Record everything; cap the tape to a few BPs of material.
        if self.tape.len() >= 8 {
            self.tape.pop_front();
        }
        self.tape.push_back((0, rx.payload));
    }

    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {
        for (age, _) in &mut self.tape {
            *age += 1;
        }
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        // The replay attacker does not maintain a synchronized clock.
        local_us
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {}

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {}

    fn name(&self) -> &'static str {
        "ReplayAttacker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac80211::frame::BeaconBody;
    use protocols::api::{AnchorRegistry, ProtocolConfig};
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn beacon(ts: u64) -> ReceivedBeacon {
        ReceivedBeacon {
            payload: BeaconPayload::Plain(BeaconBody {
                src: 1,
                seq: 0,
                timestamp_us: ts,
                root: 1,
                hop: 0,
            }),
            local_rx_us: 0.0,
        }
    }

    struct Env {
        config: ProtocolConfig,
        anchors: AnchorRegistry,
        rng: ChaCha12Rng,
    }
    impl Env {
        fn new() -> Self {
            Env {
                config: ProtocolConfig::paper(),
                anchors: AnchorRegistry::new(),
                rng: ChaCha12Rng::seed_from_u64(9),
            }
        }
        fn ctx(&mut self, local_us: f64) -> NodeCtx<'_> {
            NodeCtx {
                id: 50,
                local_us,
                rng: &mut self.rng,
                anchors: &mut self.anchors,
                config: &self.config,
            }
        }
    }

    #[test]
    fn replays_after_configured_delay() {
        let mut a = ReplayAttacker::new(2, 0.0, 1e9);
        let mut env = Env::new();
        a.on_beacon(&mut env.ctx(0.0), beacon(123));
        // Not old enough yet.
        assert_eq!(a.intent(&mut env.ctx(0.0)), BeaconIntent::Silent);
        a.on_bp_end(&mut env.ctx(0.0));
        assert_eq!(a.intent(&mut env.ctx(0.0)), BeaconIntent::Silent);
        a.on_bp_end(&mut env.ctx(0.0));
        // Two BPs old: armed.
        assert_eq!(a.intent(&mut env.ctx(0.0)), BeaconIntent::FixedSlot(0));
        let b = a.make_beacon(&mut env.ctx(0.0));
        assert_eq!(b.body().timestamp_us, 123);
        assert_eq!(a.replays_sent, 1);
    }

    #[test]
    fn inactive_outside_window() {
        let mut a = ReplayAttacker::new(1, 100.0, 200.0);
        let mut env = Env::new();
        a.on_beacon(&mut env.ctx(0.0), beacon(5));
        a.on_bp_end(&mut env.ctx(0.0));
        assert_eq!(a.intent(&mut env.ctx(0.0)), BeaconIntent::Silent);
        assert_eq!(a.intent(&mut env.ctx(150.0)), BeaconIntent::FixedSlot(0));
        assert_eq!(a.intent(&mut env.ctx(250.0)), BeaconIntent::Silent);
    }

    #[test]
    fn tape_is_bounded() {
        let mut a = ReplayAttacker::new(1, 0.0, 1e9);
        let mut env = Env::new();
        for i in 0..100u64 {
            a.on_beacon(&mut env.ctx(0.0), beacon(i));
        }
        assert!(a.tape.len() <= 8);
    }
}
