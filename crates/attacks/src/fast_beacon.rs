//! The internal fast-beacon attacker of Figs. 3–4.
//!
//! "The attacker attacks by deliberately sending the synchronization
//! beacons at each BP without delay with an erroneous time value slower
//! than its local clock. We carefully configure the erroneous time values
//! such that they can pass the guard time check in SSTSP." (Sec. 5)
//!
//! The attacker wraps an honest protocol instance: outside the attack
//! window it behaves like any station (so it is synchronized well enough
//! to know the current µTESLA interval and to craft guard-passing
//! timestamps); inside the window it transmits at slot 0 of every BP.
//! Being an *internal* attacker — a compromised legitimate node — it owns
//! an authenticated hash chain and its beacons pass µTESLA.

use mac80211::frame::BeaconBody;
use protocols::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use rand::Rng;
use sstsp_crypto::{ChainElement, IntervalSchedule, MuTeslaSigner};

/// When the attacker is active, in the attacker's own clock (µs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackWindow {
    /// Attack start (µs of attacker clock). Paper: 400 s.
    pub start_us: f64,
    /// Attack end. Paper: 600 s.
    pub end_us: f64,
}

impl AttackWindow {
    /// The paper's window: 400 s – 600 s.
    pub fn paper() -> Self {
        AttackWindow {
            start_us: 400e6,
            end_us: 600e6,
        }
    }

    /// Whether `clock_us` falls inside the window.
    pub fn contains(&self, clock_us: f64) -> bool {
        clock_us >= self.start_us && clock_us < self.end_us
    }
}

/// A compromised station mounting the fast-beacon attack.
pub struct FastBeaconAttacker<P: SyncProtocol> {
    inner: P,
    window: AttackWindow,
    /// How much slower than the attacker's clock the forged timestamps
    /// are, µs. Must stay under the victims' guard time δ to be accepted
    /// by SSTSP.
    error_us: f64,
    /// Whether forged beacons carry µTESLA fields (attack on SSTSP) or are
    /// plain TSF beacons (attack on TSF-family protocols).
    secured: bool,
    signer: Option<MuTeslaSigner>,
    seq: u32,
    /// Beacons transmitted while attacking.
    pub beacons_sent: u64,
}

impl<P: SyncProtocol> FastBeaconAttacker<P> {
    /// Wrap `inner`; forged beacons are `error_us` slower than the
    /// attacker's clock and secured iff `secured`.
    pub fn new(inner: P, window: AttackWindow, error_us: f64, secured: bool) -> Self {
        assert!(error_us >= 0.0, "error must be non-negative (slower clock)");
        FastBeaconAttacker {
            inner,
            window,
            error_us,
            secured,
            signer: None,
            seq: 0,
            beacons_sent: 0,
        }
    }

    /// The wrapped honest protocol (for inspection).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn attacking(&self, local_us: f64) -> bool {
        self.window.contains(self.inner.clock_us(local_us))
    }

    /// The attacker signs with its node's *legitimate* published
    /// credentials: it is an internal adversary that compromised an
    /// initialized station, so it knows the chain seed and rebuilds an
    /// equivalent signer from it. If the wrapped protocol has no chain
    /// (e.g. a TSF node in unit tests), a seed is generated and its anchor
    /// published here.
    fn ensure_signer(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.signer.is_none() {
            let sched = IntervalSchedule::new(0.0, ctx.config.bp_us, ctx.config.total_intervals);
            if let Some(seed) = self.inner.chain_seed() {
                self.signer = Some(MuTeslaSigner::new(seed, sched));
                return;
            }
            let mut seed: ChainElement = [0u8; 16];
            ctx.rng.fill(&mut seed);
            let signer = MuTeslaSigner::new(seed, sched);
            ctx.anchors.publish(ctx.id, signer.anchor());
            self.signer = Some(signer);
        }
    }
}

impl<P: SyncProtocol> SyncProtocol for FastBeaconAttacker<P> {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if self.attacking(ctx.local_us) {
            BeaconIntent::FixedSlot(0)
        } else {
            self.inner.intent(ctx)
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        if !self.attacking(ctx.local_us) {
            return self.inner.make_beacon(ctx);
        }
        self.beacons_sent += 1;
        self.seq = self.seq.wrapping_add(1);
        let clock = self.inner.clock_us(ctx.local_us);
        let erroneous = (clock - self.error_us).max(0.0);
        let body = BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: erroneous as u64,
            root: ctx.id,
            hop: 0,
        };
        if self.secured {
            self.ensure_signer(ctx);
            let j = ((clock / ctx.config.bp_us).round().max(1.0) as usize)
                .min(ctx.config.total_intervals);
            let signer = self.signer.as_mut().expect("signer ensured");
            let auth = signer.sign(&body.auth_bytes(), j);
            BeaconPayload::Secured(body, auth)
        } else {
            BeaconPayload::Plain(body)
        }
    }

    fn on_tx_outcome(&mut self, ctx: &mut NodeCtx<'_>, collided: bool) {
        if !self.attacking(ctx.local_us) {
            self.inner.on_tx_outcome(ctx, collided);
        }
        // While attacking, collisions are irrelevant: re-transmit next BP.
    }

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        // Keep the inner clock synchronized (that is what lets the forged
        // timestamps pass the guard check).
        self.inner.on_beacon(ctx, rx);
    }

    fn on_bp_end(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_bp_end(ctx);
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.inner.clock_us(local_us)
    }

    fn on_join(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_join(ctx);
    }

    fn on_leave(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_leave(ctx);
    }

    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.init(ctx);
    }

    fn chain_seed(&self) -> Option<ChainElement> {
        self.inner.chain_seed()
    }

    fn set_mesh_role(&mut self, role: protocols::api::MeshRole) {
        self.inner.set_mesh_role(role);
    }

    fn is_reference(&self) -> bool {
        self.inner.is_reference()
    }

    fn is_synchronized(&self) -> bool {
        self.inner.is_synchronized()
    }

    fn name(&self) -> &'static str {
        "FastBeaconAttacker"
    }

    fn sstsp_stats(&self) -> Option<protocols::sstsp::SstspStats> {
        self.inner.sstsp_stats()
    }

    fn current_reference(&self) -> Option<protocols::api::NodeId> {
        self.inner.current_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::api::{AnchorRegistry, ProtocolConfig};
    use protocols::TsfNode;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    struct Env {
        config: ProtocolConfig,
        anchors: AnchorRegistry,
        rng: ChaCha12Rng,
    }

    impl Env {
        fn new() -> Self {
            Env {
                config: ProtocolConfig::paper(),
                anchors: AnchorRegistry::new(),
                rng: ChaCha12Rng::seed_from_u64(5),
            }
        }
        fn ctx(&mut self, local_us: f64) -> NodeCtx<'_> {
            NodeCtx {
                id: 99,
                local_us,
                rng: &mut self.rng,
                anchors: &mut self.anchors,
                config: &self.config,
            }
        }
    }

    #[test]
    fn window_containment() {
        let w = AttackWindow::paper();
        assert!(!w.contains(399e6));
        assert!(w.contains(400e6));
        assert!(w.contains(599e6));
        assert!(!w.contains(600e6));
    }

    #[test]
    fn behaves_honestly_outside_window() {
        let mut a = FastBeaconAttacker::new(TsfNode::new(), AttackWindow::paper(), 100.0, false);
        let mut env = Env::new();
        // At t = 10 s: normal TSF contention.
        assert_eq!(a.intent(&mut env.ctx(10e6)), BeaconIntent::Contend);
        let b = a.make_beacon(&mut env.ctx(10e6));
        assert_eq!(b.body().timestamp_us, 10_000_000);
        assert_eq!(a.beacons_sent, 0);
    }

    #[test]
    fn attacks_at_slot_zero_with_slow_timestamp() {
        let mut a = FastBeaconAttacker::new(TsfNode::new(), AttackWindow::paper(), 100.0, false);
        let mut env = Env::new();
        assert_eq!(a.intent(&mut env.ctx(450e6)), BeaconIntent::FixedSlot(0));
        let b = a.make_beacon(&mut env.ctx(450e6));
        assert_eq!(b.body().timestamp_us, 450_000_000 - 100);
        assert_eq!(a.beacons_sent, 1);
        assert!(!b.is_secured());
    }

    #[test]
    fn secured_mode_signs_with_published_chain() {
        let mut a = FastBeaconAttacker::new(TsfNode::new(), AttackWindow::paper(), 30.0, true);
        let mut env = Env::new();
        let b = a.make_beacon(&mut env.ctx(450e6));
        assert!(b.is_secured());
        let anchor = env
            .anchors
            .get(99)
            .expect("internal attacker's anchor is published");
        // The forged beacon authenticates against the attacker's own chain:
        // the disclosed key hashes to the published anchor at distance j-1,
        // and re-signing the same interval reproduces the fields exactly.
        let BeaconPayload::Secured(body, auth) = b else {
            unreachable!()
        };
        let j = auth.interval as usize;
        assert!(sstsp_crypto::verify_distance(
            &auth.disclosed,
            &anchor,
            j - 1
        ));
        let expected = a.signer.as_mut().unwrap().sign(&body.auth_bytes(), j);
        assert_eq!(auth, expected);
        assert_eq!(auth.interval, 4_500, "interval from the attacker clock");
    }

    #[test]
    fn timestamp_error_stays_within_configured_bound() {
        let mut a = FastBeaconAttacker::new(TsfNode::new(), AttackWindow::paper(), 30.0, true);
        let mut env = Env::new();
        for k in 0..50u64 {
            let local = 420e6 + k as f64 * 100_000.0;
            let b = a.make_beacon(&mut env.ctx(local));
            let err = a.clock_us(local) - b.body().timestamp_us as f64;
            assert!((30.0..31.0).contains(&err), "error drifted to {err}");
        }
    }

    #[test]
    fn collisions_do_not_deter_the_attacker() {
        let mut a = FastBeaconAttacker::new(TsfNode::new(), AttackWindow::paper(), 10.0, false);
        let mut env = Env::new();
        for _ in 0..5 {
            assert_eq!(a.intent(&mut env.ctx(500e6)), BeaconIntent::FixedSlot(0));
            a.on_tx_outcome(&mut env.ctx(500e6), true);
            a.on_bp_end(&mut env.ctx(500e6));
        }
        assert_eq!(a.intent(&mut env.ctx(500e6)), BeaconIntent::FixedSlot(0));
    }
}
