//! # attacks — adversary models against 802.11 time synchronization
//!
//! The paper's security analysis (Sec. 4) and hostile-environment
//! evaluation (Figs. 3–4) consider:
//!
//! * **internal fast-beacon attacker** ([`fast_beacon`]) — a compromised
//!   station that transmits a beacon at the start of every BP *without
//!   random delay*, carrying an erroneous time value slower than its local
//!   clock, crafted to pass SSTSP's guard-time check. Against TSF this
//!   wins every contention, suppresses all legitimate beacons and
//!   desynchronizes the network; against SSTSP it can at most become the
//!   reference of a slightly skewed virtual clock.
//! * **replay attacker** ([`replay`]) — records legitimate beacons and
//!   re-transmits them later to magnify the offset between declared and
//!   actual time (µTESLA's interval check defeats it).
//! * **external forger** ([`forger`]) — fabricates secured-looking beacons
//!   without possessing any authenticated hash chain (the anchor registry
//!   defeats it).
//! * **pulse-delay / jamming** — jam-then-relay is modeled through the
//!   channel's jamming switch plus the replay attacker with sub-BP delay;
//!   see the integration tests.
//! * **coordinated campaigns** ([`campaign`]) — colluding coalitions of
//!   the above, Sybil-style candidacy flooding against per-domain
//!   reference election, and a reactive jammer keyed to the sitting
//!   reference's beacon slot, all driven by one shared plan.
//!
//! All attackers implement the same [`protocols::SyncProtocol`] trait as
//! honest stations, so the engine treats them uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod fast_beacon;
pub mod forger;
pub mod replay;

pub use campaign::{CampaignKind, CampaignMember, CampaignRole, CampaignSpec};
pub use fast_beacon::{AttackWindow, FastBeaconAttacker};
pub use forger::ExternalForger;
pub use replay::ReplayAttacker;
