//! External forger.
//!
//! An attacker *without* cryptographic credentials (no authenticated hash
//! chain in the registry) that fabricates secured-looking beacons, possibly
//! impersonating a legitimate station's id. SSTSP receivers reject these at
//! the µTESLA stage: either the claimed source has no published anchor, or
//! the forged disclosed key fails to hash to the genuine anchor, or the
//! MAC of the buffered beacon fails once a genuine key discloses.

use mac80211::frame::BeaconBody;
use protocols::api::{BeaconIntent, BeaconPayload, NodeCtx, NodeId, ReceivedBeacon, SyncProtocol};
use rand::Rng;
use sstsp_crypto::BeaconAuth;

/// A credential-less forger of secured beacons.
pub struct ExternalForger {
    /// Station id the forger impersonates (`None` = its own id).
    pub impersonate: Option<NodeId>,
    /// Timestamp bias applied to the forged clock value, µs (positive =
    /// claims a faster clock).
    pub bias_us: f64,
    /// Attack window in the forger's local clock, µs.
    pub start_us: f64,
    /// Window end.
    pub end_us: f64,
    seq: u32,
    /// Forged beacons transmitted.
    pub forgeries_sent: u64,
}

impl ExternalForger {
    /// Forge beacons during `[start_us, end_us)`, biasing timestamps by
    /// `bias_us`, impersonating `impersonate` if given.
    pub fn new(impersonate: Option<NodeId>, bias_us: f64, start_us: f64, end_us: f64) -> Self {
        ExternalForger {
            impersonate,
            bias_us,
            start_us,
            end_us,
            seq: 0,
            forgeries_sent: 0,
        }
    }

    fn active(&self, local_us: f64) -> bool {
        local_us >= self.start_us && local_us < self.end_us
    }
}

impl SyncProtocol for ExternalForger {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if self.active(ctx.local_us) {
            BeaconIntent::FixedSlot(0)
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        self.forgeries_sent += 1;
        let body = BeaconBody {
            src: self.impersonate.unwrap_or(ctx.id),
            seq: self.seq,
            timestamp_us: (ctx.local_us + self.bias_us).max(0.0) as u64,
            root: self.impersonate.unwrap_or(ctx.id),
            hop: 0,
        };
        // Without the chain the best the forger can do is random or reused
        // values — cryptographically worthless against the anchor check.
        let mut mac = [0u8; 16];
        let mut disclosed = [0u8; 16];
        ctx.rng.fill(&mut mac);
        ctx.rng.fill(&mut disclosed);
        let j = ((ctx.local_us / ctx.config.bp_us).round().max(1.0) as usize)
            .min(ctx.config.total_intervals);
        BeaconPayload::Secured(
            body,
            BeaconAuth {
                interval: j as u32,
                mac,
                disclosed,
            },
        )
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, _ctx: &mut NodeCtx<'_>, _rx: ReceivedBeacon) {}

    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {}

    fn clock_us(&self, local_us: f64) -> f64 {
        local_us
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {}

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {}

    fn name(&self) -> &'static str {
        "ExternalForger"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::api::{AnchorRegistry, ProtocolConfig};
    use protocols::SstspNode;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    struct Env {
        config: ProtocolConfig,
        anchors: AnchorRegistry,
        rng: ChaCha12Rng,
    }
    impl Env {
        fn new() -> Self {
            Env {
                config: ProtocolConfig::paper(),
                anchors: AnchorRegistry::new(),
                rng: ChaCha12Rng::seed_from_u64(13),
            }
        }
        fn ctx(&mut self, id: u32, local_us: f64) -> NodeCtx<'_> {
            NodeCtx {
                id,
                local_us,
                rng: &mut self.rng,
                anchors: &mut self.anchors,
                config: &self.config,
            }
        }
    }

    #[test]
    fn forges_during_window_only() {
        let mut f = ExternalForger::new(None, 1_000.0, 100e6, 200e6);
        let mut env = Env::new();
        assert_eq!(f.intent(&mut env.ctx(7, 50e6)), BeaconIntent::Silent);
        assert_eq!(f.intent(&mut env.ctx(7, 150e6)), BeaconIntent::FixedSlot(0));
        let b = f.make_beacon(&mut env.ctx(7, 150e6));
        assert!(b.is_secured());
        assert_eq!(b.body().timestamp_us, 150_001_000);
    }

    #[test]
    fn impersonation_uses_victim_id() {
        let mut f = ExternalForger::new(Some(3), 0.0, 0.0, 1e9);
        let mut env = Env::new();
        let b = f.make_beacon(&mut env.ctx(7, 1e6));
        assert_eq!(b.src(), 3);
    }

    #[test]
    fn sstsp_node_rejects_forgery_without_anchor() {
        let mut f = ExternalForger::new(None, 500.0, 0.0, 1e9);
        let mut env = Env::new();
        let forged = f.make_beacon(&mut env.ctx(7, 100_000.0));

        let mut victim = SstspNode::founding();
        let mut ctx = env.ctx(1, 100_000.0);
        victim.on_beacon(
            &mut ctx,
            ReceivedBeacon {
                payload: forged,
                local_rx_us: 100_000.0,
            },
        );
        assert_eq!(victim.stats.unknown_anchor, 1);
        assert_eq!(victim.reference(), None);
    }

    #[test]
    fn sstsp_node_rejects_impersonation_of_known_reference() {
        let mut env = Env::new();
        // Legitimate node 3 has a published anchor.
        env.anchors.publish(3, [0x77; 16]);

        // Bias the timestamp so `ts + t_p` lands within the victim's guard
        // time — the forgery must reach (and fail) the µTESLA stage.
        let t_p = env.config.t_p_us;
        let mut f = ExternalForger::new(Some(3), -t_p, 0.0, 1e9);
        let forged = f.make_beacon(&mut env.ctx(7, 100_000.0));

        let mut victim = SstspNode::founding();
        let mut ctx = env.ctx(1, 100_000.0);
        victim.on_beacon(
            &mut ctx,
            ReceivedBeacon {
                payload: forged,
                local_rx_us: 100_000.0,
            },
        );
        // The random disclosed key cannot hash to node 3's anchor.
        assert_eq!(victim.stats.guard_rejections, 0);
        assert_eq!(victim.stats.mutesla_rejections, 1);
    }
}
