//! Property pin for the reactive selective jammer: across arbitrary
//! reference histories — including forced re-elections, reference loss and
//! cross-domain handovers — the jammer never emits energy outside the
//! *sitting* reference's beacon slot, and emits nothing at all while no
//! reference sits or outside its activity window.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use attacks::campaign::{CampaignKind, CampaignMember, CampaignSpec};
use mac80211::frame::BeaconBody;
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use protocols::api::{
    AnchorRegistry, BeaconIntent, BeaconPayload, MeshRole, NodeCtx, NodeId, ProtocolConfig,
    SyncProtocol,
};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A minimal honest receiver whose view of the sitting reference the test
/// drives directly (standing in for SSTSP's election tracking).
struct StubTracker(Rc<Cell<Option<NodeId>>>);

impl SyncProtocol for StubTracker {
    fn intent(&mut self, _ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        BeaconIntent::Silent
    }
    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: 0,
            timestamp_us: ctx.local_us as u64,
            root: ctx.id,
            hop: 0,
        })
    }
    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}
    fn on_beacon(&mut self, _ctx: &mut NodeCtx<'_>, _rx: protocols::api::ReceivedBeacon) {}
    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn clock_us(&self, local_us: f64) -> f64 {
        local_us
    }
    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn current_reference(&self) -> Option<NodeId> {
        self.0.get()
    }
    fn name(&self) -> &'static str {
        "StubTracker"
    }
}

fn jam_spec() -> CampaignSpec {
    CampaignSpec {
        kind: CampaignKind::RefSlotJam,
        attackers: 1,
        start_s: 20.0,
        end_s: 40.0,
    }
}

/// One step of a reference history: who sits (None = election gap) and the
/// synchronized time, seconds, at which the jammer forms its intent.
#[derive(Debug, Clone)]
struct Step {
    sitting: Option<NodeId>,
    t_s: f64,
}

/// All 16 station ids are drawable as the sitting reference (`None` models
/// an election gap after the sitting reference was lost).
fn sitting() -> BoxedStrategy<Option<NodeId>> {
    prop_oneof![Just(None), (0u32..16).prop_map(Some)].boxed()
}

fn steps() -> BoxedStrategy<Vec<Step>> {
    collection::vec(
        (sitting(), 0.0f64..60.0).prop_map(|(sitting, t_s)| Step { sitting, t_s }),
        1..40,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn jammer_only_ever_fires_in_the_sitting_references_slot(
        num_domains in 1u32..4,
        n in 4u32..16,
        seed in 0u64..1024,
        history in steps(),
    ) {
        let config = ProtocolConfig::paper();
        let gap = config.beacon_airtime_slots + 1;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut anchors = AnchorRegistry::new();
        // Random station→domain map (stations past `n` never referenced).
        let domain_of: Vec<u32> = (0..16).map(|i| i % num_domains).collect();

        let sitting = Rc::new(Cell::new(None));
        let mut jammer =
            CampaignMember::new(jam_spec(), 0, StubTracker(sitting.clone()), true);
        jammer.set_mesh_role(MeshRole {
            domain: domain_of[(n - 1) as usize],
            num_domains,
            bridge_index: None,
            domain_of: Arc::new(domain_of.clone()),
            bridges: Arc::new(vec![]),
        });

        for step in &history {
            sitting.set(step.sitting);
            let mut ctx = NodeCtx {
                id: 99,
                local_us: step.t_s * 1e6,
                rng: &mut rng,
                anchors: &mut anchors,
                config: &config,
            };
            let intent = jammer.intent(&mut ctx);
            let in_window = (20.0..40.0).contains(&step.t_s);
            match (in_window, step.sitting) {
                (true, Some(r)) => prop_assert_eq!(
                    intent,
                    BeaconIntent::FixedSlot(domain_of[r as usize] * gap)
                ),
                // Election in progress: a selective jammer stays quiet.
                (true, None) => prop_assert_eq!(intent, BeaconIntent::Silent),
                // Outside the window the wrapped honest stub is in charge.
                (false, _) => prop_assert_eq!(intent, BeaconIntent::Silent),
            }
        }
    }
}

/// The deterministic re-election scenario spelled out: reference A jammed,
/// A lost, election gap (jammer silent), B elected in another domain —
/// the jammer retargets B's slot and never touches any other slot.
#[test]
fn jammer_tracks_a_forced_re_election_across_domains() {
    let config = ProtocolConfig::paper();
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let mut anchors = AnchorRegistry::new();
    let domain_of = vec![0, 0, 0, 1, 1, 1];

    let sitting = Rc::new(Cell::new(Some(0)));
    let mut jammer = CampaignMember::new(jam_spec(), 0, StubTracker(sitting.clone()), true);
    jammer.set_mesh_role(MeshRole {
        domain: 1,
        num_domains: 2,
        bridge_index: None,
        domain_of: Arc::new(domain_of),
        bridges: Arc::new(vec![]),
    });

    let mut intent_at = |jammer: &mut CampaignMember<StubTracker>, t_s: f64| {
        let mut ctx = NodeCtx {
            id: 99,
            local_us: t_s * 1e6,
            rng: &mut rng,
            anchors: &mut anchors,
            config: &config,
        };
        jammer.intent(&mut ctx)
    };

    // Reference 0 (domain 0) sits: jam its slot 0·8 = 0.
    assert_eq!(intent_at(&mut jammer, 25.0), BeaconIntent::FixedSlot(0));
    // Reference lost, election running: no energy anywhere.
    sitting.set(None);
    assert_eq!(intent_at(&mut jammer, 26.0), BeaconIntent::Silent);
    // Station 4 (domain 1) wins: retarget slot 1·8 = 8.
    sitting.set(Some(4));
    assert_eq!(intent_at(&mut jammer, 27.0), BeaconIntent::FixedSlot(8));
    // Window over: back to honest behavior.
    assert_eq!(intent_at(&mut jammer, 45.0), BeaconIntent::Silent);
}
