//! Bench target for **Figure 2**: maximum clock difference of SSTSP at 500
//! stations, m = 4, with churn and reference departures. Prints the
//! regenerated figure (≈15 s at paper fidelity: every beacon is
//! HMAC-verified), then times the reduced kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{fig2, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn regenerate() {
    let fig = fig2::run(regen_fidelity(), REGEN_SEED);
    println!("{}", fig.render());
    println!(
        "shape vs paper (< 10 µs after stabilization, survives ref changes): {}\n",
        if fig.shape_holds() {
            "HOLDS"
        } else {
            "DEVIATES"
        }
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("fig2/sstsp_quick_kernel", |b| {
        b.iter(|| fig2::run(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
