//! The Sec. 3.4 overhead accounting plus crypto microbenchmarks: hashing
//! throughput, hash-chain generation and traversal strategies, µTESLA
//! sign/verify latency — the numbers behind the paper's claim that hash
//! operations are "three to four orders of magnitude faster than
//! asymmetric operations" and cheap enough for on-the-fly beacon
//! processing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sstsp::experiments::overhead;
use sstsp_crypto::chain::chain_step;
use sstsp_crypto::hmac::hmac_sha256_128;
use sstsp_crypto::{
    sha256, FractalTraverser, HashChain, IntervalSchedule, MuTeslaSigner, MuTeslaVerifier,
};

fn bench(c: &mut Criterion) {
    // The measured overhead report (Sec. 3.4 reproduction).
    println!("{}", overhead::run().render());

    let mut g = c.benchmark_group("crypto");

    g.throughput(Throughput::Bytes(92));
    g.bench_function("sha256/92B_beacon", |b| {
        let beacon = [0xA5u8; 92];
        b.iter(|| sha256(std::hint::black_box(&beacon)))
    });
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("sha256/1MiB", |b| {
        let data = vec![0x5Au8; 1 << 20];
        b.iter(|| sha256(std::hint::black_box(&data)))
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("hmac128/beacon_auth", |b| {
        let key = [7u8; 16];
        let msg = [0x42u8; 36];
        b.iter(|| hmac_sha256_128(std::hint::black_box(&key), std::hint::black_box(&msg)))
    });

    g.bench_function("chain/step", |b| {
        let x = [9u8; 16];
        b.iter(|| chain_step(std::hint::black_box(&x)))
    });

    g.bench_function("chain/generate_10100", |b| {
        b.iter(|| HashChain::generate(std::hint::black_box([1u8; 16]), 10_100))
    });

    g.bench_function("chain/fractal_full_traversal_4096", |b| {
        b.iter(|| {
            let mut t = FractalTraverser::new([2u8; 16], 4096);
            let mut last = None;
            while let Some(e) = t.next_element() {
                last = Some(e);
            }
            last
        })
    });

    // µTESLA: signed beacons, then verification in the two receiver
    // regimes the protocol actually exercises. The fractal-backed signer
    // consumes intervals in ascending order, so sign the fixtures
    // low-to-high before benchmarking the steady-state signing cost.
    let sched = IntervalSchedule::new(0.0, 100_000.0, 10_000);
    let mut signer = MuTeslaSigner::new([3u8; 16], sched);
    let payload = [0x11u8; 32];
    let a1 = signer.sign(&payload, 1);
    let a2 = signer.sign(&payload, 2);
    let a200 = signer.sign(&payload, 200);

    g.bench_function("mutesla/sign_interval_5000", |b| {
        // Steady state: after the first advance to interval 5000, repeat
        // signatures for the current interval come from the recent window.
        b.iter(|| signer.sign(std::hint::black_box(&payload), 5_000))
    });

    g.bench_function("mutesla/verify_cold_interval_200", |b| {
        // Cold verifier: the disclosed key walks j-1 hashes to the anchor.
        b.iter(|| {
            let mut v = MuTeslaVerifier::new(signer.anchor(), sched);
            v.observe(&payload, &a200, sched.expected_emission_us(200))
                .unwrap()
        })
    });

    g.bench_function("mutesla/verify_warm_consecutive", |b| {
        // Warm verifier: cached key one step away — the steady-state cost
        // every SSTSP receiver pays per beacon.
        b.iter(|| {
            let mut v = MuTeslaVerifier::new(signer.anchor(), sched);
            v.observe(&payload, &a1, sched.expected_emission_us(1))
                .unwrap();
            v.observe(&payload, &a2, sched.expected_emission_us(2))
                .unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
