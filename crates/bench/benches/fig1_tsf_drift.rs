//! Bench target for **Figure 1**: maximum clock difference of TSF at 100
//! and 300 stations. Prints the regenerated figure, then times the reduced
//! kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{fig1, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn regenerate() {
    let fig = fig1::run(regen_fidelity(), REGEN_SEED);
    println!("{}", fig.render());
    println!(
        "shape vs paper (TSF fails, worse with N): {}\n",
        if fig.shape_holds() {
            "HOLDS"
        } else {
            "DEVIATES"
        }
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("fig1/tsf_quick_kernel", |b| {
        b.iter(|| fig1::run(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
