//! Extension bench: SSTSP over multi-hop topologies (the paper's future
//! work). Prints the per-hop error table, then times the reduced kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{multihop, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn bench(c: &mut Criterion) {
    let m = multihop::run(regen_fidelity(), REGEN_SEED);
    println!("{}", m.render());
    println!(
        "extension shape (line tight, grid merged): {}\n",
        if m.shape_holds() { "HOLDS" } else { "DEVIATES" }
    );
    c.bench_function("multihop/line_grid_quick_kernel", |b| {
        b.iter(|| multihop::run(Fidelity::Quick, std::hint::black_box(11)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
