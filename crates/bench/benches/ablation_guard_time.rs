//! Ablation bench: guard time δ against the internal fast-beacon attacker.
//! Prints the regenerated sweep, then times the reduced sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{ablation, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ablation::guard_sweep(regen_fidelity(), REGEN_SEED).render()
    );
    c.bench_function("ablation/guard_sweep_quick_kernel", |b| {
        b.iter(|| ablation::guard_sweep(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
