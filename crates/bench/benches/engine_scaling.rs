//! Engine throughput: node-BP steps per second across network sizes and
//! protocols. This is the simulator's own performance envelope — the
//! figure-regeneration cost is (stations × beacon periods) × per-step
//! work, dominated for SSTSP by one HMAC verification per delivered
//! beacon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sstsp::{Network, ProtocolKind, ScenarioConfig};
use sstsp_bench::sim_criterion;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let duration_s = 20.0;
    for &n in &[25u32, 50, 100] {
        let bps = (duration_s * 10.0) as u64;
        g.throughput(Throughput::Elements(n as u64 * bps));
        for kind in [ProtocolKind::Tsf, ProtocolKind::Sstsp] {
            g.bench_with_input(
                BenchmarkId::new(kind.name(), n),
                &(kind, n),
                |b, &(kind, n)| {
                    b.iter(|| {
                        let cfg = ScenarioConfig::new(kind, n, duration_s, 3);
                        Network::build(std::hint::black_box(&cfg)).run()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
