//! Bench target for **Figure 3**: TSF under the fast-beacon attacker
//! (active 400–600 s). Prints the regenerated figure, then times the
//! reduced kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{fig3, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn regenerate() {
    let fig = fig3::run(regen_fidelity(), REGEN_SEED);
    println!("{}", fig.render());
    println!(
        "shape vs paper (attack desynchronizes TSF by orders of magnitude): {}\n",
        if fig.shape_holds() {
            "HOLDS"
        } else {
            "DEVIATES"
        }
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("fig3/tsf_attack_quick_kernel", |b| {
        b.iter(|| fig3::run(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
