//! Bench target for **Table 1**: synchronization latency and error vs the
//! aggressiveness parameter m ∈ 1..=5. Prints the regenerated table, then
//! times the reduced sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{table1, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn regenerate() {
    let t = table1::run(regen_fidelity(), REGEN_SEED);
    println!("{}", t.render());
    println!(
        "shape vs paper (latency grows with m; error flattens ≤ 25 µs): {}\n",
        if t.shape_holds() { "HOLDS" } else { "DEVIATES" }
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("table1/m_sweep_quick_kernel", |b| {
        b.iter(|| table1::run(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
