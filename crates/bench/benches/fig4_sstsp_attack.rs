//! Bench target for **Figure 4**: SSTSP under the same fast-beacon
//! attacker, 500 stations. Prints the regenerated figure, then times the
//! reduced kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{fig4, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn regenerate() {
    let fig = fig4::run(regen_fidelity(), REGEN_SEED);
    println!("{}", fig.render());
    println!(
        "shape vs paper (attacker cannot desynchronize SSTSP): {}\n",
        if fig.shape_holds() {
            "HOLDS"
        } else {
            "DEVIATES"
        }
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    c.bench_function("fig4/sstsp_attack_quick_kernel", |b| {
        b.iter(|| fig4::run(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
