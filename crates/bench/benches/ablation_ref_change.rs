//! Ablation bench: the (m, l) interaction at a reference change (Lemma 2
//! predicts the optimum at m = l + 3). Prints the regenerated grid, then
//! times the reduced grid.

use criterion::{criterion_group, criterion_main, Criterion};
use sstsp::experiments::{ablation, Fidelity};
use sstsp_bench::{regen_fidelity, sim_criterion, REGEN_SEED};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ablation::ref_change(regen_fidelity(), REGEN_SEED).render()
    );
    c.bench_function("ablation/ref_change_quick_kernel", |b| {
        b.iter(|| ablation::ref_change(Fidelity::Quick, std::hint::black_box(1)))
    });
}

criterion_group! {
    name = benches;
    config = sim_criterion();
    targets = bench
}
criterion_main!(benches);
