//! Reproducible performance baseline for the simulation hot paths.
//!
//! Measures four throughput figures and records them in
//! `BENCH_engine.json` at the repository root:
//!
//! * **BPs/sec** — simulated beacon periods per wall-clock second on the
//!   100-node SSTSP scenario (the engine hot loop + µTESLA verification).
//! * **large-n BPs/sec** — the same figure at n=1000 and n=5000 (the
//!   SoA fast-path regime).
//! * **runs/sec** — complete runs per second across a `run_seeds` sweep
//!   (the figure-regeneration workload).
//! * **hashes/sec** — `chain_step` applications per second (the µTESLA
//!   primitive every signer/verifier bottoms out in).
//! * **engine_mesh** — BPs/sec on a 4-domain bridged mesh (n≈1000) for
//!   the per-domain fast path, the forced legacy path
//!   (`SSTSP_NO_FASTPATH=1`), and the fast path with telemetry recording
//!   live, plus the fast/slow ratio and telemetry overhead.
//!
//! Every figure is the **median of [`REPEATS`] repetitions** (each
//! repetition a time-bounded loop), so one scheduler hiccup on a noisy
//! host cannot skew the recorded number; the repeat count is written to
//! the JSON alongside the results.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sstsp-bench --bin perf_baseline -- --label after
//! ```
//!
//! `--label before|after` selects which block of `BENCH_engine.json` to
//! write; the other block is preserved so the file always carries the
//! before/after pair for the current optimization cycle, plus derived
//! speedups when both are present. `--out <path>` overrides the output
//! location. All workloads are fixed-seed, so any change in the numbers
//! is a change in the code, not in the work.
//!
//! A full run also measures the engine workload with telemetry recording
//! enabled and records the off/on pair (plus overhead percentage) in the
//! `telemetry` block — the disabled path is the one the goldens and every
//! experiment run on, so its cost must stay at one relaxed atomic load per
//! instrumented site.
//!
//! `--smoke` runs one alternating loop of twelve telemetry-off / twelve
//! telemetry-on half-second engine measurements. It fails (exit 1) if the
//! off-leg **max** (load noise is one-sided, so the max estimates
//! unloaded capability) fell below `SSTSP_SMOKE_TOL` (default 0.90) times
//! the recorded `after.bps_per_sec` — the CI guard that the telemetry
//! layer stays free when off — or if the telemetry-on overhead exceeds
//! `SSTSP_SMOKE_TELEMETRY_PCT` percent (default 10) by *both* of two
//! independent estimators (max-vs-max and median of per-pair ratios; see
//! [`run_smoke`]) — the guard that instrumented runs stay on the
//! batched-counter discipline. Nothing is written.
//!
//! `--smoke-large` runs the n=1000 scenario once per engine path (SoA
//! fast path on, then `SSTSP_NO_FASTPATH=1`), fails if either run exceeds
//! `SSTSP_LARGE_SMOKE_BUDGET_S` wall seconds (default 5 — a catastrophic-
//! regression bound, ~1000x the expected release-build cost), and fails if
//! the two paths disagree on any observable (full spread series + every
//! summary counter). It then runs a 4-domain bridged mesh (per-domain
//! window resolution + reference election) under the same wall budget and
//! fails unless every collision domain ends the run holding a distinct
//! reference and the run rode the per-domain fast path (asserted via the
//! `engine.path.fast` counter, not timing). Nothing is written.

use rayon::ThreadPool;
use sstsp::scenario::TopologySpec;
use sstsp::sweep::run_seeds;
use sstsp::{Network, ProtocolKind, RunResult, ScenarioConfig};
use sstsp_crypto::chain::chain_step;
use std::time::Instant;

/// Engine workload: the acceptance scenario from the perf issue.
const ENGINE_NODES: u32 = 100;
const ENGINE_DURATION_S: f64 = 20.0;
const ENGINE_SEED: u64 = 2006;
/// Large-n engine workload points: (nodes, duration_s).
const LARGE_POINTS: [(u32, f64); 2] = [(1000, 5.0), (5000, 1.0)];
/// Bridged-mesh engine workload: 4 islands of `cols`x`rows` stations plus
/// the 3 gateway bridges (n = 1003), the per-domain fast-path regime.
const MESH_DOMAINS: u32 = 4;
const MESH_COLS: u32 = 25;
const MESH_ROWS: u32 = 10;
const MESH_DURATION_S: f64 = 30.0;
/// Sweep workload.
const SWEEP_NODES: u32 = 25;
const SWEEP_DURATION_S: f64 = 10.0;
const SWEEP_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
/// Repetitions per workload; the recorded figure is the median.
const REPEATS: usize = 5;
/// Minimum wall time per repetition, seconds.
const MIN_MEASURE_S: f64 = 1.0;

/// Median of an owned sample vector (for odd lengths, the exact middle).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Median of `reps` invocations of `f`.
fn median_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    median((0..reps).map(|_| f()).collect())
}

struct Measurement {
    bps_per_sec: f64,
    large_bps: Vec<(u32, f64)>,
    runs_per_sec: f64,
    hashes_per_sec: f64,
}

/// One time-bounded repetition of the BPs/sec figure for `cfg`.
///
/// Each iteration rebuilds the network (runs consume it) but only the
/// `run()` call is timed: `Network::build` is dominated by µTESLA keychain
/// generation, which is setup, not beacon-period processing — folding it
/// into a BPs/sec figure would understate every engine-path comparison by
/// a constant that has nothing to do with the paths being compared.
fn measure_bps_for(cfg: &ScenarioConfig, min_s: f64) -> f64 {
    let bps_per_run = cfg.total_bps();
    // Warm-up run.
    std::hint::black_box(Network::build(cfg).run());
    let t0 = Instant::now();
    let mut busy_s = 0.0f64;
    let mut runs = 0u64;
    while t0.elapsed().as_secs_f64() < min_s {
        let net = Network::build(cfg);
        let t1 = Instant::now();
        std::hint::black_box(net.run());
        busy_s += t1.elapsed().as_secs_f64();
        runs += 1;
    }
    (runs * bps_per_run) as f64 / busy_s
}

fn engine_cfg() -> ScenarioConfig {
    ScenarioConfig::new(
        ProtocolKind::Sstsp,
        ENGINE_NODES,
        ENGINE_DURATION_S,
        ENGINE_SEED,
    )
}

fn measure_engine_for(min_s: f64) -> f64 {
    measure_bps_for(&engine_cfg(), min_s)
}

fn measure_engine() -> f64 {
    median_of(REPEATS, || measure_engine_for(MIN_MEASURE_S))
}

/// BPs/sec at each of the [`LARGE_POINTS`] — the regime the SoA fast
/// path, batched receiver draws, and quiescent-BP skip exist for.
fn measure_engine_large() -> Vec<(u32, f64)> {
    LARGE_POINTS
        .iter()
        .map(|&(n, dur)| {
            let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, n, dur, ENGINE_SEED);
            let r = median_of(REPEATS, || measure_bps_for(&cfg, MIN_MEASURE_S / 2.0));
            eprintln!("  n={n}: {r:.1} BPs/sec");
            (n, r)
        })
        .collect()
}

/// The engine workload with metrics recording off and on (counters,
/// gauges, spread distribution — no trace hook, matching how a sweep
/// would record), measured as **interleaved pairs**: each repetition runs
/// the disabled leg and then the recording leg back-to-back, and the
/// recorded overhead is the median of the per-pair overheads. Medians of
/// legs timed minutes apart pick up whatever the host's background load
/// did in between — on a busy single-core host that drift is larger than
/// the effect being measured; pairing cancels it out of the ratio.
///
/// Returns `(off, on, overhead_pct)` — the per-leg medians plus the
/// median per-pair overhead (which is the honest figure; it need not
/// equal the overhead recomputed from the two leg medians).
fn measure_engine_telemetry() -> (f64, f64, f64) {
    let mut offs = Vec::with_capacity(REPEATS);
    let mut ons = Vec::with_capacity(REPEATS);
    let mut overheads = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let off = measure_engine_for(MIN_MEASURE_S);
        let on = {
            let _guard = sstsp_telemetry::recording();
            measure_engine_for(MIN_MEASURE_S)
        };
        overheads.push((1.0 - on / off) * 100.0);
        offs.push(off);
        ons.push(on);
    }
    (median(offs), median(ons), median(overheads))
}

fn mesh_cfg() -> ScenarioConfig {
    let nodes = MESH_DOMAINS * MESH_COLS * MESH_ROWS + (MESH_DOMAINS - 1);
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, nodes, MESH_DURATION_S, ENGINE_SEED);
    cfg.topology = Some(TopologySpec::Bridged {
        domains: MESH_DOMAINS,
        cols: MESH_COLS,
        rows: MESH_ROWS,
    });
    cfg
}

/// Bridged-mesh BPs/sec: per-domain fast path, the same workload forced
/// onto the legacy global-resolution path (`SSTSP_NO_FASTPATH=1`), and
/// the fast path with telemetry recording live. The fast/slow ratio is
/// the figure the mesh fast path is accountable for, so the three legs
/// are interleaved per repetition (see [`measure_engine_telemetry`] for
/// why) and the recorded ratio/overhead are medians of the per-triple
/// ratios, not ratios of the leg medians.
///
/// Returns `(fast, slow, telemetry_on, fast_over_slow, overhead_pct)`.
fn measure_engine_mesh() -> (f64, f64, f64, f64, f64) {
    let cfg = mesh_cfg();
    let mut fasts = Vec::with_capacity(REPEATS);
    let mut slows = Vec::with_capacity(REPEATS);
    let mut ons = Vec::with_capacity(REPEATS);
    let mut ratios = Vec::with_capacity(REPEATS);
    let mut overheads = Vec::with_capacity(REPEATS);
    for rep in 0..REPEATS {
        let fast = measure_bps_for(&cfg, MIN_MEASURE_S / 2.0);
        std::env::set_var("SSTSP_NO_FASTPATH", "1");
        let slow = measure_bps_for(&cfg, MIN_MEASURE_S / 2.0);
        std::env::remove_var("SSTSP_NO_FASTPATH");
        let on = {
            let _guard = sstsp_telemetry::recording();
            measure_bps_for(&cfg, MIN_MEASURE_S / 2.0)
        };
        eprintln!(
            "  rep {}/{REPEATS}: fast {fast:.1}, legacy {slow:.1} ({:.2}x), +telemetry {on:.1} ({:.1}% overhead)",
            rep + 1,
            fast / slow,
            (1.0 - on / fast) * 100.0
        );
        ratios.push(fast / slow);
        overheads.push((1.0 - on / fast) * 100.0);
        fasts.push(fast);
        slows.push(slow);
        ons.push(on);
    }
    let (fast, slow, on) = (median(fasts), median(slows), median(ons));
    let (ratio, overhead) = (median(ratios), median(overheads));
    eprintln!(
        "  median: fast {fast:.1}, legacy {slow:.1}, ratio {ratio:.2}x, telemetry overhead {overhead:.1}%"
    );
    (fast, slow, on, ratio, overhead)
}

/// Short telemetry-disabled engine check against the recorded baseline.
/// Exits 1 on a regression beyond tolerance, 0 otherwise.
fn run_smoke(out: &str) -> ! {
    let baseline = std::fs::read_to_string(out)
        .ok()
        .and_then(|json| extract_block(&json, "after"))
        .and_then(|block| extract_number(&block, "bps_per_sec"));
    let Some(baseline) = baseline else {
        eprintln!("smoke: no after.bps_per_sec baseline in {out}; nothing to compare");
        std::process::exit(0)
    };
    // Default tolerance 0.90: the regressions this gate exists to catch
    // (a stray per-event shard lock, an accidental slow-path fallback)
    // cost tens of percent, while run-to-run drift on a busy shared host
    // reaches ~5-10% even with the max-of-12 estimator below. A quiet CI
    // host can tighten via SSTSP_SMOKE_TOL.
    let tol: f64 = std::env::var("SSTSP_SMOKE_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.90);
    // Telemetry-overhead budget: with recording live the same workload may
    // cost at most SSTSP_SMOKE_TELEMETRY_PCT percent of the disabled-path
    // throughput (default 10%). This is what keeps instrumented runs on
    // the batched `count!`/`BpCounters` discipline — a stray per-event
    // shard lock in a hot loop shows up here immediately.
    let max_overhead_pct: f64 = std::env::var("SSTSP_SMOKE_TELEMETRY_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    // One alternating loop of off/on half-second measurements feeds both
    // gates. Throughput noise on a shared host is one-sided — background
    // load only ever *slows* a run — so the max over a leg's repetitions
    // estimates that leg's unloaded capability. Twelve alternations
    // (~12 s) give each leg twelve shots at a quiet window. Pin the loop
    // to a 1-thread pool: the gate compares single-run engine throughput,
    // which must not drift with the host's core count or the pool's
    // scheduling.
    let (offs, ons) = ThreadPool::new(1).install(|| {
        let mut offs = Vec::with_capacity(12);
        let mut ons = Vec::with_capacity(12);
        for _ in 0..12 {
            offs.push(measure_engine_for(0.5));
            let _guard = sstsp_telemetry::recording();
            ons.push(measure_engine_for(0.5));
        }
        (offs, ons)
    });
    let off_max = offs.iter().copied().fold(f64::MIN, f64::max);
    let on_max = ons.iter().copied().fold(f64::MIN, f64::max);
    let ratio = off_max / baseline;
    eprintln!(
        "smoke: {off_max:.1} BPs/sec vs baseline {baseline:.1} (ratio {ratio:.3}, tolerance {tol})"
    );
    if ratio < tol {
        eprintln!("smoke: FAIL — telemetry-disabled engine path regressed beyond tolerance");
        std::process::exit(1)
    }
    // Two independent overhead estimators, gate on the smaller:
    //  * max-vs-max — wrong only when one leg's best window was quieter
    //    than the other's best (the maxes sample luck independently);
    //  * median of per-pair ratios — wrong only when load shifted between
    //    the two legs of the median pair.
    // Host noise rarely inflates both at once, while the regression this
    // gate exists to catch (a stray per-event shard lock) costs tens of
    // percent and trips either estimator through any realistic noise. A
    // single estimator flaked in practice: true overhead sits at ~7%
    // against the 10% budget, and this host's load swings are ±10%+.
    let est_max = (1.0 - on_max / off_max) * 100.0;
    let est_pairs = median(
        offs.iter()
            .zip(&ons)
            .map(|(off, on)| (1.0 - on / off) * 100.0)
            .collect(),
    );
    let overhead_pct = est_max.min(est_pairs);
    eprintln!(
        "smoke: telemetry overhead {overhead_pct:.1}% (min of max-vs-max {est_max:.1}% and median-of-pairs {est_pairs:.1}%, budget {max_overhead_pct}%)"
    );
    if overhead_pct > max_overhead_pct {
        eprintln!("smoke: FAIL — telemetry-enabled engine overhead exceeds the budget");
        std::process::exit(1)
    }
    eprintln!("smoke: ok");
    std::process::exit(0)
}

/// Time-bounded large-n smoke + engine-path equivalence gate (see module
/// docs). Exits 1 on a budget overrun or any fast/legacy divergence.
fn run_smoke_large() -> ! {
    let budget_s: f64 = std::env::var("SSTSP_LARGE_SMOKE_BUDGET_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let (n, dur) = LARGE_POINTS[0];
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, n, dur, ENGINE_SEED);
    let timed_run = |label: &str| -> RunResult {
        let t0 = Instant::now();
        let r = Network::build(&cfg).run();
        let dt = t0.elapsed().as_secs_f64();
        eprintln!("smoke-large: {label} n={n} run took {dt:.3}s (budget {budget_s}s)");
        if dt > budget_s {
            eprintln!("smoke-large: FAIL — n={n} run blew the wall-clock budget");
            std::process::exit(1)
        }
        r
    };
    let fast = timed_run("fast path");
    std::env::set_var("SSTSP_NO_FASTPATH", "1");
    let slow = timed_run("SSTSP_NO_FASTPATH=1");
    std::env::remove_var("SSTSP_NO_FASTPATH");
    let identical = fast.spread.values() == slow.spread.values()
        && fast.peak_spread_us.to_bits() == slow.peak_spread_us.to_bits()
        && fast.sync_latency_s == slow.sync_latency_s
        && fast.steady_error_us == slow.steady_error_us
        && fast.tx_successes == slow.tx_successes
        && fast.tx_collisions == slow.tx_collisions
        && fast.silent_windows == slow.silent_windows
        && fast.reference_changes == slow.reference_changes
        && fast.guard_rejections == slow.guard_rejections
        && fast.mutesla_rejections == slow.mutesla_rejections
        && fast.retargets == slow.retargets
        && fast.final_reference == slow.final_reference;
    if !identical {
        eprintln!("smoke-large: FAIL — fast path and SSTSP_NO_FASTPATH=1 runs diverged");
        eprintln!(
            "  fast: peak={} sync={:?} tx={} legacy: peak={} sync={:?} tx={}",
            fast.peak_spread_us,
            fast.sync_latency_s,
            fast.tx_successes,
            slow.peak_spread_us,
            slow.sync_latency_s,
            slow.tx_successes
        );
        std::process::exit(1)
    }
    eprintln!("smoke-large: ok — paths bit-identical");

    // Mesh workload: a 4-domain bridged mesh exercises the per-domain
    // window resolution and reference election at a scale the goldens
    // don't. Same wall budget; every domain must end the run holding a
    // reference, each one distinct.
    let mut mesh = ScenarioConfig::new(ProtocolKind::Sstsp, 103, 5.0, ENGINE_SEED);
    mesh.topology = Some(TopologySpec::Bridged {
        domains: 4,
        cols: 5,
        rows: 5,
    });
    let t0 = Instant::now();
    let (r, mesh_snap) = {
        let _guard = sstsp_telemetry::recording();
        (Network::build(&mesh).run(), sstsp_telemetry::snapshot())
    };
    let dt = t0.elapsed().as_secs_f64();
    eprintln!("smoke-large: bridged mesh n=103 run took {dt:.3}s (budget {budget_s}s)");
    if dt > budget_s {
        eprintln!("smoke-large: FAIL — mesh run blew the wall-clock budget");
        std::process::exit(1)
    }
    // The mesh must ride the per-domain fast path, asserted through the
    // engine's own path counter — a timing threshold would go soft on a
    // loaded host, the counter cannot.
    let (fast_runs, slow_runs) = (
        mesh_snap.counter("engine.path.fast"),
        mesh_snap.counter("engine.path.slow"),
    );
    if fast_runs < 1 || slow_runs > 0 {
        eprintln!(
            "smoke-large: FAIL — bridged mesh did not engage the fast path \
             (engine.path.fast={fast_runs}, engine.path.slow={slow_runs})"
        );
        std::process::exit(1)
    }
    let report = r.domain_report.as_deref().unwrap_or_default();
    let refs: Vec<_> = report.iter().filter_map(|d| d.final_reference).collect();
    let mut distinct = refs.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if report.len() != 4 || refs.len() != 4 || distinct.len() != 4 {
        eprintln!(
            "smoke-large: FAIL — mesh did not elect a distinct reference per domain: {report:?}"
        );
        std::process::exit(1)
    }
    eprintln!("smoke-large: ok — mesh elected {refs:?}");
    std::process::exit(0)
}

fn measure_sweep_for(min_s: f64) -> f64 {
    let base = ScenarioConfig::new(ProtocolKind::Sstsp, SWEEP_NODES, SWEEP_DURATION_S, 0);
    std::hint::black_box(run_seeds(&base, &SWEEP_SEEDS));
    let t0 = Instant::now();
    let mut runs = 0u64;
    while t0.elapsed().as_secs_f64() < min_s {
        std::hint::black_box(run_seeds(&base, &SWEEP_SEEDS));
        runs += SWEEP_SEEDS.len() as u64;
    }
    runs as f64 / t0.elapsed().as_secs_f64()
}

fn measure_sweep() -> f64 {
    median_of(REPEATS, || measure_sweep_for(MIN_MEASURE_S))
}

/// Scaling points for the sweep workload, measured on scoped pools.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The sweep workload at each pool size in [`SCALING_THREADS`]. Whether
/// the extra threads buy anything depends on the host (the recorded
/// `host_threads` field says how many hardware threads the measurement
/// actually had available); the *results* are bit-identical either way.
fn measure_sweep_scaling() -> Vec<(usize, f64)> {
    SCALING_THREADS
        .iter()
        .map(|&t| {
            let r = median_of(REPEATS, || {
                ThreadPool::new(t).install(|| measure_sweep_for(MIN_MEASURE_S / 2.0))
            });
            eprintln!("  {t} thread(s): {r:.2} runs/sec");
            (t, r)
        })
        .collect()
}

fn measure_hashes() -> f64 {
    median_of(REPEATS, || {
        let mut x = [0x5Au8; 16];
        // Warm-up.
        for _ in 0..100_000 {
            x = chain_step(&x);
        }
        let t0 = Instant::now();
        let mut hashes = 0u64;
        while t0.elapsed().as_secs_f64() < MIN_MEASURE_S / 2.0 {
            for _ in 0..500_000 {
                x = chain_step(&x);
            }
            hashes += 500_000;
        }
        std::hint::black_box(x);
        hashes as f64 / t0.elapsed().as_secs_f64()
    })
}

fn format_block(m: &Measurement) -> String {
    let mut s = format!("{{\n    \"bps_per_sec\": {:.1},\n", m.bps_per_sec);
    for &(n, r) in &m.large_bps {
        s.push_str(&format!("    \"large_n{n}_bps_per_sec\": {r:.1},\n"));
    }
    s.push_str(&format!(
        "    \"runs_per_sec\": {:.2},\n    \"hashes_per_sec\": {:.0}\n  }}",
        m.runs_per_sec, m.hashes_per_sec
    ));
    s
}

/// Extract the JSON object following `"<label>":` by brace matching.
fn extract_block(json: &str, label: &str) -> Option<String> {
    let key = format!("\"{label}\":");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pull a numeric field out of a JSON block written by [`format_block`].
fn extract_number(block: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = block.find(&key)? + key.len();
    let rest = block[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut label = "after".to_string();
    let mut out = format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"));
    let mut smoke = false;
    let mut smoke_large = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).expect("--label needs a value").clone();
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).expect("--out needs a value").clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--smoke-large" => {
                smoke_large = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_baseline [--label before|after] [--out path] [--smoke] [--smoke-large]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        label == "before" || label == "after",
        "--label must be 'before' or 'after'"
    );
    if smoke {
        run_smoke(&out);
    }
    if smoke_large {
        run_smoke_large();
    }

    eprintln!(
        "measuring engine ({} nodes, {} s, seed {}; median of {REPEATS}) ...",
        ENGINE_NODES, ENGINE_DURATION_S, ENGINE_SEED
    );
    let bps_per_sec = measure_engine();
    eprintln!("  {bps_per_sec:.1} BPs/sec");
    eprintln!("measuring large-n engine points ...");
    let large_bps = measure_engine_large();
    eprintln!(
        "measuring sweep ({} nodes, {} s, {} seeds) ...",
        SWEEP_NODES,
        SWEEP_DURATION_S,
        SWEEP_SEEDS.len()
    );
    let runs_per_sec = measure_sweep();
    eprintln!("  {runs_per_sec:.2} runs/sec");
    eprintln!("measuring chain_step throughput ...");
    let hashes_per_sec = measure_hashes();
    eprintln!("  {hashes_per_sec:.0} hashes/sec");
    eprintln!("measuring engine telemetry off/on (interleaved pairs) ...");
    let (bps_paired_off, bps_telemetry_on, overhead_pct) = measure_engine_telemetry();
    eprintln!(
        "  off {bps_paired_off:.1} / on {bps_telemetry_on:.1} BPs/sec ({overhead_pct:.1}% overhead)"
    );
    let mesh_nodes = MESH_DOMAINS * MESH_COLS * MESH_ROWS + (MESH_DOMAINS - 1);
    eprintln!(
        "measuring bridged-mesh engine ({MESH_DOMAINS} domains, n={mesh_nodes}, {MESH_DURATION_S} s; interleaved triples) ..."
    );
    let (mesh_fast, mesh_slow, mesh_telemetry_on, mesh_ratio, mesh_overhead_pct) =
        measure_engine_mesh();
    eprintln!("measuring sweep scaling across pool sizes ...");
    let scaling = measure_sweep_scaling();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let m = Measurement {
        bps_per_sec,
        large_bps,
        runs_per_sec,
        hashes_per_sec,
    };

    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    let other_label = if label == "before" { "after" } else { "before" };
    let this_block = format_block(&m);
    let other_block = extract_block(&existing, other_label);

    let mut body = String::from("{\n");
    body.push_str("  \"schema\": \"sstsp-perf-baseline/v2\",\n");
    body.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    let large_desc = LARGE_POINTS
        .iter()
        .map(|&(n, d)| format!("n={n} duration_s={d}"))
        .collect::<Vec<_>>()
        .join(", ");
    body.push_str(&format!(
        "  \"workloads\": {{\n    \"engine\": \"SSTSP n={ENGINE_NODES} duration_s={ENGINE_DURATION_S} seed={ENGINE_SEED}\",\n    \"engine_large\": \"SSTSP {large_desc} seed={ENGINE_SEED}\",\n    \"sweep\": \"SSTSP n={SWEEP_NODES} duration_s={SWEEP_DURATION_S} seeds=1..={}\",\n    \"hash\": \"chain_step (SHA-256 truncated to 128 bits)\"\n  }},\n",
        SWEEP_SEEDS.len()
    ));
    // Keep blocks in before/after order regardless of write order.
    let (before_block, after_block) = if label == "before" {
        (Some(this_block.clone()), other_block.clone())
    } else {
        (other_block.clone(), Some(this_block.clone()))
    };
    if let Some(b) = &before_block {
        body.push_str(&format!("  \"before\": {b},\n"));
    }
    if let Some(a) = &after_block {
        body.push_str(&format!("  \"after\": {a},\n"));
    }
    body.push_str(&format!(
        "  \"telemetry\": {{\n    \"bps_per_sec_off\": {bps_paired_off:.1},\n    \"bps_per_sec_on\": {bps_telemetry_on:.1},\n    \"overhead_pct\": {overhead_pct:.2}\n  }},\n"
    ));
    body.push_str(&format!(
        "  \"engine_mesh\": {{\n    \"workload\": \"SSTSP bridged:{MESH_DOMAINS}:{MESH_COLS}:{MESH_ROWS} n={mesh_nodes} duration_s={MESH_DURATION_S} seed={ENGINE_SEED}\",\n    \"fast_bps_per_sec\": {mesh_fast:.1},\n    \"slow_bps_per_sec\": {mesh_slow:.1},\n    \"fast_over_slow\": {mesh_ratio:.3},\n    \"telemetry_on_bps_per_sec\": {mesh_telemetry_on:.1},\n    \"telemetry_overhead_pct\": {mesh_overhead_pct:.2}\n  }},\n"
    ));
    body.push_str(&format!(
        "  \"sweep_scaling\": {{\n    \"host_threads\": {host_threads},\n"
    ));
    for (i, (t, r)) in scaling.iter().enumerate() {
        let sep = if i + 1 == scaling.len() { "" } else { "," };
        body.push_str(&format!("    \"runs_per_sec_threads_{t}\": {r:.2}{sep}\n"));
    }
    body.push_str("  },\n");
    if let (Some(b), Some(a)) = (&before_block, &after_block) {
        let speedup = |field: &str| -> Option<f64> {
            Some(extract_number(a, field)? / extract_number(b, field)?)
        };
        // Emit whichever ratios both blocks carry (older blocks lack the
        // large-n fields).
        let mut pairs: Vec<(String, f64)> = Vec::new();
        for (name, field) in [
            ("bps", "bps_per_sec".to_string()),
            ("runs", "runs_per_sec".to_string()),
            ("hashes", "hashes_per_sec".to_string()),
        ] {
            if let Some(s) = speedup(&field) {
                pairs.push((name.to_string(), s));
            }
        }
        for &(n, _) in &LARGE_POINTS {
            if let Some(s) = speedup(&format!("large_n{n}_bps_per_sec")) {
                pairs.push((format!("large_n{n}_bps"), s));
            }
        }
        if !pairs.is_empty() {
            body.push_str("  \"speedup\": {\n");
            for (i, (name, s)) in pairs.iter().enumerate() {
                let sep = if i + 1 == pairs.len() { "" } else { "," };
                body.push_str(&format!("    \"{name}\": {s:.3}{sep}\n"));
            }
            body.push_str("  },\n");
        }
    }
    // Trim the trailing comma and close.
    if body.ends_with(",\n") {
        body.truncate(body.len() - 2);
        body.push('\n');
    }
    body.push_str("}\n");

    std::fs::write(&out, &body).expect("write BENCH_engine.json");
    eprintln!("wrote {out} ({label} block)");
    println!("{body}");
}
