//! Reproducible performance baseline for the simulation hot paths.
//!
//! Measures three throughput numbers and records them in
//! `BENCH_engine.json` at the repository root:
//!
//! * **BPs/sec** — simulated beacon periods per wall-clock second on the
//!   100-node SSTSP scenario (the engine hot loop + µTESLA verification).
//! * **runs/sec** — complete runs per second across a `run_seeds` sweep
//!   (the figure-regeneration workload).
//! * **hashes/sec** — `chain_step` applications per second (the µTESLA
//!   primitive every signer/verifier bottoms out in).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sstsp-bench --bin perf_baseline -- --label after
//! ```
//!
//! `--label before|after` selects which block of `BENCH_engine.json` to
//! write; the other block is preserved so the file always carries the
//! before/after pair for the current optimization cycle, plus derived
//! speedups when both are present. `--out <path>` overrides the output
//! location. All workloads are fixed-seed, so any change in the numbers
//! is a change in the code, not in the work.
//!
//! A full run also measures the engine workload with telemetry recording
//! enabled and records the off/on pair (plus overhead percentage) in the
//! `telemetry` block — the disabled path is the one the goldens and every
//! experiment run on, so its cost must stay at one relaxed atomic load per
//! instrumented site.
//!
//! `--smoke` instead runs a short telemetry-**disabled** engine measurement
//! and fails (exit 1) if throughput fell below `SSTSP_SMOKE_TOL`
//! (default 0.98, i.e. a >2% regression) times the recorded
//! `after.bps_per_sec`; nothing is written. This is the CI guard that the
//! telemetry layer stays free when off.

use rayon::ThreadPool;
use sstsp::sweep::run_seeds;
use sstsp::{Network, ProtocolKind, ScenarioConfig};
use sstsp_crypto::chain::chain_step;
use std::time::Instant;

/// Engine workload: the acceptance scenario from the perf issue.
const ENGINE_NODES: u32 = 100;
const ENGINE_DURATION_S: f64 = 20.0;
const ENGINE_SEED: u64 = 2006;
/// Sweep workload.
const SWEEP_NODES: u32 = 25;
const SWEEP_DURATION_S: f64 = 10.0;
const SWEEP_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
/// Minimum wall time per measurement, seconds.
const MIN_MEASURE_S: f64 = 3.0;

struct Measurement {
    bps_per_sec: f64,
    runs_per_sec: f64,
    hashes_per_sec: f64,
}

fn measure_engine_for(min_s: f64) -> f64 {
    let cfg = ScenarioConfig::new(
        ProtocolKind::Sstsp,
        ENGINE_NODES,
        ENGINE_DURATION_S,
        ENGINE_SEED,
    );
    let bps_per_run = cfg.total_bps();
    // Warm-up run.
    std::hint::black_box(Network::build(&cfg).run());
    let t0 = Instant::now();
    let mut runs = 0u64;
    while t0.elapsed().as_secs_f64() < min_s {
        std::hint::black_box(Network::build(&cfg).run());
        runs += 1;
    }
    (runs * bps_per_run) as f64 / t0.elapsed().as_secs_f64()
}

fn measure_engine() -> f64 {
    measure_engine_for(MIN_MEASURE_S)
}

/// The engine workload with metrics recording live (counters, gauges,
/// spread distribution — no trace hook, matching how a sweep would record).
fn measure_engine_telemetry_on() -> f64 {
    let _guard = sstsp_telemetry::recording();
    measure_engine_for(MIN_MEASURE_S)
}

/// Short telemetry-disabled engine check against the recorded baseline.
/// Exits 1 on a regression beyond tolerance, 0 otherwise.
fn run_smoke(out: &str) -> ! {
    let baseline = std::fs::read_to_string(out)
        .ok()
        .and_then(|json| extract_block(&json, "after"))
        .and_then(|block| extract_number(&block, "bps_per_sec"));
    let Some(baseline) = baseline else {
        eprintln!("smoke: no after.bps_per_sec baseline in {out}; nothing to compare");
        std::process::exit(0)
    };
    let tol: f64 = std::env::var("SSTSP_SMOKE_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.98);
    // Pin the smoke to a 1-thread pool: the guard compares single-run
    // engine throughput, which must not drift with the host's core count
    // or the pool's scheduling.
    let measured = ThreadPool::new(1).install(|| measure_engine_for(1.0));
    let ratio = measured / baseline;
    eprintln!(
        "smoke: {measured:.1} BPs/sec vs baseline {baseline:.1} (ratio {ratio:.3}, tolerance {tol})"
    );
    if ratio < tol {
        eprintln!("smoke: FAIL — telemetry-disabled engine path regressed beyond tolerance");
        std::process::exit(1)
    }
    eprintln!("smoke: ok");
    std::process::exit(0)
}

fn measure_sweep_for(min_s: f64) -> f64 {
    let base = ScenarioConfig::new(ProtocolKind::Sstsp, SWEEP_NODES, SWEEP_DURATION_S, 0);
    std::hint::black_box(run_seeds(&base, &SWEEP_SEEDS));
    let t0 = Instant::now();
    let mut runs = 0u64;
    while t0.elapsed().as_secs_f64() < min_s {
        std::hint::black_box(run_seeds(&base, &SWEEP_SEEDS));
        runs += SWEEP_SEEDS.len() as u64;
    }
    runs as f64 / t0.elapsed().as_secs_f64()
}

fn measure_sweep() -> f64 {
    measure_sweep_for(MIN_MEASURE_S)
}

/// Scaling points for the sweep workload, measured on scoped pools.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The sweep workload at each pool size in [`SCALING_THREADS`]. Whether
/// the extra threads buy anything depends on the host (the recorded
/// `host_threads` field says how many hardware threads the measurement
/// actually had available); the *results* are bit-identical either way.
fn measure_sweep_scaling() -> Vec<(usize, f64)> {
    SCALING_THREADS
        .iter()
        .map(|&t| {
            let r = ThreadPool::new(t).install(|| measure_sweep_for(MIN_MEASURE_S / 2.0));
            eprintln!("  {t} thread(s): {r:.2} runs/sec");
            (t, r)
        })
        .collect()
}

fn measure_hashes() -> f64 {
    let mut x = [0x5Au8; 16];
    // Warm-up.
    for _ in 0..100_000 {
        x = chain_step(&x);
    }
    let t0 = Instant::now();
    let mut hashes = 0u64;
    while t0.elapsed().as_secs_f64() < MIN_MEASURE_S / 2.0 {
        for _ in 0..500_000 {
            x = chain_step(&x);
        }
        hashes += 500_000;
    }
    std::hint::black_box(x);
    hashes as f64 / t0.elapsed().as_secs_f64()
}

fn format_block(m: &Measurement) -> String {
    format!(
        "{{\n    \"bps_per_sec\": {:.1},\n    \"runs_per_sec\": {:.2},\n    \"hashes_per_sec\": {:.0}\n  }}",
        m.bps_per_sec, m.runs_per_sec, m.hashes_per_sec
    )
}

/// Extract the JSON object following `"<label>":` by brace matching.
fn extract_block(json: &str, label: &str) -> Option<String> {
    let key = format!("\"{label}\":");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Pull a numeric field out of a JSON block written by [`format_block`].
fn extract_number(block: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let start = block.find(&key)? + key.len();
    let rest = block[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut label = "after".to_string();
    let mut out = format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"));
    let mut smoke = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).expect("--label needs a value").clone();
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).expect("--out needs a value").clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf_baseline [--label before|after] [--out path] [--smoke]");
                std::process::exit(2);
            }
        }
    }
    assert!(
        label == "before" || label == "after",
        "--label must be 'before' or 'after'"
    );
    if smoke {
        run_smoke(&out);
    }

    eprintln!(
        "measuring engine ({} nodes, {} s, seed {}) ...",
        ENGINE_NODES, ENGINE_DURATION_S, ENGINE_SEED
    );
    let bps_per_sec = measure_engine();
    eprintln!("  {bps_per_sec:.1} BPs/sec");
    eprintln!(
        "measuring sweep ({} nodes, {} s, {} seeds) ...",
        SWEEP_NODES,
        SWEEP_DURATION_S,
        SWEEP_SEEDS.len()
    );
    let runs_per_sec = measure_sweep();
    eprintln!("  {runs_per_sec:.2} runs/sec");
    eprintln!("measuring chain_step throughput ...");
    let hashes_per_sec = measure_hashes();
    eprintln!("  {hashes_per_sec:.0} hashes/sec");
    eprintln!("measuring engine with telemetry recording enabled ...");
    let bps_telemetry_on = measure_engine_telemetry_on();
    let overhead_pct = (1.0 - bps_telemetry_on / bps_per_sec) * 100.0;
    eprintln!("  {bps_telemetry_on:.1} BPs/sec ({overhead_pct:.1}% overhead)");
    eprintln!("measuring sweep scaling across pool sizes ...");
    let scaling = measure_sweep_scaling();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let m = Measurement {
        bps_per_sec,
        runs_per_sec,
        hashes_per_sec,
    };

    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    let other_label = if label == "before" { "after" } else { "before" };
    let this_block = format_block(&m);
    let other_block = extract_block(&existing, other_label);

    let mut body = String::from("{\n");
    body.push_str("  \"schema\": \"sstsp-perf-baseline/v1\",\n");
    body.push_str(&format!(
        "  \"workloads\": {{\n    \"engine\": \"SSTSP n={ENGINE_NODES} duration_s={ENGINE_DURATION_S} seed={ENGINE_SEED}\",\n    \"sweep\": \"SSTSP n={SWEEP_NODES} duration_s={SWEEP_DURATION_S} seeds=1..={}\",\n    \"hash\": \"chain_step (SHA-256 truncated to 128 bits)\"\n  }},\n",
        SWEEP_SEEDS.len()
    ));
    // Keep blocks in before/after order regardless of write order.
    let (before_block, after_block) = if label == "before" {
        (Some(this_block.clone()), other_block.clone())
    } else {
        (other_block.clone(), Some(this_block.clone()))
    };
    if let Some(b) = &before_block {
        body.push_str(&format!("  \"before\": {b},\n"));
    }
    if let Some(a) = &after_block {
        body.push_str(&format!("  \"after\": {a},\n"));
    }
    body.push_str(&format!(
        "  \"telemetry\": {{\n    \"bps_per_sec_off\": {bps_per_sec:.1},\n    \"bps_per_sec_on\": {bps_telemetry_on:.1},\n    \"overhead_pct\": {overhead_pct:.2}\n  }},\n"
    ));
    body.push_str(&format!(
        "  \"sweep_scaling\": {{\n    \"host_threads\": {host_threads},\n"
    ));
    for (i, (t, r)) in scaling.iter().enumerate() {
        let sep = if i + 1 == scaling.len() { "" } else { "," };
        body.push_str(&format!("    \"runs_per_sec_threads_{t}\": {r:.2}{sep}\n"));
    }
    body.push_str("  },\n");
    if let (Some(b), Some(a)) = (&before_block, &after_block) {
        let speedup = |field: &str| -> Option<f64> {
            Some(extract_number(a, field)? / extract_number(b, field)?)
        };
        if let (Some(sb), Some(sr), Some(sh)) = (
            speedup("bps_per_sec"),
            speedup("runs_per_sec"),
            speedup("hashes_per_sec"),
        ) {
            body.push_str(&format!(
                "  \"speedup\": {{\n    \"bps\": {sb:.3},\n    \"runs\": {sr:.3},\n    \"hashes\": {sh:.3}\n  }},\n"
            ));
        }
    }
    // Trim the trailing comma and close.
    if body.ends_with(",\n") {
        body.truncate(body.len() - 2);
        body.push('\n');
    }
    body.push_str("}\n");

    std::fs::write(&out, &body).expect("write BENCH_engine.json");
    eprintln!("wrote {out} ({label} block)");
    println!("{body}");
}
