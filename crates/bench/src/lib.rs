//! Shared plumbing for the benchmark targets in `benches/`.
//!
//! Every bench target does two things:
//!
//! 1. **regenerates its table/figure** at paper fidelity and prints the
//!    same rows/series the paper reports (set `SSTSP_BENCH_FIDELITY=quick`
//!    to shrink the regeneration for smoke runs), then
//! 2. **times a reduced-scale kernel** of the same experiment under
//!    Criterion, so `cargo bench` tracks the simulator's performance.

use sstsp::experiments::Fidelity;

/// Fidelity for the figure-regeneration pass, from
/// `SSTSP_BENCH_FIDELITY` (`paper` default, `quick` to shrink).
pub fn regen_fidelity() -> Fidelity {
    match std::env::var("SSTSP_BENCH_FIDELITY").as_deref() {
        Ok("quick") => Fidelity::Quick,
        _ => Fidelity::Paper,
    }
}

/// The seed every regeneration uses (fixed: figures are deterministic).
pub const REGEN_SEED: u64 = 2006;

/// Standard Criterion configuration for simulation kernels: few samples,
/// short measurement windows — each kernel iteration is a full simulation
/// run, not a microsecond-scale function.
pub fn sim_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}
