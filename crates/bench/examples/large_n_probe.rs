use sstsp::{Network, ProtocolKind, ScenarioConfig};
use std::time::Instant;

fn main() {
    for &(n, dur) in &[(100u32, 20.0f64), (1000, 5.0), (5000, 1.0)] {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, n, dur, 2006);
        let bps = cfg.total_bps();
        let t0 = Instant::now();
        let net = Network::build(&cfg);
        let t_build = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let r = net.run();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "n={n:5} bps={bps} build={t_build:.4}s run={dt:.4}s bps/s={:.1} ns/node/bp={:.1} peak={:.1} sync={:?}",
            bps as f64 / dt,
            dt * 1e9 / (bps as f64 * n as f64),
            r.peak_spread_us,
            r.sync_latency_s
        );
    }
}
