//! The simulation run loop.
//!
//! [`Simulator`] owns an [`EventQueue`] and a notion of "now"; the caller
//! supplies a handler that reacts to each event and may schedule more. The
//! loop enforces the fundamental DES invariant — time never goes backwards —
//! and supports a horizon (stop time) plus an event budget as a runaway
//! guard.

use crate::event::{EventKey, EventQueue, ScheduledEvent};
use crate::time::{SimDuration, SimTime};

/// Flow control returned by an event handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimControl {
    /// Keep processing events.
    Continue,
    /// Stop the run loop after this event.
    Halt,
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The next event lay beyond the configured horizon.
    HorizonReached,
    /// A handler requested a halt.
    Halted,
    /// The event budget was exhausted (runaway guard).
    BudgetExhausted,
}

/// A discrete-event simulator generic over the event payload type.
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    events_processed: u64,
    event_budget: u64,
    peak_pending: usize,
    probe: Option<Box<dyn FnMut(SimTime, u64)>>,
}

impl<E> Simulator<E> {
    /// Create a simulator that runs until `horizon` (exclusive: events
    /// scheduled strictly after the horizon are not delivered).
    pub fn new(horizon: SimTime) -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon,
            events_processed: 0,
            event_budget: u64::MAX,
            peak_pending: 0,
            probe: None,
        }
    }

    /// Install an observation probe called once per delivered event, before
    /// the handler, with the event time and the running event count.
    ///
    /// Probes are passive instrumentation: they cannot schedule, cancel, or
    /// halt. Fault-injection and invariant-checking layers use this to watch
    /// the event stream (e.g. assert delivery-time monotonicity) without
    /// perturbing the run.
    pub fn set_probe(&mut self, probe: Box<dyn FnMut(SimTime, u64)>) {
        self.probe = Some(probe);
    }

    /// Remove the probe, returning it.
    pub fn take_probe(&mut self) -> Option<Box<dyn FnMut(SimTime, u64)>> {
        self.probe.take()
    }

    /// Cap the total number of events processed; exceeded budgets stop the
    /// loop with [`StopReason::BudgetExhausted`].
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current simulated time — that
    /// would violate causality and silently corrupt results.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventKey {
        assert!(
            time >= self.now,
            "attempted to schedule an event in the past: {time} < now {}",
            self.now
        );
        let key = self.queue.schedule(time, payload);
        self.peak_pending = self.peak_pending.max(self.queue.len());
        key
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventKey {
        let key = self.queue.schedule(self.now + delay, payload);
        self.peak_pending = self.peak_pending.max(self.queue.len());
        key
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event count over the whole run — the
    /// queue-depth figure surfaced by run-level telemetry. Cancellations
    /// never lower it.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Run the loop, delivering each event to `handler`, until the queue
    /// drains, the horizon is reached, the handler halts, or the budget is
    /// exhausted.
    pub fn run<F>(&mut self, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Simulator<E>, ScheduledEvent<E>) -> SimControl,
    {
        loop {
            if self.events_processed >= self.event_budget {
                return StopReason::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return StopReason::QueueEmpty,
                Some(t) if t > self.horizon => {
                    self.now = self.horizon;
                    return StopReason::HorizonReached;
                }
                Some(_) => {}
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            debug_assert!(
                ev.time >= self.now,
                "event queue returned out-of-order event"
            );
            self.now = ev.time;
            self.events_processed += 1;
            if let Some(mut probe) = self.probe.take() {
                probe(ev.time, self.events_processed);
                self.probe = Some(probe);
            }
            if handler(self, ev) == SimControl::Halt {
                return StopReason::Halted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Stop,
    }

    #[test]
    fn delivers_in_order_and_advances_time() {
        let mut sim = Simulator::new(SimTime::from_secs(1));
        sim.schedule_at(SimTime::from_ms(20), Ev::Tick(2));
        sim.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        let mut seen = Vec::new();
        let reason = sim.run(|sim, ev| {
            seen.push((
                ev.time,
                match ev.payload {
                    Ev::Tick(n) => n,
                    Ev::Stop => 0,
                },
            ));
            assert_eq!(sim.now(), ev.time);
            SimControl::Continue
        });
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(
            seen,
            vec![(SimTime::from_ms(10), 1), (SimTime::from_ms(20), 2)]
        );
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut sim = Simulator::new(SimTime::from_ms(15));
        sim.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        sim.schedule_at(SimTime::from_ms(20), Ev::Tick(2));
        let mut count = 0;
        let reason = sim.run(|_, _| {
            count += 1;
            SimControl::Continue
        });
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(count, 1);
        assert_eq!(sim.now(), SimTime::from_ms(15));
    }

    #[test]
    fn handler_can_halt() {
        let mut sim = Simulator::new(SimTime::from_secs(1));
        sim.schedule_at(SimTime::from_ms(1), Ev::Stop);
        sim.schedule_at(SimTime::from_ms(2), Ev::Tick(9));
        let reason = sim.run(|_, ev| match ev.payload {
            Ev::Stop => SimControl::Halt,
            _ => SimControl::Continue,
        });
        assert_eq!(reason, StopReason::Halted);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim = Simulator::new(SimTime::from_ms(100));
        sim.schedule_at(SimTime::from_ms(1), Ev::Tick(0));
        let mut ticks = 0u32;
        sim.run(|sim, ev| {
            if let Ev::Tick(n) = ev.payload {
                ticks = n;
                if n < 5 {
                    sim.schedule_after(SimDuration::from_ms(1), Ev::Tick(n + 1));
                }
            }
            SimControl::Continue
        });
        assert_eq!(ticks, 5);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new(SimTime::from_secs(1));
        sim.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        sim.run(|sim, _| {
            sim.schedule_at(SimTime::from_ms(5), Ev::Tick(2));
            SimControl::Continue
        });
    }

    #[test]
    fn event_budget_guard() {
        let mut sim = Simulator::new(SimTime::MAX).with_event_budget(10);
        sim.schedule_at(SimTime::from_ms(1), Ev::Tick(0));
        let reason = sim.run(|sim, _| {
            // Pathological self-perpetuating event chain.
            sim.schedule_after(SimDuration::from_ms(1), Ev::Tick(0));
            SimControl::Continue
        });
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn probe_sees_every_event_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut sim = Simulator::new(SimTime::from_secs(1));
        sim.set_probe(Box::new(move |t, n| sink.borrow_mut().push((t, n))));
        sim.schedule_at(SimTime::from_ms(30), Ev::Tick(3));
        sim.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        sim.schedule_at(SimTime::from_ms(20), Ev::Tick(2));
        sim.run(|_, _| SimControl::Continue);
        let seen = seen.borrow();
        assert_eq!(
            *seen,
            vec![
                (SimTime::from_ms(10), 1),
                (SimTime::from_ms(20), 2),
                (SimTime::from_ms(30), 3),
            ]
        );
        // Passive: a probe observes strictly non-decreasing times.
        assert!(seen.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn probe_runs_before_handler_and_can_be_removed() {
        use std::cell::Cell;
        use std::rc::Rc;
        let probe_count = Rc::new(Cell::new(0u32));
        let pc = Rc::clone(&probe_count);
        let mut sim = Simulator::new(SimTime::from_secs(1));
        sim.set_probe(Box::new(move |_, _| pc.set(pc.get() + 1)));
        sim.schedule_at(SimTime::from_ms(1), Ev::Tick(1));
        sim.schedule_at(SimTime::from_ms(2), Ev::Tick(2));
        let mut handler_count = 0u32;
        sim.run(|sim, _| {
            handler_count += 1;
            if handler_count == 1 {
                // By the time the handler runs, the probe has already fired.
                assert_eq!(probe_count.get(), 1);
                assert!(sim.take_probe().is_some());
            }
            SimControl::Continue
        });
        assert_eq!(handler_count, 2);
        assert_eq!(probe_count.get(), 1, "removed probe stops firing");
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        let mut sim = Simulator::new(SimTime::from_secs(1));
        assert_eq!(sim.peak_pending(), 0);
        let k1 = sim.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        sim.schedule_at(SimTime::from_ms(20), Ev::Tick(2));
        sim.schedule_after(SimDuration::from_ms(30), Ev::Tick(3));
        assert_eq!(sim.peak_pending(), 3);
        // Draining and cancelling never lower the high-water mark.
        sim.cancel(k1);
        sim.run(|_, _| SimControl::Continue);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.peak_pending(), 3);
    }

    #[test]
    fn cancellation_through_simulator() {
        let mut sim = Simulator::new(SimTime::from_secs(1));
        let k = sim.schedule_at(SimTime::from_ms(10), Ev::Tick(1));
        sim.schedule_at(SimTime::from_ms(20), Ev::Tick(2));
        assert!(sim.cancel(k));
        let mut seen = Vec::new();
        sim.run(|_, ev| {
            if let Ev::Tick(n) = ev.payload {
                seen.push(n);
            }
            SimControl::Continue
        });
        assert_eq!(seen, vec![2]);
    }
}
