//! Online statistics used by the experiment harness.
//!
//! [`OnlineStats`] is a Welford accumulator (numerically stable mean and
//! variance in one pass, no sample storage). [`Histogram`] is a fixed-width
//! linear-bin histogram with overflow/underflow buckets, sufficient for the
//! clock-error distributions we report.

use serde::{Deserialize, Serialize};

/// One-pass mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction;
    /// Chan et al. pairwise update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Where a [`Histogram::quantile`] estimate landed relative to the binned
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QuantileEstimate {
    /// The estimate, interpolated inside `[lo, hi)`.
    Value(f64),
    /// The target rank lies in the underflow bucket: the true quantile is
    /// below `lo` and unrepresentable at this binning.
    BelowRange,
    /// The target rank lies in the overflow bucket: the true quantile is at
    /// or above `hi` and unrepresentable at this binning.
    AboveRange,
}

impl QuantileEstimate {
    /// The in-range estimate, `None` for out-of-range signals. Callers that
    /// previously relied on the clamped value must decide explicitly what
    /// an out-of-range tail means for them.
    pub fn value(self) -> Option<f64> {
        match self {
            QuantileEstimate::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Fixed-width linear-bin histogram over `[lo, hi)` with underflow and
/// overflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate quantile `q` in `[0, 1]` by linear interpolation within
    /// the owning bin. Returns `None` when empty.
    ///
    /// When the target rank lands in the underflow or overflow bucket the
    /// true quantile is outside `[lo, hi)` and *cannot be estimated* at
    /// this binning; that is reported as a distinct
    /// [`QuantileEstimate::BelowRange`] / [`QuantileEstimate::AboveRange`]
    /// rather than silently clamping to the range edge (clamping
    /// under-reported tail quantiles — e.g. the p99 of a half-overflowed
    /// distribution came back as `hi` as if it had been observed).
    pub fn quantile(&self, q: f64) -> Option<QuantileEstimate> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(QuantileEstimate::BelowRange);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if cum + c >= target {
                let into = (target - cum) as f64 / c.max(1) as f64;
                return Some(QuantileEstimate::Value(self.lo + (i as f64 + into) * width));
            }
            cum += c;
        }
        Some(QuantileEstimate::AboveRange)
    }

    /// Merge another histogram with identical binning.
    ///
    /// # Panics
    /// Panics on mismatched ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo.to_bits(), other.lo.to_bits(), "range mismatch");
        assert_eq!(self.hi.to_bits(), other.hi.to_bits(), "range mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2); // 0.0, 0.5
        assert_eq!(h.bins()[5], 1); // 5.0
        assert_eq!(h.bins()[9], 1); // 9.99
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap().value().unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median ~50, got {median}");
        let p99 = h.quantile(0.99).unwrap().value().unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 ~99, got {p99}");
    }

    #[test]
    fn tail_quantile_in_overflow_is_flagged_not_clamped() {
        // Regression: half the mass beyond the range. p99 (and even p60)
        // lies in the overflow bucket; the old implementation returned
        // `Some(hi)` as if 10.0 had been observed.
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..50 {
            h.record(i as f64 / 10.0); // 50 in-range samples in [0, 5)
        }
        for _ in 0..50 {
            h.record(1e6); // 50 overflow samples
        }
        assert_eq!(h.quantile(0.99), Some(QuantileEstimate::AboveRange));
        assert_eq!(h.quantile(0.60), Some(QuantileEstimate::AboveRange));
        // In-range quantiles still interpolate.
        let q25 = h.quantile(0.25).unwrap().value().unwrap();
        assert!((0.0..5.0).contains(&q25), "q25 in range, got {q25}");
        // Fully-underflowed rank reports BelowRange, not `lo`.
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..10 {
            h.record(-1.0);
        }
        h.record(5.0);
        assert_eq!(h.quantile(0.5), Some(QuantileEstimate::BelowRange));
        // q=1.0 lands at the top of the sample's bin [5, 6).
        assert_eq!(h.quantile(1.0), Some(QuantileEstimate::Value(6.0)));
        // Empty histogram is still `None`.
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(9.0);
        b.record(-3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.bins()[0], 1);
        assert_eq!(a.bins()[4], 1);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }
}
