//! Deterministic random-stream derivation.
//!
//! Every logical actor in a simulation (a node's oscillator, a node's MAC
//! backoff, the channel's packet-error coin, ...) gets its *own* RNG stream
//! derived from `(master_seed, domain, index)` through a SplitMix64-style
//! mixer. Streams are therefore independent of the order in which other
//! actors draw randomness — the property that makes parameter sweeps
//! reproducible and comparable across protocol variants (common random
//! numbers: TSF and SSTSP runs with the same seed see the same oscillator
//! drifts and the same channel error coins).

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Domain separation labels for derived streams.
///
/// Adding a new domain must not renumber existing ones, or archived results
/// stop being reproducible; append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum StreamDomain {
    /// Oscillator frequency/phase sampling for a node.
    Oscillator = 1,
    /// MAC-layer contention backoff draws for a node.
    MacBackoff = 2,
    /// Channel packet-error coin flips.
    ChannelError = 3,
    /// Protocol-internal randomness (e.g. hash-chain seeds).
    Protocol = 4,
    /// Attacker behaviour randomness.
    Attacker = 5,
    /// Scenario-level randomness (churn selection, topology).
    Scenario = 6,
    /// Per-beacon timestamping jitter below the MAC.
    TimestampJitter = 7,
}

/// Factory for independent deterministic RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master: u64,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngStreams {
    /// Create a stream factory from a master seed.
    pub fn new(master: u64) -> Self {
        RngStreams { master }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the 256-bit seed for `(domain, index)`.
    fn derive_seed(&self, domain: StreamDomain, index: u64) -> [u8; 32] {
        let mut seed = [0u8; 32];
        let mut state = splitmix64(self.master ^ (domain as u64).rotate_left(32) ^ index);
        for chunk in seed.chunks_exact_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        seed
    }

    /// Build the RNG stream for `(domain, index)`.
    ///
    /// `index` is typically a node id; use 0 for singleton actors like the
    /// channel.
    pub fn stream(&self, domain: StreamDomain, index: u64) -> ChaCha12Rng {
        ChaCha12Rng::from_seed(self.derive_seed(domain, index))
    }
}

/// A transparent [`RngCore`] wrapper that counts draws.
///
/// The wrapper forwards every call to the inner generator unchanged, so the
/// produced stream is bit-identical to the unwrapped one — wrapping an
/// engine RNG in telemetry instrumentation cannot perturb a run. Each of
/// `next_u32` / `next_u64` / `fill_bytes` counts as one draw; the count is
/// a cheap proxy for "how much randomness this actor consumed", useful for
/// spotting draw-pattern drift between runs that should be identical.
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: RngCore> CountingRng<R> {
    /// Wrap `inner`, starting the draw count at zero.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Number of RNG calls made through this wrapper so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Unwrap, returning the inner generator.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += 1;
        self.inner.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let f = RngStreams::new(42);
        let mut ra = f.stream(StreamDomain::Oscillator, 7);
        let mut rb = f.stream(StreamDomain::Oscillator, 7);
        let a: Vec<u64> = (0..8).map(|_| ra.random()).collect();
        let b: Vec<u64> = (0..8).map(|_| rb.random()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_index_different_stream() {
        let f = RngStreams::new(42);
        let a: u64 = f.stream(StreamDomain::Oscillator, 1).random();
        let b: u64 = f.stream(StreamDomain::Oscillator, 2).random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_domain_different_stream() {
        let f = RngStreams::new(42);
        let a: u64 = f.stream(StreamDomain::Oscillator, 1).random();
        let b: u64 = f.stream(StreamDomain::MacBackoff, 1).random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_different_stream() {
        let a: u64 = RngStreams::new(1)
            .stream(StreamDomain::Protocol, 0)
            .random();
        let b: u64 = RngStreams::new(2)
            .stream(StreamDomain::Protocol, 0)
            .random();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the public-domain SplitMix64 implementation
        // (Vigna), seed 0 advanced once, and seed 1 advanced once.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn counting_rng_is_transparent_and_counts() {
        let f = RngStreams::new(7);
        let mut plain = f.stream(StreamDomain::ChannelError, 0);
        let mut counted = CountingRng::new(f.stream(StreamDomain::ChannelError, 0));
        assert_eq!(counted.draws(), 0);
        let a: Vec<u64> = (0..16).map(|_| plain.random()).collect();
        let b: Vec<u64> = (0..16).map(|_| counted.random()).collect();
        assert_eq!(a, b, "wrapping must not change the stream");
        assert_eq!(counted.draws(), 16);
        let mut buf = [0u8; 24];
        counted.fill_bytes(&mut buf);
        let _ = counted.next_u32();
        assert_eq!(counted.draws(), 18);
        // The unwrapped inner generator continues the same stream.
        let mut inner = counted.into_inner();
        plain.fill_bytes(&mut [0u8; 24]);
        let _ = plain.next_u32();
        assert_eq!(inner.next_u64(), plain.next_u64());
    }

    #[test]
    fn stream_draw_order_independence() {
        // Drawing from one stream must not affect another.
        let f = RngStreams::new(99);
        let mut s1 = f.stream(StreamDomain::MacBackoff, 0);
        let _burn: u64 = s1.random();
        let fresh: u64 = f.stream(StreamDomain::MacBackoff, 1).random();
        let independent: u64 = f.stream(StreamDomain::MacBackoff, 1).random();
        assert_eq!(fresh, independent);
    }
}
