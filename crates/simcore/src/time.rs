//! Simulated time as integer picoseconds.
//!
//! Picosecond resolution leaves ample headroom below the 1 µs quantum of the
//! IEEE 802.11 TSF timer while still covering ~213 days in a `u64`. Using an
//! integer representation means event ordering is exact and runs are
//! bit-reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An instant of simulated (real, i.e. "true") time, in picoseconds since
/// the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Construct from fractional seconds. Rounds to the nearest picosecond.
    ///
    /// Intended for configuration values (e.g. "BP = 0.1 s"), not for hot
    /// paths.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch (truncating), matching the
    /// granularity of the 802.11 TSF timer.
    #[inline]
    pub const fn as_us_floor(self) -> u64 {
        self.0 / PS_PER_US
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating subtraction producing a duration.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest picosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// picosecond.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "SimDuration cannot be negative");
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division of durations (how many `rhs` fit in `self`).
    #[inline]
    pub const fn div_duration(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < PS_PER_US {
            write!(f, "{}ps", self.0)
        } else if self.0 < PS_PER_SEC {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_us(1_234_567);
        assert_eq!(t.as_us_floor(), 1_234_567);
        assert_eq!(t.as_ps(), 1_234_567 * PS_PER_US);
        assert!((t.as_secs_f64() - 1.234_567).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds() {
        let t = SimTime::from_secs_f64(0.1);
        assert_eq!(t.as_ps(), PS_PER_SEC / 10);
        let d = SimDuration::from_secs_f64(0.1);
        assert_eq!(d.as_ps(), PS_PER_SEC / 10);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let d = SimDuration::from_us(3);
        assert_eq!(a + d, SimTime::from_us(13));
        assert_eq!((a + d) - a, SimDuration::from_us(3));
        assert_eq!(d * 4, SimDuration::from_us(12));
        assert_eq!((d * 4) / 2, SimDuration::from_us(6));
    }

    #[test]
    fn microsecond_floor_quantization() {
        let t = SimTime::from_ps(1_999_999);
        assert_eq!(t.as_us_floor(), 1);
        let t = SimTime::from_ps(2_000_000);
        assert_eq!(t.as_us_floor(), 2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_us(4));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_ps(1);
        let b = SimTime::from_ps(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_renders_scaled_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_us(9)), "9.000us");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000000s");
    }

    #[test]
    fn div_duration_counts_periods() {
        let bp = SimDuration::from_ms(100);
        let t = SimDuration::from_secs(1);
        assert_eq!(t.div_duration(bp), 10);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total, SimDuration::from_us(10));
    }
}
