//! Time-series recording for figures.
//!
//! Every figure in the paper is "metric vs. simulated time"; [`TimeSeries`]
//! stores `(SimTime, f64)` samples and offers downsampling and summary
//! operations used when rendering figures as text or CSV.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// An append-only series of `(time, value)` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Series name (used as a column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample. Samples must be pushed in non-decreasing time order.
    ///
    /// # Panics
    /// Panics (debug builds) if `t` precedes the last recorded sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.times.last().is_none_or(|&last| t >= last),
            "time series samples must be monotone"
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Maximum value over the window `[from, to]`, or `None` if the window
    /// holds no samples.
    pub fn max_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.iter()
            .filter(|&(t, _)| t >= from && t <= to)
            .map(|(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean value over the window `[from, to]`, or `None` if empty.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for (t, v) in self.iter() {
            if t >= from && t <= to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// First time at which the value drops to `threshold` or below and
    /// *stays* there for at least `hold` consecutive samples. Used to detect
    /// "network synchronized" per the paper's ≤ 25 µs criterion.
    pub fn first_sustained_below(&self, threshold: f64, hold: usize) -> Option<SimTime> {
        if self.is_empty() || hold == 0 {
            return None;
        }
        let mut run = 0usize;
        let mut start = None;
        for (t, v) in self.iter() {
            if v <= threshold {
                if run == 0 {
                    start = Some(t);
                }
                run += 1;
                if run >= hold {
                    return start;
                }
            } else {
                run = 0;
                start = None;
            }
        }
        None
    }

    /// Downsample to at most `max_points` samples by keeping, within each of
    /// `max_points` equal time buckets, the sample with the largest value
    /// (peak-preserving: clock-error spikes must survive downsampling).
    pub fn downsample_peaks(&self, max_points: usize) -> TimeSeries {
        if self.len() <= max_points || max_points == 0 {
            return self.clone();
        }
        let mut out = TimeSeries::new(self.name.clone());
        let t0 = self.times[0].as_ps();
        let t1 = self.times[self.times.len() - 1].as_ps();
        let span = (t1 - t0).max(1);
        let mut bucket_best: Option<(SimTime, f64)> = None;
        let mut bucket_idx = 0usize;
        for (t, v) in self.iter() {
            let idx = (((t.as_ps() - t0) as u128 * max_points as u128 / (span as u128 + 1))
                as usize)
                .min(max_points - 1);
            if idx != bucket_idx {
                if let Some((bt, bv)) = bucket_best.take() {
                    out.push(bt, bv);
                }
                bucket_idx = idx;
            }
            match bucket_best {
                Some((_, bv)) if bv >= v => {}
                _ => bucket_best = Some((t, v)),
            }
        }
        if let Some((bt, bv)) = bucket_best {
            out.push(bt, bv);
        }
        out
    }

    /// Render as CSV (`time_s,<name>` header then one row per sample).
    pub fn to_csv(&self) -> String {
        let mut s = format!("time_s,{}\n", self.name);
        for (t, v) in self.iter() {
            s.push_str(&format!("{:.4},{:.6}\n", t.as_secs_f64(), v));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for &(sec, v) in points {
            s.push(SimTime::from_secs(sec), v);
        }
        s
    }

    #[test]
    fn push_and_window_max() {
        let s = series(&[(0, 1.0), (1, 5.0), (2, 3.0), (3, 9.0)]);
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.max_in(SimTime::from_secs(1), SimTime::from_secs(2)),
            Some(5.0)
        );
        assert_eq!(
            s.max_in(SimTime::from_secs(10), SimTime::from_secs(20)),
            None
        );
    }

    #[test]
    fn window_mean() {
        let s = series(&[(0, 2.0), (1, 4.0), (2, 6.0)]);
        assert_eq!(s.mean_in(SimTime::ZERO, SimTime::from_secs(2)), Some(4.0));
    }

    #[test]
    fn sustained_below_finds_first_stable_point() {
        // dips below at t=1 but bounces, settles from t=3.
        let s = series(&[
            (0, 50.0),
            (1, 10.0),
            (2, 40.0),
            (3, 9.0),
            (4, 8.0),
            (5, 7.0),
        ]);
        assert_eq!(
            s.first_sustained_below(25.0, 3),
            Some(SimTime::from_secs(3))
        );
        assert_eq!(s.first_sustained_below(25.0, 4), None);
        assert_eq!(s.first_sustained_below(5.0, 1), None);
    }

    #[test]
    fn sustained_below_hold_one_is_first_crossing() {
        let s = series(&[(0, 50.0), (1, 10.0), (2, 40.0)]);
        assert_eq!(
            s.first_sustained_below(25.0, 1),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn downsample_preserves_peak() {
        let mut s = TimeSeries::new("spiky");
        for i in 0..1000u64 {
            let v = if i == 500 { 1000.0 } else { 1.0 };
            s.push(SimTime::from_ms(i), v);
        }
        let d = s.downsample_peaks(20);
        assert!(d.len() <= 21);
        assert!(
            d.values().contains(&1000.0),
            "peak must survive downsampling"
        );
    }

    #[test]
    fn downsample_small_series_is_identity() {
        let s = series(&[(0, 1.0), (1, 2.0)]);
        let d = s.downsample_peaks(10);
        assert_eq!(d.len(), 2);
        assert_eq!(d.values(), s.values());
    }

    #[test]
    fn csv_render() {
        let s = series(&[(0, 1.5)]);
        let csv = s.to_csv();
        assert!(csv.starts_with("time_s,test\n"));
        assert!(csv.contains("0.0000,1.500000"));
    }
}
