//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate provides the substrate every simulation in this workspace runs
//! on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond simulated time, so
//!   event ordering never depends on floating-point rounding;
//! * [`EventQueue`] — a stable priority queue (ties broken by insertion
//!   order) generic over the event payload;
//! * [`Simulator`] — a run loop with handler dispatch, stop conditions and a
//!   wall-clock-free notion of "now";
//! * [`RngStreams`] — counter-based derivation of independent, reproducible
//!   random streams from a single `u64` master seed;
//! * [`stats`] and [`series`] — online statistics and time-series recording
//!   used by the experiment harness.
//!
//! The engine is intentionally protocol-agnostic: the IEEE 802.11 beacon
//! machinery lives in the `mac80211` crate and the synchronization protocols
//! in `protocols`; both only interact with this crate through events and
//! time.
//!
//! ## Determinism contract
//!
//! A simulation is a pure function of its master seed. Two rules make this
//! hold:
//!
//! 1. all randomness must come from [`RngStreams`] (derived per logical
//!    actor, never shared across actors), and
//! 2. events scheduled at the same [`SimTime`] are delivered in the order
//!    they were scheduled (FIFO), which [`EventQueue`] guarantees via a
//!    monotone sequence number.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod rng;
pub mod series;
pub mod sim;
pub mod stats;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::{CountingRng, RngStreams};
pub use series::TimeSeries;
pub use sim::{SimControl, Simulator};
pub use stats::{Histogram, OnlineStats, QuantileEstimate};
pub use time::{SimDuration, SimTime};
