//! Stable event queue.
//!
//! A binary heap keyed on `(SimTime, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Events scheduled for the same
//! instant are therefore delivered in FIFO order — a prerequisite for
//! deterministic simulation (see the crate docs).
//!
//! Cancellation uses **generation-stamped slot keys** instead of tombstone
//! hash sets: every scheduled event owns a slot in a reusable slab, and the
//! slot's generation counter is bumped whenever the slot is released (pop or
//! cancel). A heaped entry is live exactly when its recorded generation
//! still matches its slot's, so `cancel` is O(1), `pop` validates entries
//! with one array load, and no hashing happens anywhere on the hot path.
//! This matters to the simulator: the 802.11 beacon contention window
//! cancels pending beacons whenever an earlier beacon is heard, so the
//! cancel/pop churn runs once per station per beacon period.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event, usable to cancel it.
///
/// Internally a slot index plus the slot's generation at allocation time;
/// a key is valid until its event pops or is cancelled, after which the
/// slot's generation moves on and the key can never match again (no ABA
/// on slot reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    generation: u32,
}

/// An event popped from the queue: its due time, its key and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Simulated instant the event fires at.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub key: EventKey,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first, and for
        // equal times the smallest sequence number (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Slot slab entry: current generation plus an intrusive free-list link.
struct Slot {
    generation: u32,
    next_free: u32,
}

const NO_FREE_SLOT: u32 = u32::MAX;

/// Priority queue of timestamped events with stable FIFO tie-breaking and
/// O(1), hash-free cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NO_FREE_SLOT,
            live: 0,
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free_head: NO_FREE_SLOT,
            live: 0,
            next_seq: 0,
        }
    }

    /// Release `slot` back to the slab, invalidating all outstanding keys
    /// and heap entries stamped with its current generation.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = slot;
        self.live -= 1;
    }

    /// Schedule `payload` to fire at `time`. Returns a key that can be used
    /// with [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventKey {
        let slot = if self.free_head != NO_FREE_SLOT {
            let slot = self.free_head;
            self.free_head = self.slots[slot as usize].next_free;
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                next_free: NO_FREE_SLOT,
            });
            slot
        };
        let generation = self.slots[slot as usize].generation;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            slot,
            generation,
            payload,
        });
        EventKey { slot, generation }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending — cancelling a popped, already-cancelled, or unknown
    /// key returns `false` and changes nothing.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get(key.slot as usize) {
            Some(s) if s.generation == key.generation => {
                // Bumping the generation orphans the heaped entry; pop()
                // discards it when it surfaces.
                self.release(key.slot);
                true
            }
            _ => false,
        }
    }

    /// Whether a heaped entry still owns its slot (not cancelled).
    #[inline]
    fn entry_live(slots: &[Slot], slot: u32, generation: u32) -> bool {
        slots[slot as usize].generation == generation
    }

    /// Remove and return the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if !Self::entry_live(&self.slots, entry.slot, entry.generation) {
                continue;
            }
            self.release(entry.slot);
            return Some(ScheduledEvent {
                time: entry.time,
                key: EventKey {
                    slot: entry.slot,
                    generation: entry.generation,
                },
                payload: entry.payload,
            });
        }
        None
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if Self::entry_live(&self.slots, entry.slot, entry.generation) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(30), "c");
        q.schedule(SimTime::from_us(10), "a");
        q.schedule(SimTime::from_us(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_us(1), "x");
        q.schedule(SimTime::from_us(2), "y");
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "y");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_noop_for_len() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_us(1), ());
        q.pop().unwrap();
        assert!(q.is_empty());
        // Popped events can no longer be cancelled.
        assert!(!q.cancel(k));
        q.schedule(SimTime::from_us(2), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        let stale = EventKey {
            slot: 42,
            generation: 0,
        };
        assert!(!q.cancel(stale));
    }

    #[test]
    fn stale_key_never_cancels_slot_reuse() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_us(1), "first");
        q.pop().unwrap();
        // The slot is reused with a fresh generation.
        let k2 = q.schedule(SimTime::from_us(2), "second");
        assert_ne!(k1, k2);
        assert!(!q.cancel(k1), "stale key must not cancel the new tenant");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(k2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_us(1), "dead");
        q.schedule(SimTime::from_us(7), "live");
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(7)));
        assert_eq!(q.pop().unwrap().payload, "live");
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule(SimTime::from_us(5), 2);
        q.schedule(SimTime::from_us(6), 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        q.schedule(SimTime::from_us(1), 4);
        assert_eq!(q.pop().unwrap().payload, 4);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn heavy_cancel_churn_reuses_slots() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let keys: Vec<_> = (0..8)
                .map(|i| q.schedule(SimTime::from_us(round * 10 + i), (round, i)))
                .collect();
            for k in keys.iter().take(7) {
                assert!(q.cancel(*k));
            }
            let e = q.pop().unwrap();
            assert_eq!(e.payload, (round, 7));
            assert!(q.is_empty());
        }
        // The slab never needs more slots than the peak live count.
        assert!(q.slots.len() <= 8, "slab grew to {}", q.slots.len());
    }
}
