//! Stable event queue.
//!
//! A binary heap keyed on `(SimTime, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Events scheduled for the same
//! instant are therefore delivered in FIFO order — a prerequisite for
//! deterministic simulation (see the crate docs).
//!
//! Cancellation is supported through [`EventKey`] tombstones: cancelling is
//! O(1) and the queue lazily discards tombstoned entries on pop. This is the
//! classic approach for simulators with frequent timer cancellation (the
//! 802.11 beacon contention window cancels pending beacons whenever an
//! earlier beacon is heard).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Opaque handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

/// An event popped from the queue: its due time, its key and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Simulated instant the event fires at.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub key: EventKey,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first, and for
        // equal times the smallest sequence number (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of timestamped events with stable FIFO tie-breaking and
/// O(1) cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    /// Tombstones for cancelled-but-still-heaped entries.
    cancelled: HashSet<u64>,
    /// Keys scheduled and neither popped nor cancelled.
    live_keys: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live_keys: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            cancelled: HashSet::new(),
            live_keys: HashSet::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns a key that can be used
    /// with [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
        self.live_keys.insert(seq);
        EventKey(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending — cancelling a popped, already-cancelled, or unknown
    /// key returns `false` and changes nothing.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.live_keys.remove(&key.0) {
            // Tombstone: pop() lazily discards the heaped entry.
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live_keys.remove(&entry.seq);
            return Some(ScheduledEvent {
                time: entry.time,
                key: EventKey(entry.seq),
                payload: entry.payload,
            });
        }
        None
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop tombstoned heads so the peeked time is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live_keys.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live_keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(30), "c");
        q.schedule(SimTime::from_us(10), "a");
        q.schedule(SimTime::from_us(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_us(1), "x");
        q.schedule(SimTime::from_us(2), "y");
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double-cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "y");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_pop_is_noop_for_len() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_us(1), ());
        q.pop().unwrap();
        assert!(q.is_empty());
        // Popped events can no longer be cancelled.
        assert!(!q.cancel(k));
        q.schedule(SimTime::from_us(2), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_us(1), "dead");
        q.schedule(SimTime::from_us(7), "live");
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(7)));
        assert_eq!(q.pop().unwrap().payload, "live");
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), 1);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule(SimTime::from_us(5), 2);
        q.schedule(SimTime::from_us(6), 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        q.schedule(SimTime::from_us(1), 4);
        assert_eq!(q.pop().unwrap().payload, 4);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert!(q.is_empty());
    }
}
