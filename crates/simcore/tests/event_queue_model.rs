//! Model-based property tests for the event queue: random interleavings of
//! schedule / cancel / pop are checked against a naive reference model
//! (a sorted vector with stable FIFO ordering).

use proptest::prelude::*;
use simcore::{EventQueue, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Schedule { time_us: u64, payload: u32 },
    CancelNth(usize),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000, any::<u32>())
            .prop_map(|(time_us, payload)| Op::Schedule { time_us, payload }),
        (0usize..64).prop_map(Op::CancelNth),
        Just(Op::Pop),
    ]
}

/// Reference model: entries (time, seq, payload, cancelled).
#[derive(Default)]
struct Model {
    entries: Vec<(u64, u64, u32, bool)>,
    next_seq: u64,
}

impl Model {
    fn schedule(&mut self, time_us: u64, payload: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((time_us, seq, payload, false));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        for e in &mut self.entries {
            if e.1 == seq && !e.3 {
                e.3 = true;
                return true;
            }
        }
        false
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.3)
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let e = self.entries.remove(idx);
        Some((e.0, e.2))
    }

    fn live(&self) -> usize {
        self.entries.iter().filter(|e| !e.3).count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn queue_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut q = EventQueue::new();
        let mut model = Model::default();
        // Parallel bookkeeping: model seq -> queue key.
        let mut keys = Vec::new();

        for op in ops {
            match op {
                Op::Schedule { time_us, payload } => {
                    let key = q.schedule(SimTime::from_us(time_us), payload);
                    let seq = model.schedule(time_us, payload);
                    keys.push((seq, key));
                }
                Op::CancelNth(n) => {
                    if !keys.is_empty() {
                        let (seq, key) = keys[n % keys.len()];
                        prop_assert_eq!(model.cancel(seq), q.cancel(key));
                    }
                }
                Op::Pop => {
                    let got = q.pop().map(|e| (e.time.as_us_floor(), e.payload));
                    prop_assert_eq!(got, model.pop());
                }
            }
            prop_assert_eq!(q.len(), model.live());
        }

        // Drain both; sequences must match exactly.
        loop {
            let got = q.pop().map(|e| (e.time.as_us_floor(), e.payload));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}
