//! Storage-efficient backward hash-chain traversal.
//!
//! The paper (Sec. 3.4) cites Jakobsson's fractal scheme \[6\]: a chain of
//! `n` elements can be traversed — disclosing `h^{n-1}, h^{n-2}, …, seed` in
//! order — with only `O(log₂ n)` stored pebbles and `O(log₂ n)` amortized
//! hash evaluations per element, instead of either storing all `n` elements
//! or recomputing `O(n)` hashes per disclosure.
//!
//! [`FractalTraverser`] implements the recursive-halving variant of that
//! idea: pebbles sit at binary midpoints of the not-yet-consumed prefix, and
//! whenever a gap is walked the walk drops fresh pebbles halving the gap.
//! This achieves the same asymptotic bounds (measured, not just asserted —
//! see the `traversal_cost_is_logarithmic` test) with considerably simpler
//! state than the original paper's scheduling.

use crate::chain::{chain_step, ChainElement};

/// A pebble: a cached chain value at a known position.
#[derive(Debug, Clone, Copy)]
struct Pebble {
    /// Number of one-way applications from the seed.
    pos: usize,
    value: ChainElement,
}

/// Backward traverser over a hash chain of length `n`.
///
/// Yields `h^{n-1}(seed)`, `h^{n-2}(seed)`, …, `h^0(seed) = seed`, which is
/// exactly the order µTESLA keys are consumed (interval `j` uses
/// `h^{n-j}`).
pub struct FractalTraverser {
    seed: ChainElement,
    /// Pebbles sorted by ascending position; all positions are strictly
    /// below `next_pos` (consumed positions need no pebbles).
    pebbles: Vec<Pebble>,
    /// Position of the next element `next()` will return, or `None` when
    /// exhausted.
    next_pos: Option<usize>,
    /// Total one-way-function invocations since construction (for
    /// cost accounting and the complexity tests).
    hash_count: u64,
}

impl FractalTraverser {
    /// Prepare traversal of the chain `seed, h(seed), …, h^n(seed)`.
    ///
    /// Construction walks the chain once (`n` hashes — the same work needed
    /// to compute the anchor for publication) and drops the initial pebble
    /// set.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(seed: ChainElement, n: usize) -> Self {
        assert!(n > 0, "chain length must be positive");
        // Pebble count stays within log2(n) + 2 for the lifetime of the
        // traverser (see `pebble_count_stays_logarithmic`); reserving that
        // up front keeps `insert_pebble` reallocation-free in steady state.
        let cap = usize::BITS as usize - n.leading_zeros() as usize + 2;
        let mut t = FractalTraverser {
            seed,
            pebbles: Vec::with_capacity(cap),
            next_pos: Some(n - 1),
            hash_count: 0,
        };
        // Initial pebble layout: walk 0..n-1 dropping pebbles at binary
        // midpoints of [0, n-1]: positions (n-1)/2, 3(n-1)/4, ... This is
        // the same subdivision `walk_to` maintains later.
        t.seed_pebbles(n - 1);
        t
    }

    /// The anchor `h^n(seed)`; computing it is one extra step past the first
    /// disclosed element.
    pub fn anchor_of(seed: &ChainElement, n: usize) -> ChainElement {
        crate::chain::chain_step_n(seed, n)
    }

    /// Number of one-way-function invocations so far (excluding
    /// `anchor_of`).
    pub fn hash_count(&self) -> u64 {
        self.hash_count
    }

    /// Current number of stored pebbles.
    pub fn pebble_count(&self) -> usize {
        self.pebbles.len()
    }

    /// Elements still to be disclosed.
    pub fn remaining(&self) -> usize {
        self.next_pos.map_or(0, |p| p + 1)
    }

    /// Disclose the next element (positions `n-1` down to `0`).
    pub fn next_element(&mut self) -> Option<ChainElement> {
        let pos = self.next_pos?;
        let value = self.value_at(pos);
        // Drop pebbles at or beyond the consumed position.
        self.pebbles.retain(|p| p.pos < pos);
        self.next_pos = pos.checked_sub(1);
        Some(value)
    }

    /// Initial subdivision: drop pebbles at binary midpoints of `[0, top]`.
    fn seed_pebbles(&mut self, top: usize) {
        let mut lo = 0usize;
        let mut value = self.seed;
        let mut pos = 0usize;
        // Walk to each midpoint in turn, dropping a pebble, until the gap
        // closes. Gap sequence: mid of [0,top], mid of [mid,top], ...
        loop {
            let gap = top - lo;
            if gap <= 1 {
                break;
            }
            let mid = lo + gap / 2;
            while pos < mid {
                value = chain_step(&value);
                self.hash_count += 1;
                pos += 1;
            }
            self.pebbles.push(Pebble { pos, value });
            lo = mid;
        }
    }

    /// Compute the chain value at `pos`, using the nearest pebble at or
    /// below it and re-subdividing the walked gap with fresh pebbles.
    fn value_at(&mut self, pos: usize) -> ChainElement {
        // Nearest pebble at or below pos (pebbles are sorted ascending).
        let (mut cur_pos, mut value) = match self.pebbles.iter().rev().find(|p| p.pos <= pos) {
            Some(p) => (p.pos, p.value),
            None => (0, self.seed),
        };
        if cur_pos == pos {
            return value;
        }
        // Walk forward, dropping pebbles at binary midpoints of the gap
        // [cur_pos, pos] so future backward steps stay cheap. The
        // midpoints ascend, so they are produced on the fly as the walk
        // reaches them — no scratch list, keeping this path heap-free
        // (the per-disclosure cost a signer pays every beacon).
        let next_mid = |lo: usize| (pos - lo > 1).then(|| lo + (pos - lo) / 2);
        let mut pending_mid = next_mid(cur_pos);
        while cur_pos < pos {
            value = chain_step(&value);
            self.hash_count += 1;
            cur_pos += 1;
            if pending_mid == Some(cur_pos) {
                self.insert_pebble(Pebble {
                    pos: cur_pos,
                    value,
                });
                pending_mid = next_mid(cur_pos);
            }
        }
        value
    }

    fn insert_pebble(&mut self, p: Pebble) {
        match self.pebbles.binary_search_by_key(&p.pos, |q| q.pos) {
            Ok(i) => self.pebbles[i] = p,
            Err(i) => self.pebbles.insert(i, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{chain_step_n, HashChain};

    fn seed(b: u8) -> ChainElement {
        [b; 16]
    }

    #[test]
    fn yields_chain_backwards() {
        let n = 37;
        let chain = HashChain::generate(seed(4), n);
        let mut t = FractalTraverser::new(seed(4), n);
        for pos in (0..n).rev() {
            assert_eq!(t.next_element().unwrap(), chain.element(pos), "pos {pos}");
        }
        assert!(t.next_element().is_none());
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn works_for_tiny_chains() {
        for n in 1..=8 {
            let chain = HashChain::generate(seed(1), n);
            let mut t = FractalTraverser::new(seed(1), n);
            for pos in (0..n).rev() {
                assert_eq!(
                    t.next_element().unwrap(),
                    chain.element(pos),
                    "n={n} pos={pos}"
                );
            }
            assert!(t.next_element().is_none());
        }
    }

    #[test]
    fn anchor_matches_store_all() {
        let n = 100;
        let chain = HashChain::generate(seed(2), n);
        assert_eq!(FractalTraverser::anchor_of(&seed(2), n), chain.anchor());
    }

    #[test]
    fn pebble_count_stays_logarithmic() {
        let n = 4096;
        let mut t = FractalTraverser::new(seed(3), n);
        let budget = (n as f64).log2() as usize + 2;
        let mut max_pebbles = t.pebble_count();
        while t.next_element().is_some() {
            max_pebbles = max_pebbles.max(t.pebble_count());
        }
        assert!(
            max_pebbles <= budget,
            "pebbles {max_pebbles} exceeded log budget {budget}"
        );
    }

    #[test]
    fn traversal_cost_is_logarithmic() {
        // Amortized hash cost per disclosed element must be O(log n).
        let n = 4096;
        let mut t = FractalTraverser::new(seed(6), n);
        let setup = t.hash_count();
        assert!(setup <= n as u64, "setup walk is at most one chain pass");
        while t.next_element().is_some() {}
        let traversal = t.hash_count() - setup;
        let per_element = traversal as f64 / n as f64;
        let bound = (n as f64).log2() + 1.0;
        assert!(
            per_element <= bound,
            "amortized {per_element:.2} hashes/element exceeds log bound {bound:.2}"
        );
    }

    #[test]
    fn store_all_vs_fractal_equivalence_long() {
        let n = 1000;
        let mut t = FractalTraverser::new(seed(8), n);
        for pos in (0..n).rev() {
            assert_eq!(t.next_element().unwrap(), chain_step_n(&seed(8), pos));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = FractalTraverser::new(seed(0), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::chain::HashChain;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn matches_store_all_for_any_seed_and_length(
            seed_bytes in proptest::array::uniform16(any::<u8>()),
            n in 1usize..200) {
            let chain = HashChain::generate(seed_bytes, n);
            let mut t = FractalTraverser::new(seed_bytes, n);
            for pos in (0..n).rev() {
                prop_assert_eq!(t.next_element().unwrap(), chain.element(pos));
            }
            prop_assert!(t.next_element().is_none());
        }

        /// Awkward chain lengths straddling binary boundaries (2^k ± j):
        /// the recursive-halving subdivision's edge cases all live at
        /// non-powers-of-two, where gaps split unevenly. Full traversal
        /// must still equal the store-all chain element-for-element, and
        /// the pebble budget must stay logarithmic throughout — the
        /// storage bound is part of the scheme's contract, not a
        /// power-of-two accident.
        #[test]
        fn non_power_of_two_lengths_match_store_all(
            seed_bytes in proptest::array::uniform16(any::<u8>()),
            k in 4u32..12,
            off in 1usize..16,
            above in any::<bool>()) {
            let base = 1usize << k;
            let n = if above { base + off } else { base - off };
            let chain = HashChain::generate(seed_bytes, n);
            let mut t = FractalTraverser::new(seed_bytes, n);
            let budget = (n as f64).log2().ceil() as usize + 2;
            for pos in (0..n).rev() {
                prop_assert_eq!(t.next_element().unwrap(), chain.element(pos));
                prop_assert!(
                    t.pebble_count() <= budget,
                    "pebbles {} over budget {} at n={} pos={}",
                    t.pebble_count(), budget, n, pos);
            }
            prop_assert!(t.next_element().is_none());
        }
    }
}
