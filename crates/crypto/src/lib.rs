//! # sstsp-crypto — the cryptographic substrate of SSTSP
//!
//! SSTSP (Chen & Leneutre, ICPP 2006) secures synchronization beacons with
//! **µTESLA** (Perrig et al., SPINS 2001): the reference node commits to a
//! one-way hash chain, MACs each beacon with the chain element assigned to
//! the current beacon interval, and discloses that element one interval
//! later so receivers can authenticate the *previous* beacon.
//!
//! Everything here is implemented from scratch (no external crypto crates)
//! because the hash-chain mechanics are part of the paper's contribution
//! surface:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, validated against NIST vectors;
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), validated against RFC 4231;
//! * [`chain`] — one-way hash chains over 128-bit elements (the paper
//!   assumes 128-bit hash values, giving its 92-byte secured beacon);
//! * [`fractal`] — storage-efficient backward chain traversal in the spirit
//!   of Jakobsson's fractal scheme (paper ref. \[6\]): O(log n) pebbles,
//!   O(log n) amortized hashes per disclosed element;
//! * [`mu_tesla`] — the µTESLA key schedule, signer and verifier used by the
//!   SSTSP reference node and receivers.
//!
//! ## Security disclaimer
//!
//! This is a research reproduction. The primitives are correct against their
//! published test vectors but have received no side-channel hardening and no
//! constant-time review; do not reuse them outside the simulator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chain;
pub mod fractal;
pub mod hmac;
pub mod mu_tesla;
pub mod sha256;

pub use chain::{verify_distance, ChainElement, HashChain, CHAIN_ELEMENT_LEN};
pub use fractal::FractalTraverser;
pub use hmac::{hmac_sha256, Mac128};
pub use mu_tesla::{
    sign_with_chain, BeaconAuth, IntervalSchedule, MuTeslaSigner, MuTeslaVerifier, PayloadBuf,
    VerifyError,
};
pub use sha256::{sha256, Sha256};
