//! HMAC-SHA-256 (RFC 2104) with the 128-bit truncation used by SSTSP
//! beacons.
//!
//! The paper budgets "128-bit hash values" in its beacon-size accounting
//! (92-byte secured beacon = 56-byte TSF beacon + 16-byte MAC + 16-byte
//! disclosed key + 4-byte interval index), so [`Mac128`] is the type beacons
//! actually carry.

use crate::sha256::{compress_block, state_bytes, Sha256, DIGEST_LEN, H0};

const BLOCK_LEN: usize = 64;

/// A 128-bit truncated MAC as carried in SSTSP beacons.
pub type Mac128 = [u8; 16];

/// Full-width HMAC-SHA-256.
///
/// Beacon-sized messages (≤ 55 bytes, fitting one padded block after the
/// ipad block) run as exactly four compressions on stack blocks — the
/// per-beacon steady-state cost every SSTSP receiver pays; longer messages
/// fall back to the streaming hasher.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256::sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let inner_digest = if message.len() <= 55 {
        let mut state = H0;
        compress_block(&mut state, &ipad);
        let mut block = [0u8; BLOCK_LEN];
        block[..message.len()].copy_from_slice(message);
        block[message.len()] = 0x80;
        let bit_len = ((BLOCK_LEN + message.len()) as u64) * 8;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        compress_block(&mut state, &block);
        state_bytes(&state)
    } else {
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(message);
        inner.finalize()
    };

    // Outer hash: always opad block + one block of digest and padding.
    let mut state = H0;
    compress_block(&mut state, &opad);
    let mut block = [0u8; BLOCK_LEN];
    block[..DIGEST_LEN].copy_from_slice(&inner_digest);
    block[DIGEST_LEN] = 0x80;
    let bit_len = ((BLOCK_LEN + DIGEST_LEN) as u64) * 8;
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    compress_block(&mut state, &block);
    state_bytes(&state)
}

/// HMAC-SHA-256 truncated to 128 bits, per the beacon format.
pub fn hmac_sha256_128(key: &[u8], message: &[u8]) -> Mac128 {
    let full = hmac_sha256(key, message);
    let mut out = [0u8; 16];
    out.copy_from_slice(&full[..16]);
    out
}

/// Constant-time equality for 128-bit MACs.
///
/// In a simulation timing attacks are moot, but the comparison is the kind
/// of code people copy out of reproductions, so do it right.
pub fn mac_eq(a: &Mac128, b: &Mac128) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let mac = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case4() {
        let key: Vec<u8> = (1..=25).collect();
        let msg = [0xcdu8; 50];
        let mac = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&mac),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_long_msg() {
        let key = [0xaau8; 131];
        let msg: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let mac = hmac_sha256(&key, msg);
        assert_eq!(
            hex(&mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn fast_and_streaming_paths_agree_at_boundary() {
        // Straddle the 55-byte single-block threshold with a streaming
        // reference computed inline.
        let key = [0x42u8; 16];
        for len in 40..=70usize {
            let msg: Vec<u8> = (0..len as u8).collect();
            let mut key_block = [0u8; BLOCK_LEN];
            key_block[..key.len()].copy_from_slice(&key);
            let mut ipad = [0x36u8; BLOCK_LEN];
            let mut opad = [0x5cu8; BLOCK_LEN];
            for i in 0..BLOCK_LEN {
                ipad[i] ^= key_block[i];
                opad[i] ^= key_block[i];
            }
            let mut inner = Sha256::new();
            inner.update(&ipad);
            inner.update(&msg);
            let inner_digest = inner.finalize();
            let mut outer = Sha256::new();
            outer.update(&opad);
            outer.update(&inner_digest);
            assert_eq!(hmac_sha256(&key, &msg), outer.finalize(), "len {len}");
        }
    }

    #[test]
    fn truncation_is_prefix() {
        let key = b"key";
        let msg = b"message";
        let full = hmac_sha256(key, msg);
        let trunc = hmac_sha256_128(key, msg);
        assert_eq!(&full[..16], &trunc[..]);
    }

    #[test]
    fn mac_eq_behaviour() {
        let a = [1u8; 16];
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b[15] ^= 1;
        assert!(!mac_eq(&a, &b));
    }

    #[test]
    fn different_keys_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn deterministic(key in proptest::collection::vec(any::<u8>(), 0..128),
                         msg in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(hmac_sha256(&key, &msg), hmac_sha256(&key, &msg));
        }

        #[test]
        fn message_sensitivity(key in proptest::collection::vec(any::<u8>(), 1..64),
                               msg in proptest::collection::vec(any::<u8>(), 1..128),
                               flip_byte in 0usize..128, flip_bit in 0u8..8) {
            let mut tampered = msg.clone();
            let i = flip_byte % tampered.len();
            tampered[i] ^= 1 << flip_bit;
            prop_assert_ne!(hmac_sha256(&key, &msg), hmac_sha256(&key, &tampered));
        }
    }
}
