//! SHA-256 per FIPS 180-4, implemented from scratch.
//!
//! Streaming ([`Sha256`]) and one-shot ([`sha256`]) APIs. Validated against
//! the NIST example vectors ("abc", the empty string, the two-block message,
//! and one million `a`s) in the test module.
//!
//! The compression function dispatches at runtime to the SHA-NI
//! instructions on x86-64 CPUs that have them (a port of Intel's reference
//! `sha256_ni_transform`), falling back to the portable scalar rounds
//! everywhere else. Both paths produce identical digests; the dispatch only
//! changes throughput, which the hash-chain-heavy simulation hot loop is
//! dominated by.

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 32;

/// SHA-256 round constants (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One compression round block, scalar FIPS 180-4 rounds.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-NI accelerated compression (x86-64 only; caller checks support).
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use core::arch::x86_64::*;

    /// Whether the `sha`, `ssse3` and `sse4.1` features are all present.
    /// Cached in a one-byte state so the hot path pays one relaxed load.
    #[inline]
    pub fn available() -> bool {
        use std::sync::atomic::{AtomicU8, Ordering};
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let ok = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                STATE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
        }
    }

    /// Next four message-schedule words from the previous sixteen.
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn sched(v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i) -> __m128i {
        let t = _mm_sha256msg1_epu32(v0, v1);
        let t = _mm_add_epi32(t, _mm_alignr_epi8(v3, v2, 4));
        _mm_sha256msg2_epu32(t, v3)
    }

    /// The round constants for four-round group `i`, lane 0 first.
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn kv(i: usize) -> __m128i {
        _mm_loadu_si128(K.as_ptr().add(4 * i) as *const __m128i)
    }

    /// One compression, port of Intel's reference `sha256_ni_transform`.
    ///
    /// # Safety
    /// The CPU must support the `sha`, `ssse3` and `sse4.1` features
    /// (guarded by [`available`]).
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Byte shuffle turning little-endian 32-bit lanes big-endian.
        let mask = _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0b_u64 as i64,
            0x0405_0607_0001_0203_u64 as i64,
        );

        let tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i); // DCBA
        let st1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i); // HGFE
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, st1, 8); // ABEF
        let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

        let abef_save = state0;
        let cdgh_save = state1;

        let dp = block.as_ptr() as *const __m128i;
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(dp), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(dp.add(1)), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(dp.add(2)), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(dp.add(3)), mask);

        macro_rules! rounds4 {
            ($w:expr, $i:expr) => {{
                let m = _mm_add_epi32($w, kv($i));
                state1 = _mm_sha256rnds2_epu32(state1, state0, m);
                let m = _mm_shuffle_epi32(m, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, m);
            }};
        }

        rounds4!(msg0, 0);
        rounds4!(msg1, 1);
        rounds4!(msg2, 2);
        rounds4!(msg3, 3);
        msg0 = sched(msg0, msg1, msg2, msg3);
        rounds4!(msg0, 4);
        msg1 = sched(msg1, msg2, msg3, msg0);
        rounds4!(msg1, 5);
        msg2 = sched(msg2, msg3, msg0, msg1);
        rounds4!(msg2, 6);
        msg3 = sched(msg3, msg0, msg1, msg2);
        rounds4!(msg3, 7);
        msg0 = sched(msg0, msg1, msg2, msg3);
        rounds4!(msg0, 8);
        msg1 = sched(msg1, msg2, msg3, msg0);
        rounds4!(msg1, 9);
        msg2 = sched(msg2, msg3, msg0, msg1);
        rounds4!(msg2, 10);
        msg3 = sched(msg3, msg0, msg1, msg2);
        rounds4!(msg3, 11);
        msg0 = sched(msg0, msg1, msg2, msg3);
        rounds4!(msg0, 12);
        msg1 = sched(msg1, msg2, msg3, msg0);
        rounds4!(msg1, 13);
        msg2 = sched(msg2, msg3, msg0, msg1);
        rounds4!(msg2, 14);
        msg3 = sched(msg3, msg0, msg1, msg2);
        rounds4!(msg3, 15);

        let state0 = _mm_add_epi32(state0, abef_save);
        let state1 = _mm_add_epi32(state1, cdgh_save);

        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let st1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out0 = _mm_blend_epi16(tmp, st1, 0xF0); // DCBA
        let out1 = _mm_alignr_epi8(st1, tmp, 8); // HGFE

        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, out0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, out1);
    }
}

/// One SHA-256 compression of `block` into `state`, hardware-accelerated
/// where the CPU allows.
#[inline]
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        // SAFETY: `available()` verified sha + ssse3 + sse4.1 support.
        unsafe { shani::compress(state, block) };
        return;
    }
    compress_scalar(state, block);
}

/// Serialize a compression state as the big-endian digest bytes.
#[inline]
pub(crate) fn state_bytes(state: &[u32; 8]) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self
            .total_len
            .checked_add(data.len() as u64)
            .expect("SHA-256 message too long");
        let mut input = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Input exhausted without filling the buffer.
                return;
            }
        }
        let mut chunks = input.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self
            .total_len
            .checked_mul(8)
            .expect("SHA-256 message too long");
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_len(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buf_len, 0);
        state_bytes(&self.state)
    }

    /// `update` without advancing `total_len` (padding only).
    fn update_no_len(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    #[inline]
    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// One-shot SHA-256.
///
/// Inputs short enough for a single padded block (≤ 55 bytes — chain
/// elements, beacon MAC messages) skip the streaming machinery entirely:
/// one stack block, one compression.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    if data.len() <= 55 {
        let mut block = [0u8; 64];
        block[..data.len()].copy_from_slice(data);
        block[data.len()] = 0x80;
        block[56..].copy_from_slice(&((data.len() as u64) * 8).to_be_bytes());
        let mut state = H0;
        compress_block(&mut state, &block);
        return state_bytes(&state);
    }
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0..200u8).collect();
        let whole = sha256(&msg);
        for split in 0..=msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages straddling the 55/56/64 byte padding boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let msg = vec![0x5au8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            for b in &msg {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\x00"));
    }

    #[test]
    fn scalar_and_dispatched_compressions_agree() {
        // Differential check of the hardware path against the portable
        // rounds on pseudo-random blocks and states (trivially true on
        // machines without SHA-NI, where both paths are the scalar one).
        let mut block = [0u8; 64];
        let mut x: u32 = 0x1234_5678;
        for round in 0..64 {
            for b in block.iter_mut() {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                *b = (x >> 24) as u8;
            }
            let mut dispatched = H0;
            let mut scalar = H0;
            compress_block(&mut dispatched, &block);
            compress_scalar(&mut scalar, &block);
            assert_eq!(dispatched, scalar, "round {round}");
            // Chain the states so later rounds start from non-H0 states.
            block[..32].copy_from_slice(&state_bytes(&dispatched));
        }
    }

    #[test]
    fn short_input_fast_path_matches_streaming() {
        for len in 0..=70usize {
            let msg: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let mut h = Sha256::new();
            h.update(&msg);
            assert_eq!(sha256(&msg), h.finalize(), "len {len}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn streaming_matches_oneshot(msg in proptest::collection::vec(any::<u8>(), 0..512),
                                     split in 0usize..512) {
            let split = split.min(msg.len());
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            prop_assert_eq!(h.finalize(), sha256(&msg));
        }

        #[test]
        fn digest_is_deterministic(msg in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(sha256(&msg), sha256(&msg));
        }
    }
}
