//! One-way hash chains over 128-bit elements.
//!
//! Node *i* picks a random seed `s_i` and computes
//! `h(s_i), h²(s_i), …, hⁿ(s_i)`; the **anchor** `hⁿ(s_i)` is authenticated
//! and published. During interval `j` the element `h^{n-j}(s_i)` keys the
//! beacon MAC, and the beacon for interval `j` discloses `h^{n-j+1}(s_i)` so
//! receivers can authenticate the previous interval's beacon.
//!
//! The one-way function is SHA-256 truncated to 128 bits (matching the
//! paper's 128-bit hash values and the 92-byte secured beacon size).

use crate::sha256::sha256;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Chain element length in bytes (128 bits).
pub const CHAIN_ELEMENT_LEN: usize = 16;

/// A single 128-bit hash-chain element.
pub type ChainElement = [u8; CHAIN_ELEMENT_LEN];

/// Apply the chain's one-way function once.
#[inline]
pub fn chain_step(x: &ChainElement) -> ChainElement {
    let digest = sha256(x);
    let mut out = [0u8; CHAIN_ELEMENT_LEN];
    out.copy_from_slice(&digest[..CHAIN_ELEMENT_LEN]);
    out
}

thread_local! {
    /// Single-entry memo for [`chain_step_n`]. In the engine's receiver loop
    /// every station verifies the *same* disclosed key against the *same*
    /// cached element, so consecutive calls repeat one `(input, k)` pair
    /// n−1 times per beacon. The function is pure, so serving the cached
    /// output is bit-identical to recomputing it; thread-local storage keeps
    /// parallel sweeps race-free.
    static STEP_MEMO: Cell<Option<(ChainElement, usize, ChainElement)>> =
        const { Cell::new(None) };
}

/// Apply the one-way function `k` times.
pub fn chain_step_n(x: &ChainElement, k: usize) -> ChainElement {
    if k == 0 {
        return *x;
    }
    if let Some((mx, mk, out)) = STEP_MEMO.get() {
        if mk == k && mx == *x {
            return out;
        }
    }
    let mut v = *x;
    for _ in 0..k {
        v = chain_step(&v);
    }
    STEP_MEMO.set(Some((*x, k, v)));
    v
}

/// A fully materialized hash chain (store-all strategy).
///
/// `element(j)` is `h^j(seed)`; `element(0)` is the seed itself and
/// `element(n)` the anchor. The store-all strategy trades `n · 16` bytes of
/// memory for O(1) element access; the `fractal` module provides the
/// O(log n) alternative the paper cites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashChain {
    elements: Vec<ChainElement>,
}

impl HashChain {
    /// Generate a chain of length `n` (so `n + 1` stored values including the
    /// seed at index 0 and the anchor at index `n`).
    ///
    /// # Panics
    /// Panics if `n == 0`; a chain must have at least one link.
    pub fn generate(seed: ChainElement, n: usize) -> Self {
        assert!(n > 0, "hash chain length must be positive");
        let mut elements = Vec::with_capacity(n + 1);
        elements.push(seed);
        for i in 0..n {
            let next = chain_step(&elements[i]);
            elements.push(next);
        }
        HashChain { elements }
    }

    /// Chain length `n` (number of one-way applications from seed to anchor).
    pub fn len(&self) -> usize {
        self.elements.len() - 1
    }

    /// True only for the degenerate case, which `generate` forbids.
    pub fn is_empty(&self) -> bool {
        self.elements.len() <= 1
    }

    /// `h^j(seed)`.
    ///
    /// # Panics
    /// Panics if `j > n`.
    pub fn element(&self, j: usize) -> ChainElement {
        self.elements[j]
    }

    /// The published anchor `hⁿ(seed)`.
    pub fn anchor(&self) -> ChainElement {
        self.elements[self.elements.len() - 1]
    }

    /// The µTESLA key for beacon interval `j` (1-based): `h^{n-j}(seed)`.
    ///
    /// # Panics
    /// Panics if `j == 0` or `j > n`.
    pub fn interval_key(&self, j: usize) -> ChainElement {
        assert!(j >= 1 && j <= self.len(), "interval out of chain range");
        self.element(self.len() - j)
    }

    /// The element disclosed in the beacon of interval `j`:
    /// `h^{n-j+1}(seed)`, i.e. the key of interval `j − 1`.
    ///
    /// # Panics
    /// Panics if `j == 0` or `j > n`.
    pub fn disclosed_key(&self, j: usize) -> ChainElement {
        assert!(j >= 1 && j <= self.len(), "interval out of chain range");
        self.element(self.len() - j + 1)
    }
}

/// Verify that `candidate` is `distance` one-way steps before `target`
/// (i.e. `h^distance(candidate) == target`).
///
/// This is the receiver-side check "does `h^{j-1}(disclosed)` equal the
/// published anchor", and — when an earlier authenticated element is cached —
/// the cheap one-step variant.
pub fn verify_distance(candidate: &ChainElement, target: &ChainElement, distance: usize) -> bool {
    chain_step_n(candidate, distance) == *target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(b: u8) -> ChainElement {
        [b; CHAIN_ELEMENT_LEN]
    }

    #[test]
    fn generate_links_by_one_way_function() {
        let c = HashChain::generate(seed(7), 10);
        assert_eq!(c.len(), 10);
        for j in 0..10 {
            assert_eq!(chain_step(&c.element(j)), c.element(j + 1));
        }
        assert_eq!(c.anchor(), c.element(10));
    }

    #[test]
    fn element_matches_iterated_step() {
        let c = HashChain::generate(seed(3), 20);
        for j in 0..=20 {
            assert_eq!(c.element(j), chain_step_n(&seed(3), j));
        }
    }

    #[test]
    fn interval_key_schedule() {
        // n = 100: interval 1 keys with h^99, discloses h^100 (anchor).
        let c = HashChain::generate(seed(1), 100);
        assert_eq!(c.interval_key(1), c.element(99));
        assert_eq!(c.disclosed_key(1), c.anchor());
        // interval j discloses the key of interval j-1.
        for j in 2..=100 {
            assert_eq!(c.disclosed_key(j), c.interval_key(j - 1));
        }
        // Last interval's key is the seed.
        assert_eq!(c.interval_key(100), c.element(0));
    }

    #[test]
    fn verify_distance_accepts_genuine_rejects_forged() {
        let c = HashChain::generate(seed(9), 50);
        // disclosed key of interval j is h^{n-j+1}; anchor is h^n; distance j-1.
        for j in [1usize, 2, 17, 50] {
            assert!(verify_distance(&c.disclosed_key(j), &c.anchor(), j - 1));
        }
        let mut forged = c.disclosed_key(10);
        forged[0] ^= 0xff;
        assert!(!verify_distance(&forged, &c.anchor(), 9));
        // Wrong distance also fails.
        assert!(!verify_distance(&c.disclosed_key(10), &c.anchor(), 10));
    }

    #[test]
    fn one_step_verification_against_cached_key() {
        let c = HashChain::generate(seed(5), 30);
        // Receiver cached the authenticated key of interval j-1
        // (h^{n-j+2}); beacon j+1 disclosed h^{n-j} ... one step apart keys:
        // key(j) hashes to key(j-1).
        for j in 2..=30 {
            assert!(verify_distance(
                &c.interval_key(j),
                &c.interval_key(j - 1),
                1
            ));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_chain_rejected() {
        let _ = HashChain::generate(seed(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of chain range")]
    fn interval_zero_rejected() {
        let c = HashChain::generate(seed(0), 5);
        let _ = c.interval_key(0);
    }

    #[test]
    fn chain_step_n_memo_is_transparent() {
        // Interleave repeated, changed-input, changed-count, and zero-count
        // calls; every result must match a fresh fold of chain_step.
        let a = seed(4);
        let b = seed(5);
        for (x, k) in [
            (a, 3usize),
            (b, 3),
            (a, 3),
            (a, 4),
            (b, 0),
            (a, 3),
            (a, 1),
            (a, 1),
        ] {
            let mut v = x;
            for _ in 0..k {
                v = chain_step(&v);
            }
            assert_eq!(chain_step_n(&x, k), v, "k={k}");
        }
    }

    #[test]
    fn distinct_seeds_distinct_anchors() {
        let a = HashChain::generate(seed(1), 10);
        let b = HashChain::generate(seed(2), 10);
        assert_ne!(a.anchor(), b.anchor());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn chain_is_self_consistent(seed_bytes in proptest::array::uniform16(any::<u8>()),
                                    n in 1usize..64) {
            let c = HashChain::generate(seed_bytes, n);
            // Every element verifies against the anchor at its distance.
            for j in 0..=n {
                prop_assert!(verify_distance(&c.element(j), &c.anchor(), n - j));
            }
        }

        #[test]
        fn disclosed_key_authenticates_previous_interval(
            seed_bytes in proptest::array::uniform16(any::<u8>()),
            n in 2usize..64) {
            let c = HashChain::generate(seed_bytes, n);
            for j in 2..=n {
                // One hash application maps interval j's key to interval
                // (j-1)'s key — the cheap cached-key verification path.
                prop_assert_eq!(chain_step(&c.interval_key(j)), c.interval_key(j - 1));
            }
        }
    }
}
