//! µTESLA broadcast authentication (Perrig et al., SPINS 2001) as used by
//! SSTSP.
//!
//! The scheme, instantiated for SSTSP's beacon schedule:
//!
//! * time is divided into beacon intervals; interval `j` covers
//!   `[T₀ + j·BP − BP/2, T₀ + j·BP + BP/2)`;
//! * the beacon sent in interval `j` is
//!   `<B, j, HMAC_{h^{n-j}(s)}(B, j), h^{n-j+1}(s)>` — MACed with the
//!   *undisclosed* key of interval `j` and carrying the *disclosed* key of
//!   interval `j − 1`;
//! * a receiver holding the published anchor `hⁿ(s)` (or any previously
//!   authenticated chain element) verifies the disclosed key with hash
//!   applications only, then authenticates the beacon it buffered during
//!   interval `j − 1`.
//!
//! The requirement µTESLA places on the system — *loose* time
//! synchronization so a receiver can tell which interval it is in — is what
//! SSTSP's coarse synchronization phase provides.

use crate::chain::{chain_step_n, ChainElement, HashChain, CHAIN_ELEMENT_LEN};
use crate::fractal::FractalTraverser;
use crate::hmac::{hmac_sha256_128, mac_eq, Mac128};
use serde::{Deserialize, Serialize};
use sstsp_telemetry as telemetry;
use std::cell::Cell;
use std::collections::VecDeque;

/// Test-only mutation hooks (compiled under the `mutation-hooks` feature,
/// off by default even then). These deliberately plant known protocol bugs
/// so the fault-injection layer's invariant checker and fuzzer can be
/// validated against a detectable defect — a mutation sanity check. Never
/// enable outside tests.
#[cfg(feature = "mutation-hooks")]
pub mod mutation {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ACCEPT_UNVERIFIED_KEYS: AtomicBool = AtomicBool::new(false);

    /// Plant (or clear) the bug: with the flag on, the verifier skips
    /// disclosed-key validation entirely and releases buffered beacons even
    /// when their MAC does not verify under the (unvalidated) disclosed
    /// key, i.e. it accepts beacons keyed by already-disclosed or outright
    /// forged µTESLA keys — the exact failure µTESLA's one-way-chain check
    /// exists to prevent. The invalid key also poisons the verifier's
    /// authenticated-element cache, so the defect cascades the way a real
    /// implementation bug would.
    pub fn set_accept_unverified_keys(on: bool) {
        ACCEPT_UNVERIFIED_KEYS.store(on, Ordering::SeqCst);
    }

    /// Whether the planted bug is active.
    pub fn accept_unverified_keys() -> bool {
        ACCEPT_UNVERIFIED_KEYS.load(Ordering::SeqCst)
    }

    static WEAKEN_GUARD_CHECK: AtomicBool = AtomicBool::new(false);

    /// Plant (or clear) a second bug, consumed by the SSTSP receiver path:
    /// with the flag on, the guard-time plausibility check is disabled
    /// (δ treated as infinite), so any authenticated beacon disciplines the
    /// clock no matter how far its timestamp strays. A colluding insider
    /// campaign whose leader advertises an error beyond δ then walks honest
    /// clocks outside the guard envelope — the exact failure the
    /// guard-time check exists to prevent, and the defect the campaign
    /// fuzzer's mutation sanity check must catch.
    pub fn set_weaken_guard_check(on: bool) {
        WEAKEN_GUARD_CHECK.store(on, Ordering::SeqCst);
    }

    /// Whether the planted guard-time weakening is active.
    pub fn weaken_guard_check() -> bool {
        WEAKEN_GUARD_CHECK.load(Ordering::SeqCst)
    }
}

/// Maps (loosely synchronized) local time to beacon-interval indices.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IntervalSchedule {
    /// Chain start time T₀ in microseconds of synchronized time.
    pub t0_us: f64,
    /// Beacon period in microseconds (typical value 100 000 = 0.1 s).
    pub bp_us: f64,
    /// Chain length: number of usable intervals.
    pub n: usize,
}

impl IntervalSchedule {
    /// Create a schedule.
    ///
    /// # Panics
    /// Panics if `bp_us` is non-positive or `n == 0`.
    pub fn new(t0_us: f64, bp_us: f64, n: usize) -> Self {
        assert!(bp_us > 0.0, "beacon period must be positive");
        assert!(n > 0, "schedule needs at least one interval");
        IntervalSchedule { t0_us, bp_us, n }
    }

    /// The interval index whose window contains `time_us`, if any.
    ///
    /// Interval `j` is centred on its expected emission time `T₀ + j·BP`,
    /// extending BP/2 on either side.
    pub fn interval_at(&self, time_us: f64) -> Option<usize> {
        let j = ((time_us - self.t0_us) / self.bp_us).round();
        if j >= 1.0 && j <= self.n as f64 {
            Some(j as usize)
        } else {
            None
        }
    }

    /// Expected emission time of the interval-`j` beacon: `T₀ + j·BP`.
    pub fn expected_emission_us(&self, j: usize) -> f64 {
        self.t0_us + j as f64 * self.bp_us
    }
}

/// The authentication fields appended to a secured beacon: interval index,
/// 128-bit MAC, 128-bit disclosed key. 4 + 16 + 16 = 36 bytes — exactly the
/// growth from the 56-byte TSF beacon to the paper's 92-byte SSTSP beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconAuth {
    /// Beacon interval index `j` (1-based).
    pub interval: u32,
    /// `HMAC_{h^{n-j}(s)}(B, j)` truncated to 128 bits.
    pub mac: Mac128,
    /// The disclosed key `h^{n-j+1}(s)` authenticating interval `j − 1`.
    pub disclosed: ChainElement,
}

/// Stack-buffer size for beacon-sized MAC inputs (payload + 4-byte index).
const MAC_STACK: usize = 60;

/// Single-entry memo for [`mac_beacon`] over beacon-sized inputs. Every
/// receiver of a broadcast beacon recomputes the *same* HMAC over the same
/// `(key, payload, interval)` triple — n−1 identical calls per released
/// beacon. The function is pure, so the cached MAC is bit-identical to a
/// recompute; thread-local storage keeps parallel sweeps race-free.
#[derive(Clone, Copy)]
struct MacMemo {
    key: ChainElement,
    len: usize,
    payload: [u8; MAC_STACK - 4],
    interval: u32,
    mac: Mac128,
}

thread_local! {
    static MAC_MEMO: Cell<Option<MacMemo>> = const { Cell::new(None) };
}

/// `HMAC_key(B, j)`: the MAC input is the payload followed by the
/// little-endian interval index, per the paper's `(B, j)`. Beacon-sized
/// payloads are assembled on the stack so the per-beacon hot path does not
/// allocate, and memoized so the per-receiver fan-out pays the HMAC once.
fn mac_beacon(key: &[u8], payload: &[u8], interval: u32) -> Mac128 {
    if key.len() == CHAIN_ELEMENT_LEN && payload.len() <= MAC_STACK - 4 {
        if let Some(m) = MAC_MEMO.get() {
            if m.interval == interval
                && m.len == payload.len()
                && m.key[..] == *key
                && m.payload[..m.len] == *payload
            {
                return m.mac;
            }
        }
        let mut msg = [0u8; MAC_STACK];
        msg[..payload.len()].copy_from_slice(payload);
        msg[payload.len()..payload.len() + 4].copy_from_slice(&interval.to_le_bytes());
        let mac = hmac_sha256_128(key, &msg[..payload.len() + 4]);
        let mut entry = MacMemo {
            key: key.try_into().expect("length checked"),
            len: payload.len(),
            payload: [0u8; MAC_STACK - 4],
            interval,
            mac,
        };
        entry.payload[..payload.len()].copy_from_slice(payload);
        MAC_MEMO.set(Some(entry));
        mac
    } else if payload.len() <= MAC_STACK - 4 {
        let mut msg = [0u8; MAC_STACK];
        msg[..payload.len()].copy_from_slice(payload);
        msg[payload.len()..payload.len() + 4].copy_from_slice(&interval.to_le_bytes());
        hmac_sha256_128(key, &msg[..payload.len() + 4])
    } else {
        let mut msg = Vec::with_capacity(payload.len() + 4);
        msg.extend_from_slice(payload);
        msg.extend_from_slice(&interval.to_le_bytes());
        hmac_sha256_128(key, &msg)
    }
}

/// Compute the µTESLA fields for `payload` in interval `j` using an
/// externally managed chain (the SSTSP reference node owns its chain as
/// part of larger protocol state).
///
/// # Panics
/// Panics if `j` is outside `1..=chain.len()`.
pub fn sign_with_chain(chain: &HashChain, payload: &[u8], j: usize) -> BeaconAuth {
    let key = chain.interval_key(j);
    let mac = mac_beacon(&key, payload, j as u32);
    BeaconAuth {
        interval: j as u32,
        mac,
        disclosed: chain.disclosed_key(j),
    }
}

/// Recently emitted chain elements the signer keeps around, as a count.
/// Covers re-signing the current interval and modest backward interval
/// jumps (a receiver-turned-reference whose clock was stepped back during a
/// domain merge); anything older falls back to a recompute from the seed.
const SIGNER_RECENT_WINDOW: usize = 32;

/// Sender side: produces [`BeaconAuth`] fields from `O(log n)` stored chain
/// state.
///
/// Instead of materializing all `n` chain elements (16·n bytes — 160 KiB
/// for the paper's 10 100-interval chain), the signer drives a
/// [`FractalTraverser`]: µTESLA consumes keys in exactly the traverser's
/// emission order (`h^{n-1}, h^{n-2}, …`), so sequential signing costs
/// `O(log n)` amortized hashes per interval against `O(log n)` pebbles. A
/// small window of recently emitted elements serves repeat signatures for
/// the same (or slightly older) interval; signing an interval that left the
/// window recomputes from the seed without disturbing the traverser.
pub struct MuTeslaSigner {
    seed: ChainElement,
    anchor: ChainElement,
    schedule: IntervalSchedule,
    /// Built on the first signature. Every station publishes an anchor at
    /// initiation but only the node that actually becomes reference signs,
    /// so eager traversal setup would double the per-node initiation cost
    /// for nothing.
    traverser: Option<FractalTraverser>,
    /// Recently emitted elements, newest (lowest chain position) at the
    /// back: `(position, h^position(seed))`.
    recent: VecDeque<(usize, ChainElement)>,
    /// One-way-function invocations spent on out-of-window recomputes.
    fallback_hashes: u64,
}

impl MuTeslaSigner {
    /// Build a signer from a seed; the chain length comes from the schedule.
    /// Costs the `n` hashes of the anchor walk (which every station owes at
    /// initiation anyway); traversal state is materialized lazily on first
    /// signature.
    pub fn new(seed: ChainElement, schedule: IntervalSchedule) -> Self {
        MuTeslaSigner {
            seed,
            anchor: FractalTraverser::anchor_of(&seed, schedule.n),
            schedule,
            traverser: None,
            recent: VecDeque::with_capacity(SIGNER_RECENT_WINDOW),
            fallback_hashes: 0,
        }
    }

    /// The anchor to publish (`hⁿ(s)`).
    pub fn anchor(&self) -> ChainElement {
        self.anchor
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &IntervalSchedule {
        &self.schedule
    }

    /// The chain seed. A compromised node's credentials are exactly this
    /// value — the internal-attacker model signs with the victim's seed.
    pub fn seed(&self) -> ChainElement {
        self.seed
    }

    /// `h^pos(seed)`, served from the anchor, the recent window, the
    /// traverser (advancing it), or — for positions the traverser already
    /// passed and the window evicted — a recompute from the seed.
    fn element_at(&mut self, pos: usize) -> ChainElement {
        if pos >= self.schedule.n {
            debug_assert_eq!(pos, self.schedule.n, "past the anchor");
            return self.anchor;
        }
        if let Some(&(_, v)) = self.recent.iter().rev().find(|(p, _)| *p == pos) {
            return v;
        }
        let (seed, n) = (self.seed, self.schedule.n);
        let traverser = self
            .traverser
            .get_or_insert_with(|| FractalTraverser::new(seed, n));
        // `remaining()` is the position the traverser will emit next, plus
        // one — so it emits `pos` iff `remaining() > pos`.
        if traverser.remaining() > pos {
            let mut value = self.anchor;
            while traverser.remaining() > pos {
                value = traverser.next_element().expect("remaining > 0");
                let emitted = traverser.remaining();
                if self.recent.len() == SIGNER_RECENT_WINDOW {
                    self.recent.pop_front();
                }
                self.recent.push_back((emitted, value));
            }
            return value;
        }
        // Consumed and evicted: rare backward jump beyond the window.
        self.fallback_hashes += pos as u64;
        chain_step_n(&self.seed, pos)
    }

    /// Sign `payload` for interval `j`. Byte-identical to
    /// [`sign_with_chain`] over a chain generated from the same seed.
    ///
    /// # Panics
    /// Panics if `j` is outside `1..=n`.
    pub fn sign(&mut self, payload: &[u8], j: usize) -> BeaconAuth {
        let n = self.schedule.n;
        assert!(j >= 1 && j <= n, "interval out of chain range");
        telemetry::count!("mutesla.sign");
        // Fetch the key (position n-j) first: reaching it emits the
        // disclosed element (position n-j+1) into the recent window.
        let key = self.element_at(n - j);
        let disclosed = self.element_at(n - j + 1);
        BeaconAuth {
            interval: j as u32,
            mac: mac_beacon(&key, payload, j as u32),
            disclosed,
        }
    }

    /// Chain elements currently held in memory: traverser pebbles, the
    /// recent window, seed and anchor. `O(log n)` — the point of the
    /// fractal-backed signer (see `signer_memory_is_logarithmic`).
    pub fn stored_elements(&self) -> usize {
        self.traverser.as_ref().map_or(0, |t| t.pebble_count()) + self.recent.len() + 2
    }

    /// Total one-way-function invocations spent signing so far (traversal
    /// plus out-of-window recomputes; excludes construction's anchor walk).
    pub fn hash_count(&self) -> u64 {
        self.traverser.as_ref().map_or(0, |t| t.hash_count()) + self.fallback_hashes
    }
}

/// Why a received beacon was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The carried interval index does not match the receiver's current
    /// interval — stale, replayed, or sent by a desynchronized node.
    WrongInterval {
        /// Interval index claimed by the beacon.
        claimed: u32,
        /// Interval the receiver believes it is in (`None` = outside the
        /// schedule entirely).
        current: Option<u32>,
    },
    /// The disclosed key does not hash to the anchor / cached element.
    BadDisclosedKey,
    /// The buffered previous beacon failed MAC verification with the
    /// (valid) disclosed key.
    PreviousBeaconForged,
}

/// Inline capacity of [`PayloadBuf`]. Beacon auth bytes are 32, so every
/// payload the engine buffers stays inline; larger payloads spill to the
/// heap transparently.
const PAYLOAD_INLINE: usize = 64;

/// A beacon payload, held inline when beacon-sized. The verifier buffers
/// one payload per observed beacon — with an inline buffer that buffering
/// is heap-allocation-free on the engine's per-delivery hot path.
#[derive(Clone)]
pub struct PayloadBuf(PayloadRepr);

#[derive(Clone)]
enum PayloadRepr {
    Inline { len: u8, buf: [u8; PAYLOAD_INLINE] },
    Heap(Vec<u8>),
}

impl PayloadBuf {
    /// View the payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            PayloadRepr::Inline { len, buf } => &buf[..*len as usize],
            PayloadRepr::Heap(v) => v,
        }
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(bytes: &[u8]) -> Self {
        if bytes.len() <= PAYLOAD_INLINE {
            let mut buf = [0u8; PAYLOAD_INLINE];
            buf[..bytes.len()].copy_from_slice(bytes);
            PayloadBuf(PayloadRepr::Inline {
                len: bytes.len() as u8,
                buf,
            })
        } else {
            PayloadBuf(PayloadRepr::Heap(bytes.to_vec()))
        }
    }
}

impl From<Vec<u8>> for PayloadBuf {
    fn from(bytes: Vec<u8>) -> Self {
        PayloadBuf::from(bytes.as_slice())
    }
}

impl std::ops::Deref for PayloadBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBuf {}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for PayloadBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PayloadBuf").field(&self.as_slice()).finish()
    }
}

/// A beacon whose authenticity has been established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthenticatedBeacon {
    /// The interval the beacon was sent in.
    pub interval: u32,
    /// The beacon payload.
    pub payload: PayloadBuf,
}

/// Receiver side: verifies disclosed keys against the anchor and
/// authenticates buffered beacons one interval late.
pub struct MuTeslaVerifier {
    anchor: ChainElement,
    schedule: IntervalSchedule,
    /// Most recent authenticated chain element, as (interval-of-key, key):
    /// the key of interval `j` is `h^{n-j}`. Caching it reduces disclosed-key
    /// verification to a handful of hash applications.
    cached_key: Option<(u32, ChainElement)>,
    /// Beacon received in the previous interval, awaiting its key. The
    /// payload is stored inline ([`PayloadBuf`]) so buffering does not
    /// allocate on the per-delivery hot path.
    pending: Option<(u32, PayloadBuf, Mac128)>,
    /// One-way-function invocations spent validating disclosed keys (the
    /// observable that distinguishes the O(Δj) cached path from the O(j)
    /// anchor path — see `warm_path_costs_delta_j_hashes`).
    hashes: u64,
}

impl MuTeslaVerifier {
    /// Build a verifier from the published anchor.
    pub fn new(anchor: ChainElement, schedule: IntervalSchedule) -> Self {
        MuTeslaVerifier {
            anchor,
            schedule,
            cached_key: None,
            pending: None,
            hashes: 0,
        }
    }

    /// Process a received beacon at (loosely synchronized) local time
    /// `now_us`.
    ///
    /// On success, returns the beacon from interval `j − 1` if one was
    /// buffered and is now authenticated. The *current* beacon is buffered
    /// and will be released by the next call.
    ///
    /// On failure the verifier state is unchanged (the offending beacon is
    /// simply discarded, per the paper).
    pub fn observe(
        &mut self,
        payload: &[u8],
        auth: &BeaconAuth,
        now_us: f64,
    ) -> Result<Option<AuthenticatedBeacon>, VerifyError> {
        // Check 1: the interval index must correspond to the current time
        // interval (counters replay of old beacons).
        let current = self.schedule.interval_at(now_us);
        if current != Some(auth.interval as usize) {
            telemetry::count!("mutesla.verify.wrong_interval");
            return Err(VerifyError::WrongInterval {
                claimed: auth.interval,
                current: current.map(|c| c as u32),
            });
        }

        // Check 2: validate the disclosed key h^{n-j+1} — the key of
        // interval j-1. Against the cached element when possible (O(Δj)
        // hashes), else against the anchor (O(j) hashes).
        let key_interval = auth.interval - 1; // disclosed key belongs to interval j-1
        let valid = match self.cached_key {
            Some((cached_interval, cached)) if key_interval >= cached_interval => {
                let distance = (key_interval - cached_interval) as usize;
                self.hashes += distance as u64;
                if distance == 0 {
                    auth.disclosed == cached
                } else {
                    chain_step_n(&auth.disclosed, distance) == cached
                }
            }
            _ => {
                // key of interval (j-1) is h^{n-(j-1)} = h^{n-j+1};
                // hashing it (j-1) times yields h^n = anchor.
                self.hashes += u64::from(key_interval);
                chain_step_n(&auth.disclosed, key_interval as usize) == self.anchor
            }
        };
        #[cfg(feature = "mutation-hooks")]
        let valid = valid || mutation::accept_unverified_keys();
        if !valid {
            telemetry::count!("mutesla.verify.bad_key");
            return Err(VerifyError::BadDisclosedKey);
        }
        if key_interval >= 1 {
            self.cached_key = Some((key_interval, auth.disclosed));
        }

        // Check 3: authenticate the buffered beacon with the now-validated
        // disclosure. The buffered beacon is usually from interval j-1
        // (whose key is exactly `auth.disclosed`), but when its *own*
        // disclosure was lost or corrupted in flight it can be older: the
        // key of any earlier interval pj derives from the validated
        // disclosure by hashing down the one-way chain,
        // `key(pj) = h^(key_interval − pj)(disclosed)` — µTESLA's standard
        // recovery from missed disclosures.
        let released = match self.pending.take() {
            Some((pj, ppayload, pmac)) if pj <= key_interval => {
                let distance = (key_interval - pj) as usize;
                self.hashes += distance as u64;
                let key = if distance == 0 {
                    auth.disclosed
                } else {
                    chain_step_n(&auth.disclosed, distance)
                };
                let expect = mac_beacon(&key, &ppayload, pj);
                let mac_ok = mac_eq(&expect, &pmac);
                #[cfg(feature = "mutation-hooks")]
                let mac_ok = mac_ok || mutation::accept_unverified_keys();
                if mac_ok {
                    Some(AuthenticatedBeacon {
                        interval: pj,
                        payload: ppayload,
                    })
                } else {
                    // Buffer the fresh beacon before reporting: the forged
                    // previous beacon must not block future progress.
                    self.pending = Some((auth.interval, PayloadBuf::from(payload), auth.mac));
                    telemetry::count!("mutesla.verify.forged_prev");
                    return Err(VerifyError::PreviousBeaconForged);
                }
            }
            // Missed or absent previous beacon: nothing to release.
            _ => None,
        };

        self.pending = Some((auth.interval, PayloadBuf::from(payload), auth.mac));
        telemetry::count!("mutesla.verify.ok");
        Ok(released)
    }

    /// The receiver's current cached authenticated chain element, if any.
    pub fn cached_key(&self) -> Option<(u32, ChainElement)> {
        self.cached_key
    }

    /// Whether a beacon is buffered awaiting authentication.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Drop any buffered beacon. A verifier pulled out of a cache after
    /// arbitrary elapsed time must not release (or flag as forged) a stale
    /// buffer whose disclosure window has long passed; clearing makes its
    /// accept/reject decisions coincide with a freshly built verifier while
    /// keeping the cached authenticated element (the `O(Δj)` fast path).
    pub fn clear_pending(&mut self) {
        self.pending = None;
    }

    /// One-way-function invocations spent on disclosed-key validation.
    pub fn hash_count(&self) -> u64 {
        self.hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BP: f64 = 100_000.0; // 0.1 s in µs

    fn schedule(n: usize) -> IntervalSchedule {
        IntervalSchedule::new(0.0, BP, n)
    }

    fn seed(b: u8) -> ChainElement {
        [b; 16]
    }

    #[test]
    fn interval_windows() {
        let s = schedule(100);
        // Interval j is centred on j*BP.
        assert_eq!(s.interval_at(100_000.0), Some(1));
        assert_eq!(s.interval_at(100_000.0 - BP / 2.0 + 1.0), Some(1));
        assert_eq!(s.interval_at(100_000.0 + BP / 2.0 - 1.0), Some(1));
        assert_eq!(s.interval_at(150_001.0), Some(2));
        assert_eq!(s.interval_at(0.0), None); // before interval 1's window
        assert_eq!(s.interval_at(100.0 * BP), Some(100));
        assert_eq!(s.interval_at(101.0 * BP), None); // past the chain
    }

    #[test]
    fn expected_emission_times() {
        let s = IntervalSchedule::new(500.0, BP, 10);
        assert_eq!(s.expected_emission_us(3), 500.0 + 3.0 * BP);
    }

    #[test]
    fn sign_then_verify_chain_of_beacons() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(1), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let mut released = Vec::new();
        for j in 1..=10usize {
            let payload = format!("beacon-{j}").into_bytes();
            let auth = signer.sign(&payload, j);
            let now = sched.expected_emission_us(j) + 7.0;
            let out = verifier
                .observe(&payload, &auth, now)
                .expect("valid beacon");
            if let Some(b) = out {
                released.push(b);
            }
        }
        // Beacons 1..=9 are authenticated (each released by its successor).
        assert_eq!(released.len(), 9);
        for (i, b) in released.iter().enumerate() {
            assert_eq!(b.interval as usize, i + 1);
            assert_eq!(b.payload, format!("beacon-{}", i + 1).into_bytes());
        }
        assert!(verifier.has_pending());
    }

    #[test]
    fn replayed_beacon_rejected_by_interval_check() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(2), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let auth = signer.sign(b"old", 3);
        // Replay interval-3 beacon during interval 7.
        let err = verifier
            .observe(b"old", &auth, sched.expected_emission_us(7))
            .unwrap_err();
        assert_eq!(
            err,
            VerifyError::WrongInterval {
                claimed: 3,
                current: Some(7)
            }
        );
    }

    #[test]
    fn forged_disclosed_key_rejected() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(3), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let mut auth = signer.sign(b"x", 4);
        auth.disclosed[0] ^= 0x01;
        let err = verifier
            .observe(b"x", &auth, sched.expected_emission_us(4))
            .unwrap_err();
        assert_eq!(err, VerifyError::BadDisclosedKey);
    }

    #[test]
    fn external_forger_cannot_authenticate_payload() {
        // Attacker without the chain fabricates a beacon for the current
        // interval reusing a previously disclosed key (too late: that key's
        // interval has passed) — it has no valid key for the current one.
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(4), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        // Legitimate beacons for intervals 1 and 2 observed.
        for j in 1..=2 {
            let p = vec![j as u8];
            let auth = signer.sign(&p, j);
            verifier
                .observe(&p, &auth, sched.expected_emission_us(j))
                .unwrap();
        }
        // Attacker saw the key of interval 1 (disclosed in beacon 2) and
        // forges an interval-3 beacon MACed with it; it must supply a
        // disclosed key for interval 2 — it has none, so it re-discloses
        // interval 1's key. Receiver sees a key that doesn't verify as
        // interval 2's key.
        let key1 = signer.sign(&[0], 2).disclosed; // h^{n-1}: interval-1 key
        let forged_payload = b"evil".to_vec();
        let mut msg = forged_payload.clone();
        msg.extend_from_slice(&3u32.to_le_bytes());
        let forged = BeaconAuth {
            interval: 3,
            mac: hmac_sha256_128(&key1, &msg),
            disclosed: key1,
        };
        let err = verifier
            .observe(&forged_payload, &forged, sched.expected_emission_us(3))
            .unwrap_err();
        assert_eq!(err, VerifyError::BadDisclosedKey);
    }

    #[test]
    fn tampered_previous_beacon_detected() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(5), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        // Interval 1: attacker tampers the payload in flight (MAC no longer
        // matches).
        let auth1 = signer.sign(b"genuine", 1);
        verifier
            .observe(b"tampered", &auth1, sched.expected_emission_us(1))
            .unwrap();
        // Interval 2 discloses interval 1's key; verification must flag the
        // buffered beacon as forged.
        let auth2 = signer.sign(b"second", 2);
        let err = verifier
            .observe(b"second", &auth2, sched.expected_emission_us(2))
            .unwrap_err();
        assert_eq!(err, VerifyError::PreviousBeaconForged);
        // Progress continues: interval 3 releases beacon 2.
        let auth3 = signer.sign(b"third", 3);
        let out = verifier
            .observe(b"third", &auth3, sched.expected_emission_us(3))
            .unwrap();
        assert_eq!(
            out,
            Some(AuthenticatedBeacon {
                interval: 2,
                payload: b"second".to_vec().into()
            })
        );
    }

    #[test]
    fn missed_beacons_do_not_break_verification() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(6), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        // Receive beacon 1, miss 2-4, receive 5: key check must still pass
        // (distance > 1 from cached element) and beacon 1 is released late —
        // its own disclosure came in beacon 2 (lost), but interval 1's key
        // derives from beacon 5's validated disclosure by walking the chain.
        let p1 = b"one".to_vec();
        let a1 = signer.sign(&p1, 1);
        verifier
            .observe(&p1, &a1, sched.expected_emission_us(1))
            .unwrap();

        let p5 = b"five".to_vec();
        let a5 = signer.sign(&p5, 5);
        let out = verifier
            .observe(&p5, &a5, sched.expected_emission_us(5))
            .unwrap();
        assert_eq!(
            out,
            Some(AuthenticatedBeacon {
                interval: 1,
                payload: p1.into()
            }),
            "lost disclosure recovered from a later one"
        );

        let p6 = b"six".to_vec();
        let a6 = signer.sign(&p6, 6);
        let out = verifier
            .observe(&p6, &a6, sched.expected_emission_us(6))
            .unwrap();
        assert_eq!(
            out,
            Some(AuthenticatedBeacon {
                interval: 5,
                payload: p5.into()
            })
        );
    }

    #[test]
    fn corrupted_disclosure_recovered_by_next_beacon() {
        // Beacon 2 arrives with its disclosed key corrupted in flight: it
        // is rejected and discarded. The genuine beacon 1 it would have
        // authenticated must not be lost — beacon 3's (valid) disclosure
        // derives interval 1's key by one extra chain step.
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(14), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let p1 = b"one".to_vec();
        let a1 = signer.sign(&p1, 1);
        verifier
            .observe(&p1, &a1, sched.expected_emission_us(1))
            .unwrap();

        let mut a2 = signer.sign(b"two", 2);
        a2.disclosed = [0u8; 16]; // zeroed by a disclosure-loss fault
        let err = verifier
            .observe(b"two", &a2, sched.expected_emission_us(2))
            .unwrap_err();
        assert_eq!(err, VerifyError::BadDisclosedKey);
        assert!(verifier.has_pending(), "rejection leaves state unchanged");

        let p3 = b"three".to_vec();
        let a3 = signer.sign(&p3, 3);
        let out = verifier
            .observe(&p3, &a3, sched.expected_emission_us(3))
            .unwrap();
        assert_eq!(
            out,
            Some(AuthenticatedBeacon {
                interval: 1,
                payload: p1.into()
            }),
            "beacon 1 authenticated across the corrupted disclosure"
        );
    }

    #[test]
    fn late_release_still_detects_forgery() {
        // The chain-walk recovery path must not weaken check 3: a tampered
        // buffered beacon is still flagged when authenticated by a *later*
        // disclosure than its own.
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(15), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let a1 = signer.sign(b"genuine", 1);
        verifier
            .observe(b"tampered", &a1, sched.expected_emission_us(1))
            .unwrap();
        // Beacons 2-3 missed; beacon 4's disclosure reaches back to
        // interval 1's key and exposes the tampering.
        let a4 = signer.sign(b"four", 4);
        let err = verifier
            .observe(b"four", &a4, sched.expected_emission_us(4))
            .unwrap_err();
        assert_eq!(err, VerifyError::PreviousBeaconForged);
    }

    #[test]
    fn cached_key_reduces_to_single_step() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(7), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);
        for j in 1..=3usize {
            let p = vec![j as u8];
            let auth = signer.sign(&p, j);
            verifier
                .observe(&p, &auth, sched.expected_emission_us(j))
                .unwrap();
        }
        let (ki, _) = verifier.cached_key().unwrap();
        assert_eq!(ki, 2, "cache holds the key of interval j-1 = 2");
    }

    #[test]
    fn verifier_state_unchanged_on_rejection() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(8), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let p1 = b"one".to_vec();
        let a1 = signer.sign(&p1, 1);
        verifier
            .observe(&p1, &a1, sched.expected_emission_us(1))
            .unwrap();

        // Forged key at interval 2: rejection must not clobber pending.
        let mut bad = signer.sign(b"evil", 2);
        bad.disclosed = [0xde; 16];
        let _ = verifier
            .observe(b"evil", &bad, sched.expected_emission_us(2))
            .unwrap_err();
        assert!(verifier.has_pending());

        // Genuine interval-2 beacon still releases beacon 1.
        let p2 = b"two".to_vec();
        let a2 = signer.sign(&p2, 2);
        let out = verifier
            .observe(&p2, &a2, sched.expected_emission_us(2))
            .unwrap();
        assert_eq!(out.unwrap().payload, p1);
    }

    #[test]
    fn fractal_signer_matches_store_all() {
        // The fractal-backed signer must emit byte-identical BeaconAuth
        // fields to sign_with_chain over a chain from the same seed, for
        // every interval, in any visiting order the protocol produces
        // (sequential, repeated, and small backward jumps).
        let n = 200;
        let sched = schedule(n);
        let chain = HashChain::generate(seed(9), n);
        let mut signer = MuTeslaSigner::new(seed(9), sched);
        assert_eq!(signer.anchor(), chain.anchor());
        for j in 1..=n {
            let payload = [j as u8; 24];
            let expect = sign_with_chain(&chain, &payload, j);
            assert_eq!(signer.sign(&payload, j), expect, "j={j}");
            // Repeat signature for the same interval (reference re-beacons
            // within one interval).
            assert_eq!(signer.sign(&payload, j), expect, "repeat j={j}");
            // Occasional small backward jump (clock stepped back a little).
            if j > 3 && j % 50 == 0 {
                let back = j - 3;
                let p = [back as u8; 24];
                assert_eq!(
                    signer.sign(&p, back),
                    sign_with_chain(&chain, &p, back),
                    "back-jump to {back}"
                );
            }
        }
    }

    #[test]
    fn signer_out_of_window_fallback_recomputes_correctly() {
        let n = 300;
        let sched = schedule(n);
        let chain = HashChain::generate(seed(10), n);
        let mut signer = MuTeslaSigner::new(seed(10), sched);
        // Advance far past interval 5, evicting it from the recent window.
        let _ = signer.sign(b"x", 250);
        let before = signer.hash_count();
        let a = signer.sign(b"old", 5);
        assert_eq!(a, sign_with_chain(&chain, b"old", 5));
        assert!(
            signer.hash_count() > before,
            "deep backward jump pays a recompute"
        );
        // The traverser was not disturbed: forward signing still matches.
        let a = signer.sign(b"y", 251);
        assert_eq!(a, sign_with_chain(&chain, b"y", 251));
    }

    #[test]
    fn signer_memory_is_logarithmic() {
        // Chain length 2^14: a store-all signer would hold 16 385 elements;
        // the fractal-backed signer must stay within pebbles (≤ log₂n + 2)
        // plus the constant recent window at every point of a full
        // sequential signing pass.
        let n = 1 << 14;
        let sched = IntervalSchedule::new(0.0, BP, n);
        let mut signer = MuTeslaSigner::new(seed(11), sched);
        let budget = 14 + 2 + SIGNER_RECENT_WINDOW + 2;
        let mut max_stored = signer.stored_elements();
        for j in 1..=n {
            let _ = signer.sign(b"beacon", j);
            max_stored = max_stored.max(signer.stored_elements());
        }
        assert!(
            max_stored <= budget,
            "stored {max_stored} chain elements, budget {budget}"
        );
        // Spot-check correctness at the extremes of the pass.
        assert_eq!(
            signer.sign(b"beacon", n).disclosed,
            chain_step_n(&seed(11), 1),
            "last interval discloses h^1"
        );
    }

    #[test]
    fn warm_path_costs_delta_j_hashes() {
        // The verifier's exposed hash counter pins the two validation
        // regimes: O(j) against the anchor when cold, O(Δj) against the
        // cached element when warm.
        let n = 1000;
        let sched = schedule(n);
        let mut signer = MuTeslaSigner::new(seed(12), sched);
        let mut v = MuTeslaVerifier::new(signer.anchor(), sched);

        // Cold: first observation at interval 500 walks key_interval = 499
        // hashes to the anchor.
        let a = signer.sign(b"b500", 500);
        v.observe(b"b500", &a, sched.expected_emission_us(500))
            .unwrap();
        assert_eq!(v.hash_count(), 499, "anchor path is O(j)");

        // Warm: consecutive beacons cost exactly Δj = 1 hash each.
        for j in 501..=520usize {
            let before = v.hash_count();
            let a = signer.sign(b"b", j);
            v.observe(b"b", &a, sched.expected_emission_us(j)).unwrap();
            assert_eq!(v.hash_count() - before, 1, "warm path at j={j}");
        }

        // A gap of k missed beacons costs Δj = k + 1 hashes to validate the
        // disclosure plus Δj − 1 more to derive the buffered beacon's key
        // across the gap (the missed-disclosure recovery path) — still
        // O(Δj) overall.
        let before = v.hash_count();
        let a = signer.sign(b"b", 530);
        v.observe(b"b", &a, sched.expected_emission_us(530))
            .unwrap();
        assert_eq!(v.hash_count() - before, 19, "gap path is O(Δj)");
    }

    #[test]
    fn clear_pending_drops_buffer_keeps_cache() {
        let sched = schedule(50);
        let mut signer = MuTeslaSigner::new(seed(13), sched);
        let mut v = MuTeslaVerifier::new(signer.anchor(), sched);
        for j in 1..=2usize {
            let a = signer.sign(b"p", j);
            v.observe(b"p", &a, sched.expected_emission_us(j)).unwrap();
        }
        assert!(v.has_pending());
        let cached = v.cached_key();
        v.clear_pending();
        assert!(!v.has_pending());
        assert_eq!(v.cached_key(), cached, "cached element survives");
        // Nothing is released for the cleared buffer; progress continues.
        let a = signer.sign(b"p", 3);
        let out = v.observe(b"p", &a, sched.expected_emission_us(3)).unwrap();
        assert_eq!(out, None);
    }
}
