//! µTESLA broadcast authentication (Perrig et al., SPINS 2001) as used by
//! SSTSP.
//!
//! The scheme, instantiated for SSTSP's beacon schedule:
//!
//! * time is divided into beacon intervals; interval `j` covers
//!   `[T₀ + j·BP − BP/2, T₀ + j·BP + BP/2)`;
//! * the beacon sent in interval `j` is
//!   `<B, j, HMAC_{h^{n-j}(s)}(B, j), h^{n-j+1}(s)>` — MACed with the
//!   *undisclosed* key of interval `j` and carrying the *disclosed* key of
//!   interval `j − 1`;
//! * a receiver holding the published anchor `hⁿ(s)` (or any previously
//!   authenticated chain element) verifies the disclosed key with hash
//!   applications only, then authenticates the beacon it buffered during
//!   interval `j − 1`.
//!
//! The requirement µTESLA places on the system — *loose* time
//! synchronization so a receiver can tell which interval it is in — is what
//! SSTSP's coarse synchronization phase provides.

use crate::chain::{chain_step_n, ChainElement, HashChain};
use crate::hmac::{hmac_sha256_128, mac_eq, Mac128};
use serde::{Deserialize, Serialize};

/// Maps (loosely synchronized) local time to beacon-interval indices.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IntervalSchedule {
    /// Chain start time T₀ in microseconds of synchronized time.
    pub t0_us: f64,
    /// Beacon period in microseconds (typical value 100 000 = 0.1 s).
    pub bp_us: f64,
    /// Chain length: number of usable intervals.
    pub n: usize,
}

impl IntervalSchedule {
    /// Create a schedule.
    ///
    /// # Panics
    /// Panics if `bp_us` is non-positive or `n == 0`.
    pub fn new(t0_us: f64, bp_us: f64, n: usize) -> Self {
        assert!(bp_us > 0.0, "beacon period must be positive");
        assert!(n > 0, "schedule needs at least one interval");
        IntervalSchedule { t0_us, bp_us, n }
    }

    /// The interval index whose window contains `time_us`, if any.
    ///
    /// Interval `j` is centred on its expected emission time `T₀ + j·BP`,
    /// extending BP/2 on either side.
    pub fn interval_at(&self, time_us: f64) -> Option<usize> {
        let j = ((time_us - self.t0_us) / self.bp_us).round();
        if j >= 1.0 && j <= self.n as f64 {
            Some(j as usize)
        } else {
            None
        }
    }

    /// Expected emission time of the interval-`j` beacon: `T₀ + j·BP`.
    pub fn expected_emission_us(&self, j: usize) -> f64 {
        self.t0_us + j as f64 * self.bp_us
    }
}

/// The authentication fields appended to a secured beacon: interval index,
/// 128-bit MAC, 128-bit disclosed key. 4 + 16 + 16 = 36 bytes — exactly the
/// growth from the 56-byte TSF beacon to the paper's 92-byte SSTSP beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconAuth {
    /// Beacon interval index `j` (1-based).
    pub interval: u32,
    /// `HMAC_{h^{n-j}(s)}(B, j)` truncated to 128 bits.
    pub mac: Mac128,
    /// The disclosed key `h^{n-j+1}(s)` authenticating interval `j − 1`.
    pub disclosed: ChainElement,
}

/// MAC input: payload followed by the little-endian interval index, per the
/// paper's `(B, j)`.
fn mac_message(payload: &[u8], interval: u32) -> Vec<u8> {
    let mut msg = Vec::with_capacity(payload.len() + 4);
    msg.extend_from_slice(payload);
    msg.extend_from_slice(&interval.to_le_bytes());
    msg
}

/// Compute the µTESLA fields for `payload` in interval `j` using an
/// externally managed chain (the SSTSP reference node owns its chain as
/// part of larger protocol state).
///
/// # Panics
/// Panics if `j` is outside `1..=chain.len()`.
pub fn sign_with_chain(chain: &HashChain, payload: &[u8], j: usize) -> BeaconAuth {
    let key = chain.interval_key(j);
    let mac = hmac_sha256_128(&key, &mac_message(payload, j as u32));
    BeaconAuth {
        interval: j as u32,
        mac,
        disclosed: chain.disclosed_key(j),
    }
}

/// Sender side: owns the hash chain and produces [`BeaconAuth`] fields.
pub struct MuTeslaSigner {
    chain: HashChain,
    schedule: IntervalSchedule,
}

impl MuTeslaSigner {
    /// Build a signer from a seed; the chain length comes from the schedule.
    pub fn new(seed: ChainElement, schedule: IntervalSchedule) -> Self {
        MuTeslaSigner {
            chain: HashChain::generate(seed, schedule.n),
            schedule,
        }
    }

    /// The anchor to publish (`hⁿ(s)`).
    pub fn anchor(&self) -> ChainElement {
        self.chain.anchor()
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &IntervalSchedule {
        &self.schedule
    }

    /// Sign `payload` for interval `j`.
    ///
    /// # Panics
    /// Panics if `j` is outside `1..=n`.
    pub fn sign(&self, payload: &[u8], j: usize) -> BeaconAuth {
        sign_with_chain(&self.chain, payload, j)
    }
}

/// Why a received beacon was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The carried interval index does not match the receiver's current
    /// interval — stale, replayed, or sent by a desynchronized node.
    WrongInterval {
        /// Interval index claimed by the beacon.
        claimed: u32,
        /// Interval the receiver believes it is in (`None` = outside the
        /// schedule entirely).
        current: Option<u32>,
    },
    /// The disclosed key does not hash to the anchor / cached element.
    BadDisclosedKey,
    /// The buffered previous beacon failed MAC verification with the
    /// (valid) disclosed key.
    PreviousBeaconForged,
}

/// A beacon whose authenticity has been established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthenticatedBeacon {
    /// The interval the beacon was sent in.
    pub interval: u32,
    /// The beacon payload.
    pub payload: Vec<u8>,
}

/// Receiver side: verifies disclosed keys against the anchor and
/// authenticates buffered beacons one interval late.
pub struct MuTeslaVerifier {
    anchor: ChainElement,
    schedule: IntervalSchedule,
    /// Most recent authenticated chain element, as (interval-of-key, key):
    /// the key of interval `j` is `h^{n-j}`. Caching it reduces disclosed-key
    /// verification to a handful of hash applications.
    cached_key: Option<(u32, ChainElement)>,
    /// Beacon received in the previous interval, awaiting its key.
    pending: Option<(u32, Vec<u8>, Mac128)>,
}

impl MuTeslaVerifier {
    /// Build a verifier from the published anchor.
    pub fn new(anchor: ChainElement, schedule: IntervalSchedule) -> Self {
        MuTeslaVerifier {
            anchor,
            schedule,
            cached_key: None,
            pending: None,
        }
    }

    /// Process a received beacon at (loosely synchronized) local time
    /// `now_us`.
    ///
    /// On success, returns the beacon from interval `j − 1` if one was
    /// buffered and is now authenticated. The *current* beacon is buffered
    /// and will be released by the next call.
    ///
    /// On failure the verifier state is unchanged (the offending beacon is
    /// simply discarded, per the paper).
    pub fn observe(
        &mut self,
        payload: &[u8],
        auth: &BeaconAuth,
        now_us: f64,
    ) -> Result<Option<AuthenticatedBeacon>, VerifyError> {
        // Check 1: the interval index must correspond to the current time
        // interval (counters replay of old beacons).
        let current = self.schedule.interval_at(now_us);
        if current != Some(auth.interval as usize) {
            return Err(VerifyError::WrongInterval {
                claimed: auth.interval,
                current: current.map(|c| c as u32),
            });
        }

        // Check 2: validate the disclosed key h^{n-j+1} — the key of
        // interval j-1. Against the cached element when possible (O(Δj)
        // hashes), else against the anchor (O(j) hashes).
        let key_interval = auth.interval - 1; // disclosed key belongs to interval j-1
        let valid = match self.cached_key {
            Some((cached_interval, cached)) if key_interval >= cached_interval => {
                let distance = (key_interval - cached_interval) as usize;
                if distance == 0 {
                    auth.disclosed == cached
                } else {
                    chain_step_n(&auth.disclosed, distance) == cached
                }
            }
            _ => {
                // key of interval (j-1) is h^{n-(j-1)} = h^{n-j+1};
                // hashing it (j-1) times yields h^n = anchor.
                chain_step_n(&auth.disclosed, key_interval as usize) == self.anchor
            }
        };
        if !valid {
            return Err(VerifyError::BadDisclosedKey);
        }
        if key_interval >= 1 {
            self.cached_key = Some((key_interval, auth.disclosed));
        }

        // Check 3: authenticate the buffered beacon from interval j-1 with
        // the now-validated key.
        let released = match self.pending.take() {
            Some((pj, ppayload, pmac)) if pj == key_interval => {
                let expect = hmac_sha256_128(&auth.disclosed, &mac_message(&ppayload, pj));
                if mac_eq(&expect, &pmac) {
                    Some(AuthenticatedBeacon {
                        interval: pj,
                        payload: ppayload,
                    })
                } else {
                    // Buffer the fresh beacon before reporting: the forged
                    // previous beacon must not block future progress.
                    self.pending = Some((auth.interval, payload.to_vec(), auth.mac));
                    return Err(VerifyError::PreviousBeaconForged);
                }
            }
            // Missed or absent previous beacon: nothing to release.
            _ => None,
        };

        self.pending = Some((auth.interval, payload.to_vec(), auth.mac));
        Ok(released)
    }

    /// The receiver's current cached authenticated chain element, if any.
    pub fn cached_key(&self) -> Option<(u32, ChainElement)> {
        self.cached_key
    }

    /// Whether a beacon is buffered awaiting authentication.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BP: f64 = 100_000.0; // 0.1 s in µs

    fn schedule(n: usize) -> IntervalSchedule {
        IntervalSchedule::new(0.0, BP, n)
    }

    fn seed(b: u8) -> ChainElement {
        [b; 16]
    }

    #[test]
    fn interval_windows() {
        let s = schedule(100);
        // Interval j is centred on j*BP.
        assert_eq!(s.interval_at(100_000.0), Some(1));
        assert_eq!(s.interval_at(100_000.0 - BP / 2.0 + 1.0), Some(1));
        assert_eq!(s.interval_at(100_000.0 + BP / 2.0 - 1.0), Some(1));
        assert_eq!(s.interval_at(150_001.0), Some(2));
        assert_eq!(s.interval_at(0.0), None); // before interval 1's window
        assert_eq!(s.interval_at(100.0 * BP), Some(100));
        assert_eq!(s.interval_at(101.0 * BP), None); // past the chain
    }

    #[test]
    fn expected_emission_times() {
        let s = IntervalSchedule::new(500.0, BP, 10);
        assert_eq!(s.expected_emission_us(3), 500.0 + 3.0 * BP);
    }

    #[test]
    fn sign_then_verify_chain_of_beacons() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(1), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let mut released = Vec::new();
        for j in 1..=10usize {
            let payload = format!("beacon-{j}").into_bytes();
            let auth = signer.sign(&payload, j);
            let now = sched.expected_emission_us(j) + 7.0;
            let out = verifier.observe(&payload, &auth, now).expect("valid beacon");
            if let Some(b) = out {
                released.push(b);
            }
        }
        // Beacons 1..=9 are authenticated (each released by its successor).
        assert_eq!(released.len(), 9);
        for (i, b) in released.iter().enumerate() {
            assert_eq!(b.interval as usize, i + 1);
            assert_eq!(b.payload, format!("beacon-{}", i + 1).into_bytes());
        }
        assert!(verifier.has_pending());
    }

    #[test]
    fn replayed_beacon_rejected_by_interval_check() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(2), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let auth = signer.sign(b"old", 3);
        // Replay interval-3 beacon during interval 7.
        let err = verifier
            .observe(b"old", &auth, sched.expected_emission_us(7))
            .unwrap_err();
        assert_eq!(
            err,
            VerifyError::WrongInterval {
                claimed: 3,
                current: Some(7)
            }
        );
    }

    #[test]
    fn forged_disclosed_key_rejected() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(3), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let mut auth = signer.sign(b"x", 4);
        auth.disclosed[0] ^= 0x01;
        let err = verifier
            .observe(b"x", &auth, sched.expected_emission_us(4))
            .unwrap_err();
        assert_eq!(err, VerifyError::BadDisclosedKey);
    }

    #[test]
    fn external_forger_cannot_authenticate_payload() {
        // Attacker without the chain fabricates a beacon for the current
        // interval reusing a previously disclosed key (too late: that key's
        // interval has passed) — it has no valid key for the current one.
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(4), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        // Legitimate beacons for intervals 1 and 2 observed.
        for j in 1..=2 {
            let p = vec![j as u8];
            let auth = signer.sign(&p, j);
            verifier
                .observe(&p, &auth, sched.expected_emission_us(j))
                .unwrap();
        }
        // Attacker saw the key of interval 1 (disclosed in beacon 2) and
        // forges an interval-3 beacon MACed with it; it must supply a
        // disclosed key for interval 2 — it has none, so it re-discloses
        // interval 1's key. Receiver sees a key that doesn't verify as
        // interval 2's key.
        let key1 = signer.sign(&[0], 2).disclosed; // h^{n-1}: interval-1 key
        let forged_payload = b"evil".to_vec();
        let mut msg = forged_payload.clone();
        msg.extend_from_slice(&3u32.to_le_bytes());
        let forged = BeaconAuth {
            interval: 3,
            mac: hmac_sha256_128(&key1, &msg),
            disclosed: key1,
        };
        let err = verifier
            .observe(&forged_payload, &forged, sched.expected_emission_us(3))
            .unwrap_err();
        assert_eq!(err, VerifyError::BadDisclosedKey);
    }

    #[test]
    fn tampered_previous_beacon_detected() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(5), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        // Interval 1: attacker tampers the payload in flight (MAC no longer
        // matches).
        let auth1 = signer.sign(b"genuine", 1);
        verifier
            .observe(b"tampered", &auth1, sched.expected_emission_us(1))
            .unwrap();
        // Interval 2 discloses interval 1's key; verification must flag the
        // buffered beacon as forged.
        let auth2 = signer.sign(b"second", 2);
        let err = verifier
            .observe(b"second", &auth2, sched.expected_emission_us(2))
            .unwrap_err();
        assert_eq!(err, VerifyError::PreviousBeaconForged);
        // Progress continues: interval 3 releases beacon 2.
        let auth3 = signer.sign(b"third", 3);
        let out = verifier
            .observe(b"third", &auth3, sched.expected_emission_us(3))
            .unwrap();
        assert_eq!(
            out,
            Some(AuthenticatedBeacon {
                interval: 2,
                payload: b"second".to_vec()
            })
        );
    }

    #[test]
    fn missed_beacons_do_not_break_verification() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(6), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        // Receive beacon 1, miss 2-4, receive 5: key check must still pass
        // (distance > 1 from cached element) and beacon 1 cannot be
        // released (its key came in beacon 2, which was lost) — but beacon 5
        // buffers fine and beacon 6 releases it.
        let p1 = b"one".to_vec();
        let a1 = signer.sign(&p1, 1);
        verifier
            .observe(&p1, &a1, sched.expected_emission_us(1))
            .unwrap();

        let p5 = b"five".to_vec();
        let a5 = signer.sign(&p5, 5);
        let out = verifier
            .observe(&p5, &a5, sched.expected_emission_us(5))
            .unwrap();
        assert_eq!(out, None, "beacon 1's window passed unauthenticated");

        let p6 = b"six".to_vec();
        let a6 = signer.sign(&p6, 6);
        let out = verifier
            .observe(&p6, &a6, sched.expected_emission_us(6))
            .unwrap();
        assert_eq!(
            out,
            Some(AuthenticatedBeacon {
                interval: 5,
                payload: p5
            })
        );
    }

    #[test]
    fn cached_key_reduces_to_single_step() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(7), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);
        for j in 1..=3usize {
            let p = vec![j as u8];
            let auth = signer.sign(&p, j);
            verifier
                .observe(&p, &auth, sched.expected_emission_us(j))
                .unwrap();
        }
        let (ki, _) = verifier.cached_key().unwrap();
        assert_eq!(ki, 2, "cache holds the key of interval j-1 = 2");
    }

    #[test]
    fn verifier_state_unchanged_on_rejection() {
        let sched = schedule(50);
        let signer = MuTeslaSigner::new(seed(8), sched);
        let mut verifier = MuTeslaVerifier::new(signer.anchor(), sched);

        let p1 = b"one".to_vec();
        let a1 = signer.sign(&p1, 1);
        verifier
            .observe(&p1, &a1, sched.expected_emission_us(1))
            .unwrap();

        // Forged key at interval 2: rejection must not clobber pending.
        let mut bad = signer.sign(b"evil", 2);
        bad.disclosed = [0xde; 16];
        let _ = verifier
            .observe(b"evil", &bad, sched.expected_emission_us(2))
            .unwrap_err();
        assert!(verifier.has_pending());

        // Genuine interval-2 beacon still releases beacon 1.
        let p2 = b"two".to_vec();
        let a2 = signer.sign(&p2, 2);
        let out = verifier
            .observe(&p2, &a2, sched.expected_emission_us(2))
            .unwrap();
        assert_eq!(out.unwrap().payload, p1);
    }
}
