//! Property tests for the window-resolution models.

use proptest::prelude::*;
use wireless::{resolve_multihop, Channel, MhAttempt, Topology, TxAttempt, WindowOutcome};

fn attempts_strategy(max_station: u32) -> impl Strategy<Value = Vec<TxAttempt>> {
    proptest::collection::vec(
        (0..max_station, 0u32..31).prop_map(|(station, slot)| TxAttempt { station, slot }),
        0..12,
    )
    .prop_map(|mut v| {
        // One attempt per station.
        v.sort_by_key(|a| a.station);
        v.dedup_by_key(|a| a.station);
        v
    })
}

proptest! {
    /// Single-hop invariants: the winner (if any) owns the strictly
    /// earliest slot; collisions happen exactly when the earliest slot is
    /// shared; silence exactly when nobody attempts.
    #[test]
    fn single_hop_window_invariants(attempts in attempts_strategy(32)) {
        let ch = Channel::lossless();
        match ch.resolve_window(&attempts) {
            WindowOutcome::Silent => prop_assert!(attempts.is_empty()),
            WindowOutcome::Success { winner, slot } => {
                let min = attempts.iter().map(|a| a.slot).min().unwrap();
                prop_assert_eq!(slot, min);
                prop_assert_eq!(
                    attempts.iter().filter(|a| a.slot == min).count(), 1);
                prop_assert!(attempts.iter().any(|a| a.station == winner && a.slot == min));
            }
            WindowOutcome::Collision { slot, colliders } => {
                let min = attempts.iter().map(|a| a.slot).min().unwrap();
                prop_assert_eq!(slot, min);
                prop_assert!(colliders.len() >= 2);
                let expect: Vec<u32> = {
                    let mut v: Vec<u32> = attempts
                        .iter()
                        .filter(|a| a.slot == min)
                        .map(|a| a.station)
                        .collect();
                    v.sort_unstable();
                    v
                };
                prop_assert_eq!(colliders, expect);
            }
            WindowOutcome::Jammed { .. } => prop_assert!(false, "not jammed"),
        }
    }

    /// On the full graph, multi-hop resolution agrees with the single-hop
    /// channel about who gets a beacon out first.
    #[test]
    fn multihop_on_full_graph_matches_single_hop(attempts in attempts_strategy(10)) {
        let n = 10;
        let topo = Topology::full(n);
        let mh: Vec<MhAttempt> = attempts
            .iter()
            .map(|a| MhAttempt { station: a.station, slot: a.slot, relay: false })
            .collect();
        let out = resolve_multihop(&topo, &mh, 7);
        match Channel::lossless().resolve_window(&attempts) {
            WindowOutcome::Silent => prop_assert!(out.transmissions.is_empty()),
            WindowOutcome::Success { winner, slot } => {
                // The single-hop winner transmits first; later
                // transmissions are possible in the multi-hop model only if
                // non-overlapping, and every receiver decodes the winner.
                prop_assert_eq!(out.transmissions[0], (winner, slot));
                let decoders = out
                    .deliveries
                    .iter()
                    .filter(|d| d.tx == winner)
                    .count() as u32;
                prop_assert_eq!(decoders, n - 1);
            }
            WindowOutcome::Collision { slot, colliders } => {
                // All earliest-slot stations transmit and garble each other:
                // nobody decodes any of them.
                for c in &colliders {
                    prop_assert!(out.transmissions.contains(&(*c, slot)));
                    prop_assert!(out.deliveries.iter().all(|d| d.tx != *c));
                }
            }
            WindowOutcome::Jammed { .. } => prop_assert!(false),
        }
    }

    /// Multi-hop sanity on random connected unit-disk graphs: transmitters
    /// never overlap in time with a *heard* transmission they started after
    /// (carrier sense), and deliveries only cross edges of the graph.
    #[test]
    fn multihop_respects_topology_and_carrier_sense(
        seed in any::<u64>(),
        raw in proptest::collection::vec((0u32..20, 0u32..31, any::<bool>()), 0..16),
    ) {
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let topo = Topology::random_disk(20, 100.0, 45.0, &mut rng);
        let mut attempts: Vec<MhAttempt> = raw
            .into_iter()
            .map(|(station, slot, relay)| MhAttempt { station, slot, relay })
            .collect();
        attempts.sort_by_key(|a| a.station);
        attempts.dedup_by_key(|a| a.station);

        let airtime = 7;
        let out = resolve_multihop(&topo, &attempts, airtime);

        for d in &out.deliveries {
            prop_assert!(topo.are_neighbors(d.rx, d.tx), "delivery across non-edge");
        }
        // No non-relay transmitter starts strictly after a neighbor it can
        // hear already started.
        for &(u, su) in &out.transmissions {
            let is_relay = attempts.iter().find(|a| a.station == u).unwrap().relay;
            if is_relay {
                continue;
            }
            for &(v, sv) in &out.transmissions {
                if u != v && topo.are_neighbors(u, v) {
                    prop_assert!(sv >= su, "non-relay {u}@{su} ignored earlier {v}@{sv}");
                }
            }
        }
    }
}
