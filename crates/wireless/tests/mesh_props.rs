//! Property tests for the mesh-topology layer: generator invariants,
//! seeded reproducibility, domain-decomposition coverage, and the
//! differential pin `resolve_mesh == resolve_multihop`.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use wireless::{
    resolve_mesh, resolve_multihop, DomainDecomposition, DomainOrder, MeshResolver, MhAttempt,
    Topology,
};

/// Symmetric (j ∈ adj(i) ⇔ i ∈ adj(j)) and irreflexive (i ∉ adj(i)).
fn assert_symmetric_irreflexive(t: &Topology) {
    for i in 0..t.len() {
        prop_assert!(!t.are_neighbors(i, i), "self-loop at {i}");
        for &j in t.neighbors(i) {
            prop_assert!(j < t.len(), "neighbor {j} out of range");
            prop_assert!(t.are_neighbors(j, i), "asymmetric edge {i}-{j}");
        }
    }
}

/// Identical adjacency structure.
fn same_graph(a: &Topology, b: &Topology) -> bool {
    a.len() == b.len() && (0..a.len()).all(|i| a.neighbors(i) == b.neighbors(i))
}

/// Partition covers every station exactly once; every edge is inside one
/// domain or bridges exactly the two domains of its endpoints.
fn assert_valid_decomposition(t: &Topology, d: &DomainDecomposition) {
    let mut seen = vec![0u32; t.len() as usize];
    for (idx, members) in d.domains.iter().enumerate() {
        prop_assert!(!members.is_empty(), "empty domain {idx}");
        for &m in members {
            seen[m as usize] += 1;
            prop_assert_eq!(d.domain_of(m), idx as u32);
        }
    }
    prop_assert!(
        seen.iter().all(|&c| c == 1),
        "decomposition is not a partition"
    );
    for i in 0..t.len() {
        for &j in t.neighbors(i) {
            // An edge touches the domains of its two endpoints and no
            // others: either inside one domain or bridging exactly two.
            let di = d.domain_of(i);
            let dj = d.domain_of(j);
            let touched = if di == dj { 1 } else { 2 };
            prop_assert!(touched <= 2, "edge {i}-{j} spans too many domains");
        }
    }
}

proptest! {
    /// Every generator yields a symmetric, irreflexive graph.
    #[test]
    fn generators_are_symmetric_and_irreflexive(
        seed in any::<u64>(),
        cols in 1u32..6,
        rows in 1u32..6,
        ring_n in 3u32..40,
        domains in 2u32..5,
    ) {
        assert_symmetric_irreflexive(&Topology::grid(cols, rows));
        assert_symmetric_irreflexive(&Topology::ring(ring_n));
        let (mesh, _) = Topology::bridged(domains, cols, rows);
        assert_symmetric_irreflexive(&mesh);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        if let Some(t) = Topology::try_random_disk(16, 100.0, 45.0, &mut rng, 16) {
            assert_symmetric_irreflexive(&t);
        }
    }

    /// Seeded generators are reproducible: same seed, same graph.
    #[test]
    fn seeded_generators_reproduce(seed in any::<u64>()) {
        let gen = |s: u64| {
            let mut rng = ChaCha12Rng::seed_from_u64(s);
            Topology::try_random_disk(20, 100.0, 45.0, &mut rng, 32)
        };
        match (gen(seed), gen(seed)) {
            (Some(a), Some(b)) => prop_assert!(same_graph(&a, &b), "same seed, different graph"),
            (None, None) => {}
            _ => prop_assert!(false, "same seed, different rejection outcome"),
        }
    }

    /// Random geometric graphs are connected, or the draw is explicitly
    /// rejected (`None`) — a disconnected graph is never returned.
    #[test]
    fn random_disk_connected_or_rejected(seed in any::<u64>(), n in 4u32..24) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        // A deliberately tight range so both outcomes occur across seeds.
        if let Some(t) = Topology::try_random_disk(n, 100.0, 38.0, &mut rng, 4) {
            prop_assert!(t.is_connected(), "accepted draw must be connected");
        }
    }

    /// Clique decomposition of an arbitrary connected mesh: partition
    /// covers all nodes, every domain is a clique, every edge inside or
    /// bridging exactly two domains.
    #[test]
    fn clique_decomposition_covers_random_meshes(seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let t = Topology::random_disk(20, 100.0, 45.0, &mut rng);
        let d = t.clique_domains();
        assert_valid_decomposition(&t, &d);
        for members in &d.domains {
            for &a in members {
                for &b in members {
                    prop_assert!(a == b || t.are_neighbors(a, b), "domain is not a clique");
                }
            }
        }
    }

    /// The bridged generator's ground-truth decomposition is valid, its
    /// bridge set is exactly the appended gateway stations, and every
    /// bridge can hear both adjacent islands in full.
    #[test]
    fn bridged_decomposition_ground_truth(
        domains in 2u32..5,
        cols in 1u32..4,
        rows in 1u32..4,
    ) {
        let (t, d) = Topology::bridged(domains, cols, rows);
        assert_valid_decomposition(&t, &d);
        let island = cols * rows;
        let expected: Vec<u32> = (0..domains - 1).map(|j| domains * island + j).collect();
        prop_assert_eq!(&d.bridges, &expected);
        for (j, &b) in d.bridges.iter().enumerate() {
            for k in [j as u32, j as u32 + 1] {
                for i in k * island..(k + 1) * island {
                    prop_assert!(t.are_neighbors(b, i), "bridge {b} cannot hear {i}");
                }
            }
        }
        prop_assert!(t.is_connected());
    }

    /// Differential pin: per-domain window resolution agrees with the
    /// naive O(n²) global reference on randomized meshes (n ≤ 32), for
    /// both the clique decomposition and a degenerate per-node partition.
    #[test]
    fn mesh_resolution_matches_naive_reference(
        seed in any::<u64>(),
        n in 8u32..=32,
        raw in proptest::collection::vec((0u32..32, 0u32..31, any::<bool>()), 0..24),
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let t = Topology::random_disk(n, 100.0, 52.0, &mut rng);
        let mut attempts: Vec<MhAttempt> = raw
            .into_iter()
            .filter(|&(station, _, _)| station < n)
            .map(|(station, slot, relay)| MhAttempt { station, slot, relay })
            .collect();
        attempts.sort_by_key(|a| a.station);
        attempts.dedup_by_key(|a| a.station);

        let airtime = 7;
        let reference = resolve_multihop(&t, &attempts, airtime);
        let cliques = t.clique_domains();
        prop_assert_eq!(resolve_mesh(&t, &cliques, &attempts, airtime), reference.clone());
        let per_node =
            DomainDecomposition::from_partition((0..n).map(|i| vec![i]).collect(), &t);
        prop_assert_eq!(resolve_mesh(&t, &per_node, &attempts, airtime), reference);
    }

    /// The domain-major permutation round-trips node ids for arbitrary
    /// decompositions: `id_at(pos_of(id)) == id` and `pos_of(id_at(p)) == p`
    /// for every station/position, each domain's contiguous slice equals
    /// the decomposition's member list, and the ranges tile `0..n` exactly.
    #[test]
    fn domain_order_round_trips_arbitrary_decompositions(
        seed in any::<u64>(),
        n in 2u32..=32,
        assignment in proptest::collection::vec(0u32..6, 32..33),
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let t = Topology::random_disk(n, 100.0, 52.0, &mut rng);
        // An arbitrary partition: group stations by their drawn label,
        // dropping empty groups (from_partition rejects those).
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); 6];
        for i in 0..n {
            groups[assignment[i as usize] as usize].push(i);
        }
        groups.retain(|g| !g.is_empty());
        let d = DomainDecomposition::from_partition(groups, &t);
        let order = DomainOrder::new(&d);

        prop_assert_eq!(order.num_domains(), d.len());
        prop_assert_eq!(order.perm().len(), n as usize);
        for id in 0..n {
            prop_assert_eq!(order.id_at(order.pos_of(id)), id);
        }
        for pos in 0..n {
            prop_assert_eq!(order.pos_of(order.id_at(pos)), pos);
        }
        let mut next = 0u32;
        for (di, members) in d.domains.iter().enumerate() {
            prop_assert_eq!(order.members(di), members.as_slice());
            for &id in members {
                prop_assert_eq!(order.pos_of(id), next);
                next += 1;
            }
        }
        prop_assert_eq!(next, n);
    }

    /// The reusable resolver is bit-identical to `resolve_mesh` on
    /// randomized meshes and clique decompositions, including across
    /// repeated windows through one resolver instance.
    #[test]
    fn mesh_resolver_matches_resolve_mesh_on_random_meshes(
        seed in any::<u64>(),
        n in 8u32..=32,
        raw in proptest::collection::vec((0u32..32, 0u32..31, any::<bool>()), 0..24),
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let t = Topology::random_disk(n, 100.0, 52.0, &mut rng);
        let mut attempts: Vec<MhAttempt> = raw
            .into_iter()
            .filter(|&(station, _, _)| station < n)
            .map(|(station, slot, relay)| MhAttempt { station, slot, relay })
            .collect();
        attempts.sort_by_key(|a| a.station);
        attempts.dedup_by_key(|a| a.station);

        let airtime = 7;
        let cliques = t.clique_domains();
        let mut resolver = MeshResolver::new(&t, &cliques);
        // Two windows: full attempt set, then a prefix — the second call
        // must not see residue from the first.
        prop_assert_eq!(
            resolver.resolve(&t, &attempts, airtime),
            &resolve_mesh(&t, &cliques, &attempts, airtime)
        );
        let half = &attempts[..attempts.len() / 2];
        prop_assert_eq!(
            resolver.resolve(&t, half, airtime),
            &resolve_mesh(&t, &cliques, half, airtime)
        );
    }

    /// The same differential pin on the explicit bridged union the engine
    /// runs, with relay attempts at the gateways.
    #[test]
    fn mesh_resolution_matches_reference_on_bridged(
        domains in 2u32..4,
        cols in 1u32..4,
        rows in 1u32..4,
        raw in proptest::collection::vec((0u32..40, 0u32..31), 0..20),
    ) {
        let (t, d) = Topology::bridged(domains, cols, rows);
        let n = t.len();
        let mut attempts: Vec<MhAttempt> = raw
            .into_iter()
            .filter(|&(station, _)| station < n)
            .map(|(station, slot)| MhAttempt {
                station,
                slot,
                relay: d.is_bridge(station),
            })
            .collect();
        attempts.sort_by_key(|a| a.station);
        attempts.dedup_by_key(|a| a.station);

        let airtime = 7;
        prop_assert_eq!(
            resolve_mesh(&t, &d, &attempts, airtime),
            resolve_multihop(&t, &attempts, airtime)
        );
    }
}
