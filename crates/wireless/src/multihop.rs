//! Multi-hop beacon-window resolution with carrier sensing and hidden
//! terminals.
//!
//! The single-hop model ([`crate::Channel`]) can decide the whole window
//! from the earliest occupied slot because everyone hears everyone. In a
//! multi-hop graph three effects appear that the resolution must model:
//!
//! * **local carrier sense** — a station defers only to transmissions it
//!   can hear (a neighbor that started earlier);
//! * **hidden terminals** — two transmitters out of each other's range can
//!   overlap in time and garble a receiver in range of both;
//! * **sequential reuse** — transmissions far enough apart in time (or in
//!   space) can both be decoded in the same window, which is what lets
//!   relays forward a beacon within one beacon period.
//!
//! With the full graph this resolution degenerates exactly to the
//! single-hop rules (verified by a test below).

use crate::topology::{DomainDecomposition, DomainOrder, Topology};
use serde::{Deserialize, Serialize};

/// A station's declared behaviour in a multi-hop beacon window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MhAttempt {
    /// Station id.
    pub station: u32,
    /// Slot the delay timer expires in.
    pub slot: u32,
    /// Relay attempt: a forwarding transmission. Unlike contention
    /// attempts it does **not** cancel-on-hear (hearing upstream traffic is
    /// the point); it defers only while the channel is busy at its slot.
    pub relay: bool,
}

/// One successful beacon decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhDelivery {
    /// Receiving station.
    pub rx: u32,
    /// Transmitting station.
    pub tx: u32,
    /// Slot the transmission started in.
    pub slot: u32,
}

/// Resolved multi-hop window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhOutcome {
    /// Stations that actually transmitted, with their start slots,
    /// slot-ordered.
    pub transmissions: Vec<(u32, u32)>,
    /// Successful decodes, ordered by start slot then receiver id.
    pub deliveries: Vec<MhDelivery>,
}

/// Whether intervals `[a, a+len)` and `[b, b+len)` overlap.
#[inline]
fn overlaps(a: u32, b: u32, len: u32) -> bool {
    a < b + len && b < a + len
}

/// Resolve one beacon window on `topology`, with beacons lasting
/// `airtime_slots` slots.
///
/// Rules, applied in slot order:
///
/// 1. a non-relay attempt transmits unless a *neighbor* started a
///    transmission in a strictly earlier slot (cancel-on-hear);
/// 2. a relay attempt does not cancel-on-hear; it defers only if a heard
///    transmission is still on the air at its slot (channel busy);
/// 3. a receiver decodes a neighbor's transmission iff no other heard
///    transmission overlaps it in time and the receiver itself was not
///    transmitting an overlapping interval (half-duplex).
pub fn resolve_multihop(
    topology: &Topology,
    attempts: &[MhAttempt],
    airtime_slots: u32,
) -> MhOutcome {
    assert!(airtime_slots > 0, "beacons occupy at least one slot");
    let mut sorted: Vec<MhAttempt> = attempts.to_vec();
    sorted.sort_by_key(|a| (a.slot, a.station));

    // Decided transmissions (station, start slot), in slot order.
    let mut txs: Vec<(u32, u32)> = Vec::new();

    let hears_earlier = |txs: &[(u32, u32)], station: u32, slot: u32| {
        txs.iter()
            .any(|&(u, s)| s < slot && topology.are_neighbors(station, u))
    };
    // A relay does not cancel-on-hear; it defers only while the channel is
    // busy at its slot.
    let busy_at = |txs: &[(u32, u32)], station: u32, slot: u32| {
        txs.iter().any(|&(u, s)| {
            topology.are_neighbors(station, u) && s <= slot && slot < s + airtime_slots
        })
    };

    for a in &sorted {
        if a.relay {
            if busy_at(&txs, a.station, a.slot) {
                continue;
            }
        } else if hears_earlier(&txs, a.station, a.slot) {
            continue; // cancel-on-hear
        }
        txs.push((a.station, a.slot));
    }

    // Deliveries.
    let mut deliveries = Vec::new();
    for rx in 0..topology.len() {
        deliveries_for_rx(topology, rx, &txs, airtime_slots, &mut deliveries);
    }
    deliveries.sort_by_key(|d| (d.slot, d.rx));

    MhOutcome {
        transmissions: txs,
        deliveries,
    }
}

/// Apply rule 3 (decode iff heard, not half-duplex-blocked, not garbled)
/// for one receiver against a decided-transmission list, appending any
/// decodes to `out`. `txs` must contain every transmission audible at
/// `rx` (extra inaudible entries are harmless — each check is gated on
/// `are_neighbors`).
fn deliveries_for_rx(
    topology: &Topology,
    rx: u32,
    txs: &[(u32, u32)],
    airtime_slots: u32,
    out: &mut Vec<MhDelivery>,
) {
    let own_tx: Option<u32> = txs.iter().find(|&&(u, _)| u == rx).map(|&(_, s)| s);
    for &(tx, s) in txs {
        if tx == rx || !topology.are_neighbors(rx, tx) {
            continue;
        }
        // Half-duplex: own transmission overlapping the interval.
        if let Some(os) = own_tx {
            if overlaps(s, os, airtime_slots) {
                continue;
            }
        }
        // Any other heard transmission overlapping the interval.
        let garbled = txs.iter().any(|&(v, s2)| {
            v != tx && v != rx && topology.are_neighbors(rx, v) && overlaps(s, s2, airtime_slots)
        });
        if !garbled {
            out.push(MhDelivery { rx, tx, slot: s });
        }
    }
}

/// Resolve one beacon window per collision domain.
///
/// Same decision rules as [`resolve_multihop`], but the work is bucketed
/// by `decomp`: each decided transmission is published only into the
/// domains that can hear it (the transmitter's own domain plus every
/// domain holding one of its neighbors), the carrier-sense checks for a
/// station consult only its home domain's bucket, and rule 3 runs per
/// domain over that domain's members against its bucket. Because every
/// predicate in [`resolve_multihop`] is gated on `are_neighbors`, and a
/// station's home bucket contains every decided transmission of its
/// neighbors (a neighbor `u` of `s` always publishes into
/// `domain_of(s)`), the outcome is **bit-identical to
/// [`resolve_multihop`] for any partition** — the decomposition only
/// shrinks the candidate sets, never the audible ones. A differential
/// proptest pins this.
///
/// # Panics
/// Panics if `decomp` does not cover exactly `topology.len()` stations.
pub fn resolve_mesh(
    topology: &Topology,
    decomp: &DomainDecomposition,
    attempts: &[MhAttempt],
    airtime_slots: u32,
) -> MhOutcome {
    assert!(airtime_slots > 0, "beacons occupy at least one slot");
    assert_eq!(
        decomp.domain_of.len(),
        topology.len() as usize,
        "decomposition does not match the topology"
    );
    let mut sorted: Vec<MhAttempt> = attempts.to_vec();
    sorted.sort_by_key(|a| (a.slot, a.station));

    // Global decision order (the output), plus the per-domain audible
    // buckets the decisions and deliveries actually consult.
    let mut txs: Vec<(u32, u32)> = Vec::new();
    let mut by_domain: Vec<Vec<(u32, u32)>> = vec![Vec::new(); decomp.len()];
    let mut doms_scratch: Vec<u32> = Vec::new();

    for a in &sorted {
        let home = &by_domain[decomp.domain_of(a.station) as usize];
        let blocked = if a.relay {
            home.iter().any(|&(u, s)| {
                topology.are_neighbors(a.station, u) && s <= a.slot && a.slot < s + airtime_slots
            })
        } else {
            home.iter()
                .any(|&(u, s)| s < a.slot && topology.are_neighbors(a.station, u))
        };
        if blocked {
            continue;
        }
        txs.push((a.station, a.slot));
        doms_scratch.clear();
        doms_scratch.push(decomp.domain_of(a.station));
        doms_scratch.extend(
            topology
                .neighbors(a.station)
                .iter()
                .map(|&v| decomp.domain_of(v)),
        );
        doms_scratch.sort_unstable();
        doms_scratch.dedup();
        for &d in &doms_scratch {
            by_domain[d as usize].push((a.station, a.slot));
        }
    }

    let mut deliveries = Vec::new();
    for (d, members) in decomp.domains.iter().enumerate() {
        let local = &by_domain[d];
        for &rx in members {
            deliveries_for_rx(topology, rx, local, airtime_slots, &mut deliveries);
        }
    }
    deliveries.sort_by_key(|d| (d.slot, d.rx));

    MhOutcome {
        transmissions: txs,
        deliveries,
    }
}

/// Allocation-free per-domain window resolver: [`resolve_mesh`] with every
/// buffer reused across windows and the per-transmission audible-domain
/// sets (home domain + neighbors' domains, sorted and deduped — invariant
/// over a run) precomputed once. Decision rules, orders, and outputs are
/// **bit-identical to [`resolve_mesh`]** — differential tests pin this —
/// so the engine's fast path can call it every beacon period without
/// perturbing goldens or allocating.
///
/// Deliveries are produced domain-by-domain over the contiguous ranges of
/// a domain-major [`DomainOrder`] (members ascending within a domain,
/// identical to the decomposition's member lists, so the output order
/// matches [`resolve_mesh`] exactly).
pub struct MeshResolver {
    order: DomainOrder,
    /// Station id → home-domain index.
    home: Vec<u32>,
    /// Concatenated per-station audible-domain lists.
    audible: Vec<u32>,
    /// Station id → `(start, end)` range into [`audible`](Self::audible).
    audible_ranges: Vec<(u32, u32)>,
    sorted: Vec<MhAttempt>,
    by_domain: Vec<Vec<(u32, u32)>>,
    /// Station id → bitmask over the home bucket: bit `i` set iff the
    /// station hears bucket transmission `i`. Rebuilt (cleared + scattered
    /// from each transmitter's adjacency list) per domain per window.
    hear: Vec<u64>,
    /// Deliveries bucketed by slot during generation (grown lazily to the
    /// highest slot seen, reused across windows). Concatenating the
    /// buckets in slot order after a stable per-bucket sort by receiver
    /// reproduces `resolve_mesh`'s stable `(slot, rx)` sort at a fraction
    /// of the cost: each bucket is a concatenation of per-domain
    /// receiver-ascending runs, which the adaptive stable sort merges in
    /// near-linear time.
    per_slot: Vec<Vec<MhDelivery>>,
    /// Fallback staging for over-wide buckets (shares `per_slot` routing).
    spill: Vec<MhDelivery>,
    out: MhOutcome,
}

impl MeshResolver {
    /// Build a resolver for one `(topology, decomposition)` pair.
    ///
    /// # Panics
    /// Panics if `decomp` does not cover exactly `topology.len()` stations.
    pub fn new(topology: &Topology, decomp: &DomainDecomposition) -> Self {
        assert_eq!(
            decomp.domain_of.len(),
            topology.len() as usize,
            "decomposition does not match the topology"
        );
        let mut audible = Vec::new();
        let mut audible_ranges = Vec::with_capacity(topology.len() as usize);
        let mut doms: Vec<u32> = Vec::new();
        for s in 0..topology.len() {
            doms.clear();
            doms.push(decomp.domain_of(s));
            doms.extend(topology.neighbors(s).iter().map(|&v| decomp.domain_of(v)));
            doms.sort_unstable();
            doms.dedup();
            let start = audible.len() as u32;
            audible.extend_from_slice(&doms);
            audible_ranges.push((start, audible.len() as u32));
        }
        MeshResolver {
            order: DomainOrder::new(decomp),
            home: decomp.domain_of.clone(),
            audible,
            audible_ranges,
            sorted: Vec::new(),
            by_domain: vec![Vec::new(); decomp.len()],
            hear: vec![0; topology.len() as usize],
            per_slot: Vec::new(),
            spill: Vec::new(),
            out: MhOutcome {
                transmissions: Vec::new(),
                deliveries: Vec::new(),
            },
        }
    }

    /// The domain-major order the resolver iterates deliveries in.
    pub fn order(&self) -> &DomainOrder {
        &self.order
    }

    /// Resolve one beacon window; the returned outcome is valid until the
    /// next call. `topology` must be the one the resolver was built for.
    pub fn resolve(
        &mut self,
        topology: &Topology,
        attempts: &[MhAttempt],
        airtime_slots: u32,
    ) -> &MhOutcome {
        assert!(airtime_slots > 0, "beacons occupy at least one slot");
        self.sorted.clear();
        self.sorted.extend_from_slice(attempts);
        self.sorted.sort_by_key(|a| (a.slot, a.station));
        self.out.transmissions.clear();
        self.out.deliveries.clear();
        for bucket in &mut self.by_domain {
            bucket.clear();
        }

        for a in &self.sorted {
            let home = &self.by_domain[self.home[a.station as usize] as usize];
            let blocked = if a.relay {
                home.iter().any(|&(u, s)| {
                    topology.are_neighbors(a.station, u)
                        && s <= a.slot
                        && a.slot < s + airtime_slots
                })
            } else {
                home.iter()
                    .any(|&(u, s)| s < a.slot && topology.are_neighbors(a.station, u))
            };
            if blocked {
                continue;
            }
            self.out.transmissions.push((a.station, a.slot));
            let (start, end) = self.audible_ranges[a.station as usize];
            for i in start..end {
                let d = self.audible[i as usize];
                self.by_domain[d as usize].push((a.station, a.slot));
            }
        }

        // Size the slot buckets to the widest slot decided this window.
        let max_slot = self
            .out
            .transmissions
            .iter()
            .map(|&(_, s)| s)
            .max()
            .unwrap_or(0) as usize;
        if self.per_slot.len() <= max_slot {
            self.per_slot.resize_with(max_slot + 1, Vec::new);
        }

        for d in 0..self.order.num_domains() {
            let bucket = &self.by_domain[d];
            let members = self.order.members(d);
            if bucket.is_empty() {
                continue;
            }
            if bucket.len() > 64 {
                // Bucket too wide for the bitmask kernel (adversarial
                // attempt storms); fall back to the exact per-member scan,
                // routed through the same slot buckets.
                self.spill.clear();
                for &rx in members {
                    deliveries_for_rx(topology, rx, bucket, airtime_slots, &mut self.spill);
                }
                for &del in &self.spill {
                    self.per_slot[del.slot as usize].push(del);
                }
                continue;
            }

            // Bitmask delivery kernel, replacing the per-member
            // `are_neighbors` binary searches with one adjacency-list
            // scatter per bucket transmission. Bit `i` of `hear[rx]`
            // means rx is a neighbor of bucket tx `i` (bits for rx's own
            // transmissions can never be set — adjacency has no
            // self-loops — which encodes rule 3's `v != rx` exemption
            // for free). Decoding a member is then pure bit arithmetic;
            // ascending bit order equals bucket order, so deliveries are
            // pushed exactly as `deliveries_for_rx` would push them.
            for &rx in members {
                self.hear[rx as usize] = 0;
            }
            let mut garble = [0u64; 64];
            for (i, &(u, si)) in bucket.iter().enumerate() {
                let bit = 1u64 << i;
                for &v in topology.neighbors(u) {
                    if self.home[v as usize] as usize == d {
                        self.hear[v as usize] |= bit;
                    }
                }
                // Garble mask: every other-station transmission whose
                // airtime overlaps tx `i` (rule 3's `v != tx` is a
                // station-id comparison, so same-station duplicates are
                // excluded at any index).
                for (j, &(uj, sj)) in bucket.iter().enumerate() {
                    if uj != u && overlaps(si, sj, airtime_slots) {
                        garble[i] |= 1u64 << j;
                    }
                }
            }
            for &rx in members {
                let mask = self.hear[rx as usize];
                if mask == 0 {
                    continue;
                }
                // Half-duplex: first own transmission in the bucket, as
                // `deliveries_for_rx` finds it.
                let own: Option<u32> = bucket.iter().find(|&&(u, _)| u == rx).map(|&(_, s)| s);
                let mut m = mask;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (tx, s) = bucket[i];
                    if let Some(os) = own {
                        if overlaps(s, os, airtime_slots) {
                            continue;
                        }
                    }
                    if mask & garble[i] == 0 {
                        self.per_slot[s as usize].push(MhDelivery { rx, tx, slot: s });
                    }
                }
            }
        }
        for bucket in self.per_slot.iter_mut() {
            if bucket.is_empty() {
                continue;
            }
            bucket.sort_by_key(|d| d.rx);
            self.out.deliveries.extend_from_slice(bucket);
            bucket.clear();
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(station: u32, slot: u32) -> MhAttempt {
        MhAttempt {
            station,
            slot,
            relay: false,
        }
    }

    fn relay(station: u32, slot: u32) -> MhAttempt {
        MhAttempt {
            station,
            slot,
            relay: true,
        }
    }

    const A: u32 = 7; // secured beacon airtime in slots

    #[test]
    fn full_graph_matches_single_hop_semantics() {
        let t = Topology::full(5);
        // Earliest slot wins; later attempts cancel.
        let out = resolve_multihop(&t, &[plain(0, 3), plain(1, 1), plain(2, 9)], A);
        assert_eq!(out.transmissions, vec![(1, 1)]);
        assert_eq!(out.deliveries.len(), 4, "all others decode the winner");

        // Equal earliest slots collide: both transmit, nobody decodes.
        let out = resolve_multihop(&t, &[plain(0, 2), plain(1, 2), plain(2, 8)], A);
        assert_eq!(out.transmissions, vec![(0, 2), (1, 2)]);
        assert!(out.deliveries.is_empty());
    }

    #[test]
    fn hidden_terminals_garble_the_middle() {
        // 0 — 1 — 2: 0 and 2 cannot hear each other.
        let t = Topology::line(3);
        let out = resolve_multihop(&t, &[plain(0, 0), plain(2, 2)], A);
        // Both transmit (no carrier sense across two hops)...
        assert_eq!(out.transmissions, vec![(0, 0), (2, 2)]);
        // ...and station 1, hearing both overlapped, decodes neither.
        assert!(out.deliveries.is_empty());
    }

    #[test]
    fn spatial_reuse_decodes_both_ends() {
        // 0 — 1 — 2 — 3 — 4: 0 and 4 are far enough apart that their
        // transmissions coexist: 1 decodes 0, 3 decodes 4.
        let t = Topology::line(5);
        let out = resolve_multihop(&t, &[plain(0, 0), plain(4, 0)], A);
        assert_eq!(out.transmissions.len(), 2);
        assert_eq!(
            out.deliveries,
            vec![
                MhDelivery {
                    rx: 1,
                    tx: 0,
                    slot: 0
                },
                MhDelivery {
                    rx: 3,
                    tx: 4,
                    slot: 0
                },
            ]
        );
    }

    #[test]
    fn sequential_transmissions_both_decoded() {
        let t = Topology::full(3);
        // Station 2 would defer (hears station 0)... give it a relay-free
        // window: only station 0 at slot 0; station 1 decodes.
        let out = resolve_multihop(&t, &[plain(0, 0)], A);
        assert_eq!(out.deliveries.len(), 2);
        // Two sequential non-overlapping transmissions (hidden from each
        // other) are both decodable by a common neighbor.
        let t = Topology::line(3);
        let out = resolve_multihop(&t, &[plain(0, 0), plain(2, 8)], A);
        assert_eq!(
            out.deliveries,
            vec![
                MhDelivery {
                    rx: 1,
                    tx: 0,
                    slot: 0
                },
                MhDelivery {
                    rx: 1,
                    tx: 2,
                    slot: 8
                },
            ]
        );
    }

    #[test]
    fn relay_does_not_cancel_on_hear() {
        let t = Topology::line(4);
        // Reference 0 at slot 0; station 1 relays at slot 8 (after the
        // 7-slot airtime) even though it heard station 0 start earlier;
        // station 2 decodes the relay.
        let out = resolve_multihop(&t, &[plain(0, 0), relay(1, 8)], A);
        assert_eq!(out.transmissions, vec![(0, 0), (1, 8)]);
        assert!(out.deliveries.contains(&MhDelivery {
            rx: 2,
            tx: 1,
            slot: 8
        }));

        // A relay with no upstream traffic still transmits (it forwards
        // its own disciplined clock).
        let out = resolve_multihop(&t, &[relay(1, 8)], A);
        assert_eq!(out.transmissions, vec![(1, 8)]);
    }

    #[test]
    fn relay_defers_while_channel_busy() {
        let t = Topology::line(3);
        // Relay slot 5 < airtime 7: the upstream transmission still holds
        // the channel, so the relay defers this window.
        let out = resolve_multihop(&t, &[plain(0, 0), relay(1, 5)], A);
        assert_eq!(out.transmissions, vec![(0, 0)]);
    }

    #[test]
    fn relay_chain_propagates_across_hops() {
        // 0 — 1 — 2 — 3 with relays staggered one airtime apart: the
        // beacon crosses three hops in one window.
        let t = Topology::line(4);
        let out = resolve_multihop(&t, &[plain(0, 0), relay(1, 8), relay(2, 16)], A);
        assert_eq!(out.transmissions, vec![(0, 0), (1, 8), (2, 16)]);
        assert!(out.deliveries.contains(&MhDelivery {
            rx: 3,
            tx: 2,
            slot: 16
        }));
    }

    #[test]
    fn half_duplex_blocks_reception_during_own_tx() {
        let t = Topology::line(3);
        // 0 and 1 both transmit at slot 0: 1 cannot decode 0 (own tx), and
        // 0 cannot decode 1. Station 2 hears only 1 and decodes it.
        let out = resolve_multihop(&t, &[plain(0, 0), plain(1, 0)], A);
        assert_eq!(
            out.deliveries,
            vec![MhDelivery {
                rx: 2,
                tx: 1,
                slot: 0
            }]
        );
    }

    #[test]
    fn deterministic_for_any_input_order() {
        let t = Topology::grid(3, 3);
        let a = [plain(0, 2), plain(8, 1), relay(4, 9), plain(2, 2)];
        let mut b = a;
        b.reverse();
        assert_eq!(resolve_multihop(&t, &a, A), resolve_multihop(&t, &b, A));
    }

    #[test]
    fn mesh_resolution_matches_global_on_bridged_graph() {
        let (t, d) = Topology::bridged(2, 3, 2);
        let attempts = [
            plain(0, 0),
            plain(7, 0),
            relay(12, 8),
            plain(3, 5),
            plain(11, 16),
        ];
        let global = resolve_multihop(&t, &attempts, A);
        let mesh = resolve_mesh(&t, &d, &attempts, A);
        assert_eq!(global, mesh);
        // Both islands transmit in parallel: spatial reuse across domains.
        assert!(global.transmissions.contains(&(0, 0)));
        assert!(global.transmissions.contains(&(7, 0)));
    }

    #[test]
    fn mesh_resolver_matches_resolve_mesh_across_reused_windows() {
        // One resolver, many windows with different attempt mixes: every
        // outcome must be bit-identical to a fresh resolve_mesh call
        // (proving the scratch buffers fully reset between windows).
        let (t, d) = Topology::bridged(3, 3, 2);
        let mut r = MeshResolver::new(&t, &d);
        let windows: [&[MhAttempt]; 5] = [
            &[plain(0, 0), plain(7, 0), relay(18, 8), plain(3, 5)],
            &[],
            &[
                plain(2, 2),
                plain(9, 2),
                plain(16, 2),
                relay(19, 10),
                relay(18, 10),
            ],
            &[plain(0, 0)],
            &[
                relay(18, 0),
                relay(19, 0),
                plain(5, 3),
                plain(12, 3),
                plain(17, 16),
            ],
        ];
        for attempts in windows {
            assert_eq!(
                r.resolve(&t, attempts, A),
                &resolve_mesh(&t, &d, attempts, A)
            );
        }
    }

    #[test]
    fn mesh_resolver_matches_on_awkward_partitions() {
        // Same partition-independence property resolve_mesh has.
        let t = Topology::grid(3, 3);
        let attempts = [plain(0, 0), plain(8, 0), relay(4, 9), plain(2, 3)];
        for decomp in [
            crate::topology::DomainDecomposition::from_partition(
                (0..9).map(|i| vec![i]).collect(),
                &t,
            ),
            crate::topology::DomainDecomposition::from_partition(vec![(0..9).collect()], &t),
            t.clique_domains(),
        ] {
            let mut r = MeshResolver::new(&t, &decomp);
            assert_eq!(
                r.resolve(&t, &attempts, A),
                &resolve_mesh(&t, &decomp, &attempts, A)
            );
        }
    }

    #[test]
    fn mesh_resolution_is_partition_independent() {
        // Any partition — even a deliberately bad one that splits cliques —
        // must produce the identical outcome.
        let t = Topology::grid(3, 3);
        let attempts = [plain(0, 0), plain(8, 0), relay(4, 9), plain(2, 3)];
        let global = resolve_multihop(&t, &attempts, A);
        let per_node = crate::topology::DomainDecomposition::from_partition(
            (0..9).map(|i| vec![i]).collect(),
            &t,
        );
        let one_domain =
            crate::topology::DomainDecomposition::from_partition(vec![(0..9).collect()], &t);
        let cliques = t.clique_domains();
        assert_eq!(resolve_mesh(&t, &per_node, &attempts, A), global);
        assert_eq!(resolve_mesh(&t, &one_domain, &attempts, A), global);
        assert_eq!(resolve_mesh(&t, &cliques, &attempts, A), global);
    }
}
