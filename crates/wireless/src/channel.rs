//! The single-collision-domain channel.
//!
//! [`Channel::resolve_window`] implements one beacon generation window:
//! given every station's chosen transmission slot, it determines the
//! winning slot (earliest), whether the winners collided, and — for a
//! successful transmission — which receivers the beacon actually reached
//! (independent Bernoulli packet errors). Jamming windows destroy all
//! transmissions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A station's transmission attempt within a beacon generation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxAttempt {
    /// Opaque station identifier (index into the scenario's node table).
    pub station: u32,
    /// The slot (0-based within the window) the station's random delay
    /// timer expires in. The reference node and attackers use slot 0.
    pub slot: u32,
}

/// Per-receiver delivery verdict for a successful transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The receiver decoded the beacon.
    Received,
    /// The beacon was lost to a packet error at this receiver.
    Lost,
}

/// The outcome of one beacon generation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowOutcome {
    /// Nobody attempted to transmit.
    Silent,
    /// The channel was jammed; every transmission was destroyed.
    Jammed {
        /// Stations whose transmissions were destroyed.
        victims: Vec<u32>,
    },
    /// Two or more stations transmitted in the earliest occupied slot; all
    /// their beacons were destroyed. Stations in later slots heard the
    /// energy and cancelled.
    Collision {
        /// The slot in which the collision happened.
        slot: u32,
        /// The colliding stations.
        colliders: Vec<u32>,
    },
    /// Exactly one station transmitted in the earliest occupied slot.
    Success {
        /// The winning station.
        winner: u32,
        /// The slot it transmitted in.
        slot: u32,
    },
}

/// Single-collision-domain channel with Bernoulli packet errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Channel {
    /// Packet error rate per (beacon, receiver) pair. The paper sets
    /// 0.01 % = 1e-4.
    per: f64,
    /// Additional, usually transient, loss probability injected by a fault
    /// layer (burst interference, deep fades). Composed with `per` as
    /// independent loss causes in a single RNG draw so that enabling it
    /// does not change the number of draws on the channel-error stream.
    burst_loss: f64,
    /// When true, every transmission in the current window is destroyed.
    jammed: bool,
}

impl Channel {
    /// Create a channel with the given packet error rate.
    ///
    /// # Panics
    /// Panics unless `0 ≤ per < 1`.
    pub fn new(per: f64) -> Self {
        assert!((0.0..1.0).contains(&per), "PER must be in [0, 1)");
        Channel {
            per,
            burst_loss: 0.0,
            jammed: false,
        }
    }

    /// The paper's channel: PER = 0.01 %.
    pub fn paper() -> Self {
        Channel::new(1e-4)
    }

    /// A perfect channel (no losses) for unit tests.
    pub fn lossless() -> Self {
        Channel::new(0.0)
    }

    /// Packet error rate in force.
    pub fn per(&self) -> f64 {
        self.per
    }

    /// Set the fault-injected burst loss probability (0 disables it).
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`; `p = 1` models a total blackout.
    pub fn set_burst_loss(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "burst loss must be in [0, 1]");
        self.burst_loss = p;
    }

    /// Burst loss probability currently in force.
    pub fn burst_loss(&self) -> f64 {
        self.burst_loss
    }

    /// Engage / release the jammer.
    pub fn set_jammed(&mut self, jammed: bool) {
        self.jammed = jammed;
    }

    /// Whether the channel is currently jammed.
    pub fn is_jammed(&self) -> bool {
        self.jammed
    }

    /// Resolve one beacon generation window.
    ///
    /// `attempts` lists every station whose delay timer would fire this
    /// window together with its slot. Order does not matter; determinism
    /// comes from the content (ties on the earliest slot are a collision,
    /// not a coin flip).
    pub fn resolve_window(&self, attempts: &[TxAttempt]) -> WindowOutcome {
        if attempts.is_empty() {
            return WindowOutcome::Silent;
        }
        if self.jammed {
            let mut victims: Vec<u32> = attempts.iter().map(|a| a.station).collect();
            victims.sort_unstable();
            return WindowOutcome::Jammed { victims };
        }
        let min_slot = attempts.iter().map(|a| a.slot).min().expect("non-empty");
        // Success is the steady-state outcome, so decide it without
        // collecting the earliest-slot occupants; the collision path keeps
        // its sorted collider list.
        let mut occupants = 0usize;
        let mut winner = u32::MAX;
        for a in attempts {
            if a.slot == min_slot {
                occupants += 1;
                winner = winner.min(a.station);
            }
        }
        if occupants == 1 {
            WindowOutcome::Success {
                winner,
                slot: min_slot,
            }
        } else {
            let mut colliders: Vec<u32> = attempts
                .iter()
                .filter(|a| a.slot == min_slot)
                .map(|a| a.station)
                .collect();
            colliders.sort_unstable();
            WindowOutcome::Collision {
                slot: min_slot,
                colliders,
            }
        }
    }

    /// Per-receiver delivery draw for a successful transmission. One call
    /// per receiver; the RNG must be the channel-error stream so results
    /// are independent of unrelated randomness.
    pub fn deliver<R: Rng + ?Sized>(&self, rng: &mut R) -> Delivery {
        // Independent loss causes: survive both the base PER and any burst.
        let loss = self.per + self.burst_loss - self.per * self.burst_loss;
        if loss > 0.0 && rng.random_range(0.0..1.0) < loss {
            Delivery::Lost
        } else {
            Delivery::Received
        }
    }

    /// Batched delivery draws: fills `out` with `count` verdicts, one per
    /// receiver in call order. Draw-for-draw equivalent to `count`
    /// sequential [`Channel::deliver`] calls on the same RNG — identical
    /// draw count (zero when the composed loss probability is zero) and
    /// identical per-receiver decisions — but done in one tight pass so the
    /// engine's receiver loop can separate randomness from delivery work.
    pub fn deliver_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        out: &mut Vec<Delivery>,
    ) {
        out.clear();
        let loss = self.per + self.burst_loss - self.per * self.burst_loss;
        if loss > 0.0 {
            out.extend((0..count).map(|_| {
                if rng.random_range(0.0..1.0) < loss {
                    Delivery::Lost
                } else {
                    Delivery::Received
                }
            }));
        } else {
            out.resize(count, Delivery::Received);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn at(station: u32, slot: u32) -> TxAttempt {
        TxAttempt { station, slot }
    }

    #[test]
    fn empty_window_is_silent() {
        assert_eq!(
            Channel::lossless().resolve_window(&[]),
            WindowOutcome::Silent
        );
    }

    #[test]
    fn earliest_slot_wins() {
        let ch = Channel::lossless();
        let out = ch.resolve_window(&[at(1, 5), at(2, 3), at(3, 9)]);
        assert_eq!(out, WindowOutcome::Success { winner: 2, slot: 3 });
    }

    #[test]
    fn equal_earliest_slots_collide() {
        let ch = Channel::lossless();
        let out = ch.resolve_window(&[at(1, 2), at(2, 2), at(3, 7)]);
        assert_eq!(
            out,
            WindowOutcome::Collision {
                slot: 2,
                colliders: vec![1, 2]
            }
        );
    }

    #[test]
    fn later_stations_do_not_collide_with_winner() {
        // Carrier sense: a station in a later slot cancels; only the
        // earliest slot's occupancy decides.
        let ch = Channel::lossless();
        let out = ch.resolve_window(&[at(9, 0), at(1, 0), at(2, 1), at(3, 1)]);
        assert_eq!(
            out,
            WindowOutcome::Collision {
                slot: 0,
                colliders: vec![1, 9]
            }
        );
    }

    #[test]
    fn order_of_attempts_is_irrelevant() {
        let ch = Channel::lossless();
        let a = ch.resolve_window(&[at(1, 4), at(2, 2)]);
        let b = ch.resolve_window(&[at(2, 2), at(1, 4)]);
        assert_eq!(a, b);
    }

    #[test]
    fn jamming_destroys_everything() {
        let mut ch = Channel::lossless();
        ch.set_jammed(true);
        let out = ch.resolve_window(&[at(3, 0), at(1, 5)]);
        assert_eq!(
            out,
            WindowOutcome::Jammed {
                victims: vec![1, 3]
            }
        );
        ch.set_jammed(false);
        assert!(matches!(
            ch.resolve_window(&[at(3, 0)]),
            WindowOutcome::Success { winner: 3, .. }
        ));
    }

    #[test]
    fn lossless_channel_always_delivers() {
        let ch = Channel::lossless();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(ch.deliver(&mut rng), Delivery::Received);
        }
    }

    #[test]
    fn per_statistics_match_configuration() {
        let ch = Channel::new(0.05);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 200_000;
        let lost = (0..n)
            .filter(|_| ch.deliver(&mut rng) == Delivery::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.05).abs() < 0.005,
            "observed loss rate {rate}, configured 0.05"
        );
    }

    #[test]
    fn paper_channel_rarely_loses() {
        let ch = Channel::paper();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 100_000;
        let lost = (0..n)
            .filter(|_| ch.deliver(&mut rng) == Delivery::Lost)
            .count();
        // 1e-4 × 1e5 = 10 expected; allow wide slack.
        assert!(lost < 40, "lost {lost} of {n}");
    }

    #[test]
    #[should_panic(expected = "PER must be in")]
    fn invalid_per_rejected() {
        let _ = Channel::new(1.0);
    }

    #[test]
    fn zero_burst_loss_preserves_draw_count() {
        // A channel with burst loss explicitly set to 0 must consume the
        // channel-error stream exactly as one that never touched it —
        // otherwise enabling the fault layer would shift all downstream
        // randomness even in fault-free windows.
        let plain = Channel::new(0.05);
        let mut touched = Channel::new(0.05);
        touched.set_burst_loss(0.3);
        touched.set_burst_loss(0.0);
        let mut rng_a = ChaCha12Rng::seed_from_u64(42);
        let mut rng_b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert_eq!(plain.deliver(&mut rng_a), touched.deliver(&mut rng_b));
        }
    }

    #[test]
    fn deliver_batch_matches_sequential_deliver() {
        // The batched path must be draw-for-draw identical to sequential
        // `deliver` calls: same verdicts, same RNG consumption.
        for (per, burst) in [(0.0, 0.0), (0.05, 0.0), (0.0, 0.3), (0.2, 0.4)] {
            let mut ch = Channel::new(per);
            ch.set_burst_loss(burst);
            let mut rng_seq = ChaCha12Rng::seed_from_u64(77);
            let mut rng_batch = ChaCha12Rng::seed_from_u64(77);
            let seq: Vec<Delivery> = (0..5_000).map(|_| ch.deliver(&mut rng_seq)).collect();
            let mut batch = Vec::new();
            ch.deliver_batch(&mut rng_batch, 5_000, &mut batch);
            assert_eq!(seq, batch, "per={per} burst={burst}");
            // Both streams must be left at the same position.
            assert_eq!(
                rng_seq.random_range(0.0..1.0f64),
                rng_batch.random_range(0.0..1.0f64)
            );
        }
    }

    #[test]
    fn burst_loss_composes_with_per() {
        let mut ch = Channel::new(0.1);
        ch.set_burst_loss(0.5);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let n = 200_000;
        let lost = (0..n)
            .filter(|_| ch.deliver(&mut rng) == Delivery::Lost)
            .count();
        let rate = lost as f64 / n as f64;
        // Independent causes: 1 − (1 − 0.1)(1 − 0.5) = 0.55.
        assert!((rate - 0.55).abs() < 0.01, "observed loss rate {rate}");
    }

    #[test]
    fn total_burst_loss_blacks_out_channel() {
        let mut ch = Channel::lossless();
        ch.set_burst_loss(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(ch.deliver(&mut rng), Delivery::Lost);
        }
        ch.set_burst_loss(0.0);
        assert_eq!(ch.deliver(&mut rng), Delivery::Received);
    }

    #[test]
    #[should_panic(expected = "burst loss must be in")]
    fn invalid_burst_loss_rejected() {
        Channel::lossless().set_burst_loss(1.5);
    }
}
