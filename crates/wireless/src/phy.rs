//! PHY-layer timing for the OFDM (ERP) physical layer the paper simulates
//! (54 Mbit/s, Sec. 5).

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// TSF beacon on-air size per the paper's accounting: 24 bytes of preamble
/// plus 32 bytes of data.
pub const FRAME_OVERHEAD_TSF: usize = 56;

/// SSTSP beacon on-air size: TSF's 56 bytes plus the 4-byte interval index
/// and two 128-bit hash values (MAC and disclosed key).
pub const FRAME_OVERHEAD_SSTSP: usize = 92;

/// Physical-layer timing parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhyParams {
    /// aSlotTime in microseconds (9 µs for OFDM / ERP).
    pub slot_us: u64,
    /// Bit rate in Mbit/s (the paper simulates 54 Mbit/s).
    pub bitrate_mbps: f64,
    /// One-way propagation delay in nanoseconds (sub-µs at IBSS ranges;
    /// 300 m ≈ 1 µs).
    pub propagation_ns: u64,
    /// Beacon airtime in slots for the *plain TSF* beacon (the paper uses
    /// 4 slot times).
    pub tsf_beacon_slots: u64,
    /// Beacon airtime in slots for the *secured SSTSP* beacon (the paper
    /// uses 7 slot times).
    pub sstsp_beacon_slots: u64,
}

impl PhyParams {
    /// The paper's simulation PHY: OFDM at 54 Mbit/s, 9 µs slots, 4/7-slot
    /// beacons.
    pub fn paper_ofdm() -> Self {
        PhyParams {
            slot_us: 9,
            bitrate_mbps: 54.0,
            propagation_ns: 500,
            tsf_beacon_slots: 4,
            sstsp_beacon_slots: 7,
        }
    }

    /// Slot duration.
    pub fn slot(&self) -> SimDuration {
        SimDuration::from_us(self.slot_us)
    }

    /// Airtime of a `bytes`-byte frame at the configured bit rate,
    /// excluding slot quantization: `bytes · 8 / bitrate`.
    pub fn airtime(&self, bytes: usize) -> SimDuration {
        let us = (bytes as f64 * 8.0) / self.bitrate_mbps;
        SimDuration::from_us_f64(us)
    }

    /// Airtime of a frame rounded *up* to whole slots, which is the unit the
    /// beacon contention window works in.
    pub fn airtime_slots(&self, bytes: usize) -> u64 {
        let ps = self.airtime(bytes).as_ps();
        let slot_ps = self.slot().as_ps();
        ps.div_ceil(slot_ps)
    }

    /// Beacon airtime for the given beacon kind, in simulation time.
    pub fn beacon_airtime(&self, secured: bool) -> SimDuration {
        let slots = if secured {
            self.sstsp_beacon_slots
        } else {
            self.tsf_beacon_slots
        };
        self.slot() * slots
    }

    /// The nominal transmission + propagation delay `t_p` a receiver
    /// experiences between the sender's below-MAC timestamping instant and
    /// its own reception instant.
    pub fn t_p(&self, secured: bool) -> SimDuration {
        self.beacon_airtime(secured) + SimDuration::from_ns(self.propagation_ns)
    }

    /// Propagation delay alone.
    pub fn propagation(&self) -> SimDuration {
        SimDuration::from_ns(self.propagation_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_phy_has_documented_values() {
        let p = PhyParams::paper_ofdm();
        assert_eq!(p.slot_us, 9);
        assert_eq!(p.bitrate_mbps, 54.0);
        assert_eq!(p.tsf_beacon_slots, 4);
        assert_eq!(p.sstsp_beacon_slots, 7);
    }

    #[test]
    fn airtime_at_54mbps() {
        let p = PhyParams::paper_ofdm();
        // 56 bytes at 54 Mbit/s = 8.296 µs.
        let a = p.airtime(FRAME_OVERHEAD_TSF);
        assert!((a.as_us_f64() - 8.296).abs() < 0.01, "{}", a.as_us_f64());
    }

    #[test]
    fn airtime_rounds_up_to_slots() {
        let p = PhyParams::paper_ofdm();
        // 8.296 µs → 1 slot of 9 µs. 92 bytes = 13.6 µs → 2 slots.
        assert_eq!(p.airtime_slots(FRAME_OVERHEAD_TSF), 1);
        assert_eq!(p.airtime_slots(FRAME_OVERHEAD_SSTSP), 2);
    }

    #[test]
    fn beacon_airtimes_match_paper_slot_counts() {
        let p = PhyParams::paper_ofdm();
        assert_eq!(p.beacon_airtime(false), SimDuration::from_us(36));
        assert_eq!(p.beacon_airtime(true), SimDuration::from_us(63));
    }

    #[test]
    fn t_p_includes_propagation() {
        let p = PhyParams::paper_ofdm();
        assert_eq!(
            p.t_p(true).as_ps(),
            SimDuration::from_us(63).as_ps() + SimDuration::from_ns(500).as_ps()
        );
    }

    #[test]
    fn beacon_size_growth_is_36_bytes() {
        // The paper: 56 B → 92 B due to the 128-bit MAC, the 128-bit
        // disclosed key, and the interval index.
        assert_eq!(FRAME_OVERHEAD_SSTSP - FRAME_OVERHEAD_TSF, 36);
    }
}
