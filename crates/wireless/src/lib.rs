//! # wireless — single-collision-domain IEEE 802.11 PHY/channel model
//!
//! The paper evaluates SSTSP in an IBSS where **all nodes are within each
//! other's transmission range** — a single collision domain. That licenses
//! the classic abstraction used by the TSF-scalability literature (Lai &
//! Zhou 2003, Zhou & Lai 2005) and by this paper's own simulation:
//!
//! * the beacon generation window is slotted ([`PhyParams::slot_us`] per
//!   slot); each would-be sender picks a slot; the earliest slot wins;
//! * two or more senders in the same earliest slot **collide** and all of
//!   their beacons are destroyed;
//! * a successful beacon reaches each receiver independently subject to a
//!   Bernoulli packet-error rate ([`Channel::per`]);
//! * every delivery experiences the transmission + propagation delay `t_p`,
//!   plus a small timestamping jitter bounded by the paper's ε (< 5 µs);
//! * a jammer can hold the channel, destroying everything in the window.
//!
//! The [`Channel`] type implements exactly this process, deterministically,
//! from an externally supplied RNG stream.
//!
//! The multi-hop extension (the paper's future work) lives in
//! [`topology`] (connectivity graphs) and [`multihop`] (window resolution
//! with local carrier sense, hidden terminals and spatial reuse).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod multihop;
pub mod phy;
pub mod topology;

pub use channel::{Channel, Delivery, TxAttempt, WindowOutcome};
pub use multihop::{
    resolve_mesh, resolve_multihop, MeshResolver, MhAttempt, MhDelivery, MhOutcome,
};
pub use phy::{PhyParams, FRAME_OVERHEAD_SSTSP, FRAME_OVERHEAD_TSF};
pub use topology::{DomainDecomposition, DomainOrder, Topology};
