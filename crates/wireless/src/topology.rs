//! Network topology for the multi-hop extension.
//!
//! The paper's evaluation is single-hop ("all nodes within each other's
//! transmission range"); extending SSTSP to multi-hop networks is its
//! stated future work. This module supplies the substrate: a static
//! connectivity graph with unit-disk and synthetic generators, adjacency
//! queries for the channel model, and BFS utilities (connectivity, hop
//! distances) for the experiments that measure error growth per hop.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A static connectivity graph over stations `0..n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    n: u32,
    /// Sorted neighbor lists.
    adj: Vec<Vec<u32>>,
}

impl Topology {
    /// Build from an explicit undirected edge list.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n as usize];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not meaningful");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology { n, adj }
    }

    /// The single-hop IBSS: every pair connected.
    pub fn full(n: u32) -> Self {
        let mut adj = Vec::with_capacity(n as usize);
        for i in 0..n {
            adj.push((0..n).filter(|&j| j != i).collect());
        }
        Topology { n, adj }
    }

    /// A line (path) of `n` stations — the worst case for per-hop error
    /// accumulation: diameter n−1.
    pub fn line(n: u32) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Self::from_edges(n, &edges)
    }

    /// A `cols × rows` grid with 4-neighborhood.
    pub fn grid(cols: u32, rows: u32) -> Self {
        let n = cols * rows;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    edges.push((i, i + 1));
                }
                if r + 1 < rows {
                    edges.push((i, i + cols));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// A ring (cycle) of `n` stations: diameter ⌊n/2⌋, every degree 2.
    ///
    /// # Panics
    /// Panics for `n < 3` — smaller rings degenerate to a line or a
    /// self-loop.
    pub fn ring(n: u32) -> Self {
        assert!(n >= 3, "a ring needs at least 3 stations");
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Self::from_edges(n, &edges)
    }

    /// Unit-disk graph: stations uniform in a `side × side` area, connected
    /// within `range`. Retries until connected (up to 64 attempts).
    ///
    /// # Panics
    /// Panics if no connected placement is found — pick a larger range or
    /// smaller area.
    pub fn random_disk<R: Rng + ?Sized>(n: u32, side: f64, range: f64, rng: &mut R) -> Self {
        Self::try_random_disk(n, side, range, rng, 64).unwrap_or_else(|| {
            panic!("no connected unit-disk placement found for n={n}, side={side}, range={range}")
        })
    }

    /// Fallible [`Topology::random_disk`]: draws up to `max_attempts`
    /// placements and returns the first connected one, or `None` if every
    /// draw produced a disconnected graph. Disconnected placements are
    /// *rejected and regenerated*, never returned — callers that get
    /// `Some` hold a connected graph by construction.
    pub fn try_random_disk<R: Rng + ?Sized>(
        n: u32,
        side: f64,
        range: f64,
        rng: &mut R,
        max_attempts: u32,
    ) -> Option<Self> {
        for _ in 0..max_attempts {
            let pos: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.random_range(0.0..side), rng.random_range(0.0..side)))
                .collect();
            let mut edges = Vec::new();
            for i in 0..n as usize {
                for j in i + 1..n as usize {
                    let dx = pos[i].0 - pos[j].0;
                    let dy = pos[i].1 - pos[j].1;
                    if (dx * dx + dy * dy).sqrt() <= range {
                        edges.push((i as u32, j as u32));
                    }
                }
            }
            let t = Self::from_edges(n, &edges);
            if t.is_connected() {
                return Some(t);
            }
        }
        None
    }

    /// An explicit multi-collision-domain union: `domains` island cells of
    /// `cols × rows` stations each, joined in a chain by `domains − 1`
    /// bridge stations appended at the end of the id space.
    ///
    /// Island `k` owns ids `[k·cols·rows, (k+1)·cols·rows)`, laid out as a
    /// `cols × rows` cell whose stations are all in mutual radio range —
    /// each island is a *true* collision domain (a clique), which is what
    /// makes the returned decomposition ground truth rather than an
    /// approximation. Bridge `j` (id `domains·cols·rows + j`) carries a
    /// longer-range gateway radio and is adjacent to **every** member of
    /// islands `j` and `j + 1` — whichever station a domain elects as its
    /// reference, the bridge can hear it and be heard by it. Bridges are
    /// not adjacent to each other.
    ///
    /// Returns the graph together with its ground-truth
    /// [`DomainDecomposition`] (bridge `j` is assigned to domain `j`).
    ///
    /// # Panics
    /// Panics unless `domains ≥ 2` and each island has at least one
    /// station.
    pub fn bridged(domains: u32, cols: u32, rows: u32) -> (Self, DomainDecomposition) {
        assert!(domains >= 2, "a bridged mesh needs at least two domains");
        let island = cols * rows;
        assert!(island >= 1, "each island needs at least one station");
        let n = domains * island + (domains - 1);
        let mut edges = Vec::new();
        for k in 0..domains {
            let base = k * island;
            for i in 0..island {
                for j in (i + 1)..island {
                    edges.push((base + i, base + j));
                }
            }
        }
        let bridge_base = domains * island;
        for j in 0..domains - 1 {
            let b = bridge_base + j;
            for k in [j, j + 1] {
                for i in k * island..(k + 1) * island {
                    edges.push((b, i));
                }
            }
        }
        let topo = Self::from_edges(n, &edges);
        let mut members: Vec<Vec<u32>> = (0..domains)
            .map(|k| (k * island..(k + 1) * island).collect())
            .collect();
        for j in 0..domains - 1 {
            members[j as usize].push(bridge_base + j);
        }
        let decomp = DomainDecomposition::from_partition(members, &topo);
        (topo, decomp)
    }

    /// Greedy maximal-clique collision-domain partition.
    ///
    /// Scanning stations in id order, each uncovered station seeds a new
    /// domain and greedily absorbs its uncovered neighbors (in id order)
    /// that are adjacent to every station already in the domain — so every
    /// domain is a clique, i.e. a true single-collision-domain cell, and
    /// every station lands in exactly one domain. Deterministic for a
    /// given graph.
    pub fn clique_domains(&self) -> DomainDecomposition {
        let mut covered = vec![false; self.n as usize];
        let mut domains: Vec<Vec<u32>> = Vec::new();
        for seed in 0..self.n {
            if covered[seed as usize] {
                continue;
            }
            covered[seed as usize] = true;
            let mut clique = vec![seed];
            for &v in self.neighbors(seed) {
                if covered[v as usize] {
                    continue;
                }
                if clique.iter().all(|&u| self.are_neighbors(u, v)) {
                    covered[v as usize] = true;
                    clique.push(v);
                }
            }
            clique.sort_unstable();
            domains.push(clique);
        }
        DomainDecomposition::from_partition(domains, self)
    }

    /// Number of stations.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// True for the degenerate empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted neighbors of `i`.
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// Whether `i` and `j` are within range of each other.
    pub fn are_neighbors(&self, i: u32, j: u32) -> bool {
        self.adj[i as usize].binary_search(&j).is_ok()
    }

    /// BFS hop distances from `src` (`u32::MAX` = unreachable).
    pub fn hops_from(&self, src: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n as usize];
        let mut q = VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every station can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.hops_from(0).iter().all(|&d| d != u32::MAX)
    }

    /// Graph diameter (longest shortest path); `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for i in 0..self.n {
            let d = self.hops_from(i);
            let far = *d.iter().max()?;
            if far == u32::MAX {
                return None;
            }
            best = best.max(far);
        }
        Some(best)
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.adj.iter().map(|a| a.len()).sum::<usize>() as f64 / self.n as f64
    }
}

/// A partition of a [`Topology`]'s stations into collision domains.
///
/// Every station belongs to exactly one domain; an edge either stays
/// inside one domain or *bridges* exactly two (its endpoints' domains).
/// The gateway stations a per-domain reference election relays time
/// through are listed in [`bridges`](Self::bridges): a station is a
/// bridge iff it is adjacent to **every non-bridge member** of at least
/// two domains — it can hear whichever station either domain elects as
/// its reference, and be heard by it, which mere incidence to one
/// cross-domain edge does not guarantee. (Bridges themselves never
/// contend to become a domain's reference, so they are excluded from the
/// coverage requirement; the set is computed as a monotone fixpoint.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainDecomposition {
    /// Sorted member ids per domain, in domain order.
    pub domains: Vec<Vec<u32>>,
    /// Station id → index into [`domains`](Self::domains).
    pub domain_of: Vec<u32>,
    /// Sorted ids of gateway stations (adjacent to every non-bridge
    /// member of at least two domains).
    pub bridges: Vec<u32>,
}

impl DomainDecomposition {
    /// Build from an explicit partition, deriving the reverse map and the
    /// bridge set from `topology`.
    ///
    /// # Panics
    /// Panics if `domains` is not a partition of `0..topology.len()` (a
    /// station missing, repeated, or out of range) or any domain is empty.
    pub fn from_partition(domains: Vec<Vec<u32>>, topology: &Topology) -> Self {
        let n = topology.len() as usize;
        let mut domain_of = vec![u32::MAX; n];
        for (d, members) in domains.iter().enumerate() {
            assert!(!members.is_empty(), "domain {d} is empty");
            for &m in members {
                assert!((m as usize) < n, "station {m} out of range");
                assert_eq!(
                    domain_of[m as usize],
                    u32::MAX,
                    "station {m} assigned to two domains"
                );
                domain_of[m as usize] = d as u32;
            }
        }
        assert!(
            domain_of.iter().all(|&d| d != u32::MAX),
            "partition does not cover every station"
        );
        let mut domains = domains;
        for members in &mut domains {
            members.sort_unstable();
        }
        // Monotone fixpoint: marking a station as a bridge only relaxes the
        // coverage requirement for others, so iterate until stable (≤ n
        // passes).
        let mut is_bridge = vec![false; n];
        loop {
            let mut changed = false;
            for i in 0..topology.len() {
                if is_bridge[i as usize] {
                    continue;
                }
                let dominated = domains
                    .iter()
                    .filter(|members| {
                        members.iter().all(|&m| {
                            m == i || is_bridge[m as usize] || topology.are_neighbors(i, m)
                        })
                    })
                    .count();
                if dominated >= 2 {
                    is_bridge[i as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let bridges: Vec<u32> = (0..topology.len())
            .filter(|&i| is_bridge[i as usize])
            .collect();
        DomainDecomposition {
            domains,
            domain_of,
            bridges,
        }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True for the degenerate empty decomposition.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The domain of station `i`.
    pub fn domain_of(&self, i: u32) -> u32 {
        self.domain_of[i as usize]
    }

    /// Whether station `i` has a neighbor in a foreign domain.
    pub fn is_bridge(&self, i: u32) -> bool {
        self.bridges.binary_search(&i).is_ok()
    }
}

/// Domain-major index permutation over a [`DomainDecomposition`]: every
/// station id, laid out so each domain's members occupy one contiguous
/// range (members ascending within a domain, domains in decomposition
/// order). Engine fast paths iterate per-domain state as contiguous
/// slices through this order instead of chasing `domain_of` lookups, and
/// [`pos_of`](Self::pos_of) inverts the permutation exactly — a proptest
/// pins the round-trip for arbitrary decompositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainOrder {
    /// Position → station id (the permutation itself).
    perm: Vec<u32>,
    /// Station id → position in [`perm`](Self::perm).
    pos_of: Vec<u32>,
    /// Per-domain `(start, end)` ranges into `perm`, in domain order.
    ranges: Vec<(u32, u32)>,
}

impl DomainOrder {
    /// Build the domain-major order for `decomp`.
    pub fn new(decomp: &DomainDecomposition) -> Self {
        let n = decomp.domain_of.len();
        let mut perm = Vec::with_capacity(n);
        let mut pos_of = vec![u32::MAX; n];
        let mut ranges = Vec::with_capacity(decomp.len());
        for members in &decomp.domains {
            let start = perm.len() as u32;
            for &id in members {
                pos_of[id as usize] = perm.len() as u32;
                perm.push(id);
            }
            ranges.push((start, perm.len() as u32));
        }
        debug_assert_eq!(perm.len(), n, "decomposition covers every station");
        DomainOrder {
            perm,
            pos_of,
            ranges,
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.ranges.len()
    }

    /// Station ids of domain `d`, ascending (a contiguous slice of the
    /// permutation — identical to the decomposition's member list).
    pub fn members(&self, d: usize) -> &[u32] {
        let (start, end) = self.ranges[d];
        &self.perm[start as usize..end as usize]
    }

    /// The full permutation, domain-major.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Position of station `id` in the permutation.
    pub fn pos_of(&self, id: u32) -> u32 {
        self.pos_of[id as usize]
    }

    /// Station at position `pos` of the permutation.
    pub fn id_at(&self, pos: u32) -> u32 {
        self.perm[pos as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn full_graph_connects_everyone() {
        let t = Topology::full(5);
        assert_eq!(t.len(), 5);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(1));
        assert_eq!(t.neighbors(2), &[0, 1, 3, 4]);
        assert!(t.are_neighbors(0, 4));
        assert!(!t.are_neighbors(3, 3));
    }

    #[test]
    fn line_has_expected_diameter() {
        let t = Topology::line(7);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(6));
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(3), &[2, 4]);
        let d = t.hops_from(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(4, 3);
        assert_eq!(t.len(), 12);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(5)); // (4-1) + (3-1)
                                           // Corner has 2 neighbors, center has 4.
        assert_eq!(t.neighbors(0).len(), 2);
        assert_eq!(t.neighbors(5).len(), 4);
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.mean_degree(), 4.0 / 3.0);
    }

    #[test]
    fn disconnected_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
        assert_eq!(t.hops_from(0)[2], u32::MAX);
    }

    #[test]
    fn random_disk_is_connected_and_ranged() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let t = Topology::random_disk(30, 100.0, 35.0, &mut rng);
        assert!(t.is_connected());
        assert!(t.diameter().unwrap() >= 2, "should be genuinely multi-hop");
    }

    #[test]
    fn ring_structure() {
        let t = Topology::ring(6);
        assert_eq!(t.len(), 6);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(3));
        assert_eq!(t.neighbors(0), &[1, 5]);
        assert_eq!(t.neighbors(3), &[2, 4]);
        assert!((0..6).all(|i| t.neighbors(i).len() == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(2);
    }

    #[test]
    fn bridged_two_domains() {
        let (t, d) = Topology::bridged(2, 3, 2);
        assert_eq!(t.len(), 13);
        assert!(t.is_connected());
        assert_eq!(d.len(), 2);
        assert_eq!(d.bridges, vec![12]);
        assert!(d.is_bridge(12));
        assert!(!d.is_bridge(0));
        // The bridge hears every station of both islands.
        assert_eq!(t.neighbors(12), (0..12).collect::<Vec<_>>().as_slice());
        // Islands are only reachable through the bridge.
        assert!(!t.are_neighbors(0, 6));
        assert_eq!(d.domain_of(0), 0);
        assert_eq!(d.domain_of(6), 1);
        assert_eq!(d.domain_of(12), 0, "bridge j is assigned to domain j");
        assert_eq!(d.domains[0], vec![0, 1, 2, 3, 4, 5, 12]);
        assert_eq!(d.domains[1], vec![6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn bridged_three_domains_chain() {
        let (t, d) = Topology::bridged(3, 2, 2);
        assert_eq!(t.len(), 3 * 4 + 2);
        assert!(t.is_connected());
        assert_eq!(d.len(), 3);
        assert_eq!(d.bridges, vec![12, 13]);
        // Bridges are not adjacent to each other.
        assert!(!t.are_neighbors(12, 13));
        // Bridge 13 joins islands 1 and 2.
        assert!(t.are_neighbors(13, 4) && t.are_neighbors(13, 8));
        assert!(!t.are_neighbors(13, 0));
    }

    #[test]
    fn clique_domains_partition_the_graph() {
        let (t, _) = Topology::bridged(2, 3, 2);
        let d = t.clique_domains();
        let mut seen = vec![false; t.len() as usize];
        for members in &d.domains {
            assert!(!members.is_empty());
            for &m in members {
                assert!(!seen[m as usize]);
                seen[m as usize] = true;
            }
            // Every domain is a clique.
            for &a in members {
                for &b in members {
                    assert!(a == b || t.are_neighbors(a, b), "{a} and {b} not adjacent");
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        // The full graph collapses to a single domain with no bridges.
        let full = Topology::full(6).clique_domains();
        assert_eq!(full.len(), 1);
        assert!(full.bridges.is_empty());
    }

    #[test]
    fn try_random_disk_rejects_impossible_placements() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        // Range far too small to connect 10 stations over a 1000-unit side.
        assert!(Topology::try_random_disk(10, 1000.0, 1.0, &mut rng, 8).is_none());
        // A generous range succeeds.
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let t = Topology::try_random_disk(10, 100.0, 60.0, &mut rng, 8).unwrap();
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "assigned to two domains")]
    fn overlapping_partition_rejected() {
        let t = Topology::line(4);
        let _ = DomainDecomposition::from_partition(vec![vec![0, 1], vec![1, 2, 3]], &t);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn incomplete_partition_rejected() {
        let t = Topology::line(4);
        let _ = DomainDecomposition::from_partition(vec![vec![0, 1], vec![2]], &t);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }
}
