//! Network topology for the multi-hop extension.
//!
//! The paper's evaluation is single-hop ("all nodes within each other's
//! transmission range"); extending SSTSP to multi-hop networks is its
//! stated future work. This module supplies the substrate: a static
//! connectivity graph with unit-disk and synthetic generators, adjacency
//! queries for the channel model, and BFS utilities (connectivity, hop
//! distances) for the experiments that measure error growth per hop.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A static connectivity graph over stations `0..n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    n: u32,
    /// Sorted neighbor lists.
    adj: Vec<Vec<u32>>,
}

impl Topology {
    /// Build from an explicit undirected edge list.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut adj = vec![Vec::new(); n as usize];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not meaningful");
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology { n, adj }
    }

    /// The single-hop IBSS: every pair connected.
    pub fn full(n: u32) -> Self {
        let mut adj = Vec::with_capacity(n as usize);
        for i in 0..n {
            adj.push((0..n).filter(|&j| j != i).collect());
        }
        Topology { n, adj }
    }

    /// A line (path) of `n` stations — the worst case for per-hop error
    /// accumulation: diameter n−1.
    pub fn line(n: u32) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Self::from_edges(n, &edges)
    }

    /// A `cols × rows` grid with 4-neighborhood.
    pub fn grid(cols: u32, rows: u32) -> Self {
        let n = cols * rows;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    edges.push((i, i + 1));
                }
                if r + 1 < rows {
                    edges.push((i, i + cols));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Unit-disk graph: stations uniform in a `side × side` area, connected
    /// within `range`. Retries until connected (up to 64 attempts).
    ///
    /// # Panics
    /// Panics if no connected placement is found — pick a larger range or
    /// smaller area.
    pub fn random_disk<R: Rng + ?Sized>(n: u32, side: f64, range: f64, rng: &mut R) -> Self {
        for _ in 0..64 {
            let pos: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.random_range(0.0..side), rng.random_range(0.0..side)))
                .collect();
            let mut edges = Vec::new();
            for i in 0..n as usize {
                for j in i + 1..n as usize {
                    let dx = pos[i].0 - pos[j].0;
                    let dy = pos[i].1 - pos[j].1;
                    if (dx * dx + dy * dy).sqrt() <= range {
                        edges.push((i as u32, j as u32));
                    }
                }
            }
            let t = Self::from_edges(n, &edges);
            if t.is_connected() {
                return t;
            }
        }
        panic!("no connected unit-disk placement found for n={n}, side={side}, range={range}");
    }

    /// Number of stations.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// True for the degenerate empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted neighbors of `i`.
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// Whether `i` and `j` are within range of each other.
    pub fn are_neighbors(&self, i: u32, j: u32) -> bool {
        self.adj[i as usize].binary_search(&j).is_ok()
    }

    /// BFS hop distances from `src` (`u32::MAX` = unreachable).
    pub fn hops_from(&self, src: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n as usize];
        let mut q = VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every station can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.hops_from(0).iter().all(|&d| d != u32::MAX)
    }

    /// Graph diameter (longest shortest path); `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for i in 0..self.n {
            let d = self.hops_from(i);
            let far = *d.iter().max()?;
            if far == u32::MAX {
                return None;
            }
            best = best.max(far);
        }
        Some(best)
    }

    /// Mean node degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.adj.iter().map(|a| a.len()).sum::<usize>() as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn full_graph_connects_everyone() {
        let t = Topology::full(5);
        assert_eq!(t.len(), 5);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(1));
        assert_eq!(t.neighbors(2), &[0, 1, 3, 4]);
        assert!(t.are_neighbors(0, 4));
        assert!(!t.are_neighbors(3, 3));
    }

    #[test]
    fn line_has_expected_diameter() {
        let t = Topology::line(7);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(6));
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(3), &[2, 4]);
        let d = t.hops_from(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(4, 3);
        assert_eq!(t.len(), 12);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(5)); // (4-1) + (3-1)
                                           // Corner has 2 neighbors, center has 4.
        assert_eq!(t.neighbors(0).len(), 2);
        assert_eq!(t.neighbors(5).len(), 4);
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.mean_degree(), 4.0 / 3.0);
    }

    #[test]
    fn disconnected_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
        assert_eq!(t.hops_from(0)[2], u32::MAX);
    }

    #[test]
    fn random_disk_is_connected_and_ranged() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let t = Topology::random_disk(30, 100.0, 35.0, &mut rng);
        assert!(t.is_connected());
        assert!(t.diameter().unwrap() >= 2, "should be genuinely multi-hop");
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }
}
