//! # sstsp — the SSTSP reproduction harness
//!
//! This crate ties the substrates together into the system the paper
//! evaluates:
//!
//! * [`scenario`] — declarative scenario configuration (protocol, network
//!   size, churn, reference departures, attacker, seeds) with constructors
//!   matching each of the paper's experiments;
//! * [`engine`] — the network simulation engine: drives every node through
//!   beacon periods on the shared single-collision-domain channel, applies
//!   churn and attacks, and records the maximum-clock-difference series;
//! * [`instrument`] — the engine hook surface: fault-injection layers and
//!   invariant checkers attach to runs without perturbing them;
//! * [`invariants`] — the protocol invariant checker evaluated every beacon
//!   period (clock monotonicity, guard influence bound, µTESLA key
//!   freshness, synced-set spread bound);
//! * [`kernel`] — the large-n fast-path kernel: dense structure-of-arrays
//!   node state and the quiescent-BP timeline (bit-identical to the plain
//!   loop; disable with `SSTSP_NO_FASTPATH=1`);
//! * [`experiments`] — one module per table/figure of the paper, each
//!   producing the exact rows/series the paper reports;
//! * [`sweep`] — rayon-parallel seed and parameter sweeps (deterministic
//!   per seed, parallel across runs);
//! * [`report`] — plain-text rendering of series and tables.
//!
//! ## Quick start
//!
//! ```
//! use sstsp::scenario::{ProtocolKind, ScenarioConfig};
//! use sstsp::engine::Network;
//!
//! // 30 SSTSP stations for 20 seconds of simulated time.
//! let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 30, 20.0, 42);
//! let result = Network::build(&cfg).run();
//! let spread = result.spread.values();
//! assert!(spread.last().unwrap() < &25.0, "network synchronized");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod experiments;
pub mod instrument;
pub mod invariants;
pub mod kernel;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod trace;

pub use engine::{Network, RunResult};
pub use instrument::{EngineHook, NoopHook};
pub use invariants::{run_checked, InvariantChecker, Violation};
pub use scenario::{AttackerSpec, ChurnConfig, ProtocolKind, ScenarioConfig};
pub use trace::TraceRecorder;
