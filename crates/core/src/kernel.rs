//! Large-n fast-path kernel: dense node state and the quiescent-BP
//! timeline.
//!
//! The engine's default per-BP loop reaches every station through a
//! `Box<dyn SyncProtocol>` — fine at the paper's n = 30, but at n = 1000+
//! the virtual dispatch and scattered node structs dominate the beacon
//! period. This module holds the two data structures the fast path uses to
//! avoid that work without changing a single observable bit:
//!
//! * [`NodeSoa`] — a structure-of-arrays mirror of each node's
//!   [`HotState`](protocols::api::HotState): adjusted-clock `(k, b)`
//!   coefficients, synchronized/reference flags, followed reference, and
//!   the statically-known beacon intent, all in dense parallel vectors.
//!   The engine refreshes a node's entry after every callback that can
//!   mutate its state, then answers the per-BP metric queries (spread
//!   sampling, reference lookup, follower counting) and the intent scan
//!   with linear passes over these vectors.
//! * [`BpTimeline`] — a precomputed per-BP "anything scheduled?" bitmap
//!   over churn departures, reference departures, jamming windows and
//!   attacker activity. On a quiescent BP (nothing scheduled, no rejoin
//!   due, hook inactive) the engine skips the scenario-event scans
//!   entirely and runs only the slimmed hot loop, falling back to the
//!   exact full loop at the first interesting BP.
//!
//! Both structures are pure caches: every value they hold must equal what
//! the corresponding trait call would return at the instant of use, and
//! the engine cross-checks that in debug builds. Disabling the fast path
//! (`SSTSP_NO_FASTPATH=1`) removes every read of this module from the run.

use protocols::api::{BeaconIntent, HotState, NodeId, ProtocolConfig, SyncProtocol};
use simcore::{SimDuration, SimTime};

/// Structure-of-arrays mirror of the per-node [`HotState`] snapshots.
#[derive(Debug)]
pub struct NodeSoa {
    /// Adjusted-clock rate `k` per node (valid when `affine[i]`).
    k: Vec<f64>,
    /// Adjusted-clock offset `b` per node (valid when `affine[i]`).
    b: Vec<f64>,
    /// Whether the node's clock is affine in local time.
    affine: Vec<bool>,
    /// Mirror of `is_synchronized()`.
    synchronized: Vec<bool>,
    /// Mirror of `is_reference()`.
    is_reference: Vec<bool>,
    /// Mirror of `current_reference()`.
    current_reference: Vec<Option<NodeId>>,
    /// The intent `intent()` would return this BP without consuming an RNG
    /// draw, when the protocol can predict it.
    static_intent: Vec<Option<BeaconIntent>>,
}

impl NodeSoa {
    /// Dense storage for `n` nodes, initially all-conservative (no affine
    /// clock, no static intent) until the first refresh.
    pub fn new(n: usize) -> Self {
        NodeSoa {
            k: vec![0.0; n],
            b: vec![0.0; n],
            affine: vec![false; n],
            synchronized: vec![false; n],
            is_reference: vec![false; n],
            current_reference: vec![None; n],
            static_intent: vec![None; n],
        }
    }

    /// Re-snapshot node `i` from its protocol state machine. Must be called
    /// after every callback that can change the node's observable state.
    #[inline]
    pub fn refresh(&mut self, i: usize, node: &dyn SyncProtocol, config: &ProtocolConfig) {
        let HotState {
            affine_clock,
            synchronized,
            is_reference,
            current_reference,
            static_intent,
        } = node.hot_state(config);
        match affine_clock {
            Some((k, b)) => {
                self.k[i] = k;
                self.b[i] = b;
                self.affine[i] = true;
            }
            None => self.affine[i] = false,
        }
        self.synchronized[i] = synchronized;
        self.is_reference[i] = is_reference;
        self.current_reference[i] = current_reference;
        self.static_intent[i] = static_intent;
    }

    /// The node's synchronized clock at `local_us`, when its clock is
    /// affine: exactly `k * local_us + b`, the same single multiply-add
    /// `AdjustedClock::value` performs, so the result is bit-identical to
    /// the virtual `clock_us` call.
    #[inline]
    pub fn clock_us(&self, i: usize, local_us: f64) -> Option<f64> {
        if self.affine[i] {
            Some(self.k[i] * local_us + self.b[i])
        } else {
            None
        }
    }

    /// Mirror of `is_synchronized()`.
    #[inline]
    pub fn synchronized(&self, i: usize) -> bool {
        self.synchronized[i]
    }

    /// Mirror of `is_reference()`.
    #[inline]
    pub fn is_reference(&self, i: usize) -> bool {
        self.is_reference[i]
    }

    /// Mirror of `current_reference()`.
    #[inline]
    pub fn current_reference(&self, i: usize) -> Option<NodeId> {
        self.current_reference[i]
    }

    /// The statically-known intent for this BP, if the protocol predicted
    /// one (see [`HotState::static_intent`] for the correctness contract).
    #[inline]
    pub fn static_intent(&self, i: usize) -> Option<BeaconIntent> {
        self.static_intent[i]
    }
}

/// Precomputed per-BP scenario-event map: which beacon periods have *any*
/// scheduled disturbance (churn departure, reference departure, jamming
/// window, attacker activity).
///
/// Jam and attack windows are specified in seconds and the engine compares
/// them against the BP start time, so the builder replicates the engine's
/// exact time accumulation (`t += bp` from zero) and float comparisons —
/// the bitmap answers precisely the same predicate the per-BP scans would.
#[derive(Debug)]
pub struct BpTimeline {
    interesting: Vec<bool>,
}

impl BpTimeline {
    /// Build the map for BPs `1..=total_bps`.
    ///
    /// `windows_s` holds `(start_s, end_s)` pairs for every jamming window
    /// and attacker activity window; a BP whose start time `t` satisfies
    /// `start_s <= t < end_s` for any pair is interesting, as are the BPs
    /// in `churn_bps` / `ref_leave_bps`.
    pub fn build(
        total_bps: u64,
        bp: SimDuration,
        churn_bps: &[u64],
        ref_leave_bps: &[u64],
        windows_s: &[(f64, f64)],
    ) -> Self {
        let mut interesting = vec![false; (total_bps + 1) as usize];
        for &k in churn_bps.iter().chain(ref_leave_bps) {
            if let Some(slot) = interesting.get_mut(k as usize) {
                *slot = true;
            }
        }
        // Same accumulation as the simulator's event chain: BP k starts at
        // ZERO + k·bp reached by repeated addition.
        let mut t = SimTime::ZERO;
        for k in 1..=total_bps {
            t += bp;
            let t_secs = t.as_secs_f64();
            if windows_s.iter().any(|&(s, e)| t_secs >= s && t_secs < e) {
                interesting[k as usize] = true;
            }
        }
        BpTimeline { interesting }
    }

    /// Whether BP `k` has any scheduled scenario event. Out-of-range
    /// indices (defensive) count as interesting.
    #[inline]
    pub fn interesting(&self, k: u64) -> bool {
        self.interesting.get(k as usize).copied().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_marks_scheduled_events() {
        let bp = SimDuration::from_us_f64(100_000.0);
        let tl = BpTimeline::build(100, bp, &[10, 20], &[30], &[(5.0, 5.3)]);
        assert!(tl.interesting(10));
        assert!(tl.interesting(20));
        assert!(tl.interesting(30));
        // 5.0 s at 0.1 s BPs is BP 50; the window [5.0, 5.3) covers BP
        // starts 5.0, 5.1, 5.2.
        assert!(!tl.interesting(49));
        assert!(tl.interesting(50));
        assert!(tl.interesting(51));
        assert!(tl.interesting(52));
        assert!(!tl.interesting(53));
        assert!(!tl.interesting(1));
        // Out of range is conservatively interesting.
        assert!(tl.interesting(101));
    }

    #[test]
    fn timeline_empty_scenario_is_all_quiet() {
        let bp = SimDuration::from_us_f64(100_000.0);
        let tl = BpTimeline::build(50, bp, &[], &[], &[]);
        assert!((1..=50).all(|k| !tl.interesting(k)));
    }
}
