//! Engine-side trace recording.
//!
//! [`TraceRecorder`] is an [`EngineHook`] that turns the hook callbacks into
//! an ordered sequence of [`TraceEvent`]s (the event model and JSONL
//! encoding live in `sstsp_telemetry::trace`). It is purely observational:
//! it never mutates payloads, never drops deliveries, and never emits fault
//! actions, so — like any passive hook — a recorded run is bit-identical to
//! an unrecorded one.
//!
//! Receiver outcomes are classified from the SSTSP diagnostic-counter
//! deltas around each delivery, the same evidence the invariant checker
//! uses. Protocols without stats classify as [`RxOutcome::Ignored`].

use crate::engine::RunResult;
use crate::instrument::{
    BpBatch, BpView, DeliveryCtx, DeliveryFate, DeliveryObs, EngineHook, HookCaps,
};
use crate::scenario::{CampaignSpec, ScenarioConfig, TopologySpec};
use protocols::api::{AnchorRegistry, BeaconPayload, NodeId};
use protocols::sstsp::SstspStats;
use simcore::SimTime;
use sstsp_telemetry::{RxOutcome, TraceEvent};
use wireless::{DomainDecomposition, Topology};

/// Classify what a receiver did with one beacon from its stats deltas.
///
/// Rejection counters are checked before acceptance: a single delivery
/// moves at most one rejection counter, and the priority order only matters
/// when a protocol bumps several at once (which SSTSP never does).
pub fn classify_rx(before: Option<SstspStats>, after: Option<SstspStats>) -> RxOutcome {
    let (Some(b), Some(a)) = (before, after) else {
        return RxOutcome::Ignored;
    };
    if a.guard_rejections > b.guard_rejections {
        RxOutcome::GuardReject
    } else if a.mutesla_rejections > b.mutesla_rejections {
        RxOutcome::MuteslaReject
    } else if a.unknown_anchor > b.unknown_anchor {
        RxOutcome::UnknownAnchor
    } else if a.accepted > b.accepted {
        RxOutcome::Accept {
            retarget: a.retargets > b.retargets,
        }
    } else if a.coarse_syncs > b.coarse_syncs {
        RxOutcome::CoarseSync
    } else {
        RxOutcome::Ignored
    }
}

/// Spread of the honest, present, synchronized clocks in a BP view —
/// `None` when fewer than two stations qualify (distinct from a genuine
/// zero-spread agreement).
fn view_spread_us(view: &BpView<'_>) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut n = 0usize;
    for s in view.nodes {
        if s.present && s.honest && s.synchronized {
            lo = lo.min(s.clock_us);
            hi = hi.max(s.clock_us);
            n += 1;
        }
    }
    (n >= 2).then_some(hi - lo)
}

/// A passive [`EngineHook`] that records the run as a [`TraceEvent`] list.
#[derive(Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    last_reference: Option<NodeId>,
    domains: Option<DomainDecomposition>,
    last_domain_refs: Vec<Option<NodeId>>,
    /// Campaign annotation state: the shared plan, the compromised id
    /// range, and the BP length in µs (to map bp numbers onto the
    /// activity window the same way the engine's disturbed flag does).
    campaign: Option<(CampaignSpec, std::ops::Range<u32>, f64)>,
}

impl TraceRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event out-of-band (fault layers use this to interleave
    /// their own observations — hook drops, invariant violations — at the
    /// position in the stream where they happened).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// The recorded events so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the recorder, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// The `campaign` annotation for a transmission, if `src` is a
    /// campaign member transmitting inside the plan's activity window
    /// (judged from the BP start time, matching the engine's disturbed
    /// flag). Emitted right after the member's `beacon_tx` so replay
    /// divergence detection covers attacker behavior, not just its
    /// downstream effects.
    fn campaign_annotation(&self, bp: u64, src: NodeId) -> Option<TraceEvent> {
        let (spec, members, bp_us) = self.campaign.as_ref()?;
        if !members.contains(&src) || !spec.active_at(bp as f64 * bp_us / 1e6) {
            return None;
        }
        let member = src - members.start;
        Some(TraceEvent::Campaign {
            bp,
            src,
            member,
            role: spec.role_of(member).token().to_string(),
        })
    }
}

impl EngineHook for TraceRecorder {
    /// The recorder is a pure observer, so it rides the fast path and is
    /// fed per-BP batches instead of per-event callbacks.
    fn capabilities(&self) -> HookCaps {
        HookCaps {
            fastpath_safe: true,
        }
    }

    fn on_run_start(&mut self, scenario: &ScenarioConfig, _anchors: &AnchorRegistry) {
        // Mesh runs: rebuild the (deterministic) domain decomposition so the
        // recorder can narrate per-domain reference elections.
        if let Some(TopologySpec::Bridged {
            domains,
            cols,
            rows,
        }) = scenario.topology
        {
            let (_, decomp) = Topology::bridged(domains, cols, rows);
            self.last_domain_refs = vec![None; decomp.len()];
            self.domains = Some(decomp);
        }
        self.campaign = scenario.campaign.map(|spec| {
            (
                spec,
                scenario.campaign_member_ids(),
                scenario.protocol_config.bp_us,
            )
        });
        self.events.push(TraceEvent::RunStart {
            protocol: scenario.protocol.name().to_string(),
            n_nodes: scenario.n_nodes,
            seed: scenario.seed,
        });
    }

    fn on_beacon_tx(&mut self, bp: u64, src: NodeId, _t_tx: SimTime) {
        self.events.push(TraceEvent::BeaconTx { bp, src });
        if let Some(ev) = self.campaign_annotation(bp, src) {
            self.events.push(ev);
        }
    }

    fn on_delivery(&mut self, _ctx: &DeliveryCtx, _payload: &mut BeaconPayload) -> DeliveryFate {
        DeliveryFate::Deliver
    }

    fn post_delivery(&mut self, obs: &DeliveryObs<'_>) {
        self.events.push(TraceEvent::BeaconRx {
            bp: obs.ctx.bp,
            src: obs.ctx.src,
            dst: obs.ctx.dst,
            t_rx_us: obs.ctx.t_rx.as_us_f64(),
            clock_before_us: obs.clock_before_us,
            outcome: classify_rx(obs.stats_before, obs.stats_after),
        });
    }

    fn on_bp_end(&mut self, view: &BpView<'_>) {
        if let Some(d) = &self.domains {
            for (di, members) in d.domains.iter().enumerate() {
                let holder = members.iter().copied().find(|&id| {
                    let s = &view.nodes[id as usize];
                    s.present && s.is_reference
                });
                if holder != self.last_domain_refs[di] {
                    self.events.push(TraceEvent::DomainRefChange {
                        bp: view.bp,
                        domain: di as u32,
                        from: self.last_domain_refs[di],
                        to: holder,
                    });
                    self.last_domain_refs[di] = holder;
                }
            }
        }
        if view.reference != self.last_reference {
            self.events.push(TraceEvent::RefChange {
                bp: view.bp,
                from: self.last_reference,
                to: view.reference,
            });
            self.last_reference = view.reference;
        }
        self.events.push(TraceEvent::BpEnd {
            bp: view.bp,
            spread_us: view_spread_us(view),
            reference: view.reference,
            disturbed: view.disturbed,
        });
    }

    /// Fast-path feed: replay one BP's batch into the exact event sequence
    /// the per-event callbacks would have produced — transmissions in slot
    /// order, receptions in delivery order, then domain/global reference
    /// diffs, then the BP summary. `fastpath_equivalence` pins recorded
    /// traces identical across the two paths.
    fn on_bp_batch(&mut self, batch: &BpBatch<'_>) {
        for &src in batch.txs {
            self.events.push(TraceEvent::BeaconTx { bp: batch.bp, src });
            if let Some(ev) = self.campaign_annotation(batch.bp, src) {
                self.events.push(ev);
            }
        }
        for rx in batch.rxs {
            self.events.push(TraceEvent::BeaconRx {
                bp: batch.bp,
                src: rx.src,
                dst: rx.dst,
                t_rx_us: rx.t_rx.as_us_f64(),
                clock_before_us: rx.clock_before_us,
                outcome: classify_rx(rx.stats_before, rx.stats_after),
            });
        }
        if let Some(domain_refs) = batch.domain_refs {
            for (di, &holder) in domain_refs.iter().enumerate() {
                if holder != self.last_domain_refs[di] {
                    self.events.push(TraceEvent::DomainRefChange {
                        bp: batch.bp,
                        domain: di as u32,
                        from: self.last_domain_refs[di],
                        to: holder,
                    });
                    self.last_domain_refs[di] = holder;
                }
            }
        }
        if batch.reference != self.last_reference {
            self.events.push(TraceEvent::RefChange {
                bp: batch.bp,
                from: self.last_reference,
                to: batch.reference,
            });
            self.last_reference = batch.reference;
        }
        self.events.push(TraceEvent::BpEnd {
            bp: batch.bp,
            spread_us: batch.spread_us,
            reference: batch.reference,
            disturbed: batch.disturbed,
        });
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.events.push(TraceEvent::RunEnd {
            tx_successes: result.tx_successes,
            tx_collisions: result.tx_collisions,
            guard_rejections: result.guard_rejections,
            mutesla_rejections: result.mutesla_rejections,
            retargets: result.retargets,
            peak_spread_us: result.peak_spread_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::scenario::ProtocolKind;

    #[test]
    fn classification_priority_and_retarget_flag() {
        let b = SstspStats::default();
        assert_eq!(classify_rx(None, None), RxOutcome::Ignored);
        assert_eq!(classify_rx(Some(b), Some(b)), RxOutcome::Ignored);
        let mut a = b;
        a.guard_rejections += 1;
        assert_eq!(classify_rx(Some(b), Some(a)), RxOutcome::GuardReject);
        let mut a = b;
        a.mutesla_rejections += 1;
        assert_eq!(classify_rx(Some(b), Some(a)), RxOutcome::MuteslaReject);
        let mut a = b;
        a.unknown_anchor += 1;
        assert_eq!(classify_rx(Some(b), Some(a)), RxOutcome::UnknownAnchor);
        let mut a = b;
        a.accepted += 1;
        assert_eq!(
            classify_rx(Some(b), Some(a)),
            RxOutcome::Accept { retarget: false }
        );
        a.retargets += 1;
        assert_eq!(
            classify_rx(Some(b), Some(a)),
            RxOutcome::Accept { retarget: true }
        );
        let mut a = b;
        a.coarse_syncs += 1;
        assert_eq!(classify_rx(Some(b), Some(a)), RxOutcome::CoarseSync);
    }

    #[test]
    fn recorder_produces_a_well_formed_trace() {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 5, 6.0, 7);
        let mut rec = TraceRecorder::new();
        let result = Network::build(&cfg).run_with_hook(&mut rec);
        let events = rec.into_events();
        assert!(matches!(events.first(), Some(TraceEvent::RunStart { .. })));
        assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })));
        let tx = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BeaconTx { .. }))
            .count() as u64;
        assert_eq!(tx, result.tx_successes, "one tx event per success");
        let bp_ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BpEnd { .. }))
            .count() as u64;
        assert_eq!(bp_ends, cfg.total_bps(), "one bp_end per beacon period");
        // Accepted deliveries in the trace match the receivers' own counts.
        let accepts = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::BeaconRx {
                        outcome: RxOutcome::Accept { .. },
                        ..
                    }
                )
            })
            .count() as u64;
        assert!(accepts > 0, "a synchronizing run accepts beacons");
        // The recorder is passive: the run matches an unhooked one.
        let plain = Network::build(&cfg).run();
        assert_eq!(result.tx_successes, plain.tx_successes);
        assert_eq!(result.peak_spread_us, plain.peak_spread_us);
    }
}
