//! Plain-text rendering of experiment outputs: aligned tables and ASCII
//! time-series charts, so the benches and examples can print exactly the
//! rows/series the paper reports without any plotting dependency.

use simcore::TimeSeries;

/// Render an aligned text table. `headers.len()` must equal each row's
/// length.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    // Widths in characters, not bytes: cells contain 'µ' and friends.
    let chars = |s: &str| s.chars().count();
    let mut widths: Vec<usize> = headers.iter().map(|h| chars(h)).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(chars(cell));
        }
    }
    let mut out = String::new();
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s.push('\n');
        s
    };
    out.push_str(&line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&line(&sep));
    for row in rows {
        out.push_str(&line(row));
    }
    out
}

/// Render a time series as an ASCII chart (`height` rows × up to `width`
/// columns) followed by its peak and final values. Peaks survive the
/// downsampling (see [`TimeSeries::downsample_peaks`]).
pub fn render_series_chart(series: &TimeSeries, width: usize, height: usize) -> String {
    if series.is_empty() || width == 0 || height == 0 {
        return format!("{}: (empty)\n", series.name());
    }
    let ds = series.downsample_peaks(width);
    let vals = ds.values();
    let vmax = vals.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    let vmin = 0.0f64;
    let mut grid = vec![vec![' '; vals.len()]; height];
    for (x, &v) in vals.iter().enumerate() {
        let frac = ((v - vmin) / (vmax - vmin)).clamp(0.0, 1.0);
        let y = ((height as f64 - 1.0) * frac).round() as usize;
        for (row, grid_row) in grid.iter_mut().enumerate() {
            let from_bottom = height - 1 - row;
            if from_bottom < y {
                grid_row[x] = '.';
            } else if from_bottom == y {
                grid_row[x] = '*';
            }
        }
    }
    let mut out = format!(
        "{} — max {:.1} µs, final {:.1} µs\n",
        series.name(),
        vmax,
        vals.last().copied().unwrap_or(0.0)
    );
    for (row, grid_row) in grid.iter().enumerate() {
        let level = vmax * (height - 1 - row) as f64 / (height as f64 - 1.0);
        out.push_str(&format!("{level:>10.1} |"));
        out.extend(grid_row.iter());
        out.push('\n');
    }
    let t0 = ds.times().first().unwrap().as_secs_f64();
    let t1 = ds.times().last().unwrap().as_secs_f64();
    out.push_str(&format!(
        "{:>10} +{}\n{:>10}  {:<.1}s{:>pad$.1}s\n",
        "",
        "-".repeat(vals.len()),
        "",
        t0,
        t1,
        pad = vals.len().saturating_sub(4),
    ));
    out
}

/// Render the first `n` sample rows of a series as a CSV-ish table (for
/// logs and EXPERIMENTS.md extracts).
pub fn series_head(series: &TimeSeries, n: usize) -> String {
    let mut out = format!("time_s, {}\n", series.name());
    for (t, v) in series.iter().take(n) {
        out.push_str(&format!("{:.1}, {:.2}\n", t.as_secs_f64(), v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new("test µs");
        for i in 0..100u64 {
            s.push(SimTime::from_secs(i), (i % 10) as f64);
        }
        s
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["m", "latency", "error"],
            &[
                vec!["1".into(), "0.1s".into(), "12µs".into()],
                vec!["2".into(), "0.4s".into(), "7µs".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let w = lines[0].chars().count();
        assert!(
            lines.iter().all(|l| l.chars().count() == w),
            "ragged table:\n{t}"
        );
        assert!(lines[0].contains("latency"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn chart_renders_and_reports_peak() {
        let c = render_series_chart(&series(), 40, 8);
        assert!(c.contains("max 9.0"));
        assert!(c.contains('*'));
        let body_lines = c.lines().count();
        assert_eq!(body_lines, 1 + 8 + 2);
    }

    #[test]
    fn chart_empty_series() {
        let s = TimeSeries::new("empty");
        assert!(render_series_chart(&s, 10, 4).contains("(empty)"));
    }

    #[test]
    fn head_renders_rows() {
        let h = series_head(&series(), 3);
        assert_eq!(h.lines().count(), 4);
        assert!(h.starts_with("time_s"));
    }
}
