//! Protocol invariant checking.
//!
//! The paper states its security properties as invariants (Sec. 4): the
//! guard time δ bounds how far any single accepted beacon can pull a locked
//! clock, and µTESLA's one-way chain makes beacons keyed by already-disclosed
//! keys unacceptable. This module checks those — plus two liveness-flavored
//! invariants (adjusted-clock monotonicity, synced-set spread bound) — from
//! *outside* the protocol implementation, recomputing every property from
//! observed deliveries and published anchors rather than trusting protocol
//! state. An implementation bug that loosens a check therefore shows up as a
//! violation instead of silently passing (see the fault layer's mutation
//! sanity test).
//!
//! The checker attaches to a run as an [`EngineHook`] and is evaluated every
//! beacon period. It is deliberately conservative: invariants that need
//! convergence (the spread bound) arm themselves only after the network has
//! demonstrably settled and suspend across sanctioned disturbances (churn,
//! reference departures, jamming, fault injections), so nominal paper
//! trajectories run violation-free while genuine regressions still trip.

use crate::engine::RunResult;
use crate::instrument::{BpView, DeliveryObs, EngineHook, HookCaps};
use crate::scenario::{ProtocolKind, ScenarioConfig};
use protocols::api::{AnchorRegistry, BeaconPayload, NodeId};
use sstsp_crypto::chain::chain_step_n;
use sstsp_crypto::{ChainElement, IntervalSchedule};

/// Which invariant a violation breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A synchronized station's adjusted clock moved backwards without a
    /// sanctioned discontinuity (coarse resync, domain takeover, injected
    /// clock fault).
    ClockMonotonicity,
    /// A guard-locked station accepted a beacon from its own reference
    /// whose timestamp differed from the station's clock by more than the
    /// fine guard time δ — the paper's bounded-influence property.
    GuardInfluenceBound,
    /// A station accepted a secured beacon whose claimed µTESLA interval
    /// was not the receiver's current interval (replay / stale disclosure /
    /// exhausted chain), or whose disclosed key does not verify against the
    /// sender's published anchor — "never accept after disclosure".
    KeyFreshness,
    /// The synced honest stations' clock spread exceeded the bound after
    /// the network had settled under it.
    SpreadBound,
}

/// One invariant breach.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant.
    pub kind: InvariantKind,
    /// Beacon period it was detected in.
    pub bp: u64,
    /// Station it concerns (receiver for delivery invariants).
    pub node: Option<NodeId>,
    /// Human-readable specifics (measured values vs bounds).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[bp {}] {:?} node={:?}: {}",
            self.bp, self.kind, self.node, self.detail
        )
    }
}

/// Tunable bounds for the checker.
#[derive(Debug, Clone)]
pub struct InvariantConfig {
    /// Tolerance for backward clock movement (float noise), µs.
    pub monotonicity_tol_us: f64,
    /// Spread bound over synced honest stations, µs. `None` disables the
    /// spread invariant (protocols/topologies without a tight bound).
    pub spread_bound_us: Option<f64>,
    /// Consecutive in-bound BPs before the spread invariant arms.
    pub spread_arm_bps: u64,
    /// BPs after a disturbance during which convergence invariants stay
    /// suspended.
    pub settle_bps: u64,
    /// Check the guard-time influence bound (SSTSP only).
    pub check_guard: bool,
    /// Check µTESLA key freshness / validity (SSTSP only).
    pub check_keys: bool,
}

impl InvariantConfig {
    /// Bounds appropriate for `scenario`: full checking for single-hop
    /// SSTSP (the paper's setting, 25 µs spread criterion), security checks
    /// without a spread bound for multi-hop SSTSP (residual per-hop error
    /// has no tight bound there), and the generic invariants only for the
    /// comparison protocols.
    pub fn for_scenario(scenario: &ScenarioConfig) -> Self {
        let sstsp = scenario.protocol == ProtocolKind::Sstsp;
        let single_hop = scenario.topology.is_none();
        InvariantConfig {
            monotonicity_tol_us: 0.01,
            spread_bound_us: (sstsp && single_hop).then_some(25.0),
            spread_arm_bps: 50,
            settle_bps: 200,
            // The δ-influence theorem is a single-hop property: multi-hop
            // domain merges deliberately exempt takeover beacons from the
            // guard (DESIGN.md trade-off), including merges propagating
            // through a station's existing upstream.
            check_guard: sstsp && single_hop,
            check_keys: sstsp,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PrevSample {
    clock_us: f64,
    synchronized: bool,
    clock_steps: u64,
}

/// The invariant checker; attach with
/// [`crate::engine::Network::run_with_hook`], then inspect
/// [`InvariantChecker::violations`].
pub struct InvariantChecker {
    cfg: InvariantConfig,
    schedule: IntervalSchedule,
    guard_fine_us: f64,
    t_p_us: f64,
    violations: Vec<Violation>,
    /// Per-station previous BP-end sample.
    prev: Vec<Option<PrevSample>>,
    /// Per-station BP until which clock discontinuities are excused
    /// (fault-layer injections register themselves here).
    clock_exempt_until: Vec<u64>,
    /// Per-source cache of externally validated chain elements, as
    /// `(key interval, element)` — the same O(Δj) trick verifiers use.
    validated: Vec<Option<(u32, ChainElement)>>,
    /// Last validated (src, interval, element) triple: the same broadcast
    /// reaches many receivers, so memoizing collapses N validations to one.
    last_key_ok: Option<(NodeId, u32, ChainElement)>,
    /// Spread-invariant arming state.
    armed: bool,
    in_bound_streak: u64,
    settle_until_bp: u64,
}

impl InvariantChecker {
    /// Build a checker with explicit bounds for an `n`-station scenario.
    pub fn new(cfg: InvariantConfig, scenario: &ScenarioConfig) -> Self {
        let pc = &scenario.protocol_config;
        InvariantChecker {
            schedule: IntervalSchedule::new(0.0, pc.bp_us, pc.total_intervals),
            guard_fine_us: pc.guard_fine_us,
            t_p_us: pc.t_p_us,
            violations: Vec::new(),
            prev: vec![None; scenario.n_nodes as usize],
            clock_exempt_until: vec![0; scenario.n_nodes as usize],
            validated: vec![None; scenario.n_nodes as usize],
            last_key_ok: None,
            armed: false,
            in_bound_streak: 0,
            settle_until_bp: 0,
            cfg,
        }
    }

    /// Build a checker with [`InvariantConfig::for_scenario`] bounds.
    pub fn for_scenario(scenario: &ScenarioConfig) -> Self {
        Self::new(InvariantConfig::for_scenario(scenario), scenario)
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consume the checker, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// Excuse clock discontinuities on `node` until `until_bp` (inclusive).
    /// The fault layer calls this when it injects clock glitches.
    pub fn exempt_clock(&mut self, node: NodeId, until_bp: u64) {
        if let Some(slot) = self.clock_exempt_until.get_mut(node as usize) {
            *slot = (*slot).max(until_bp);
        }
    }

    /// Register an external disturbance at `bp` (fault injections): the
    /// spread invariant disarms and re-settles.
    pub fn note_disturbance(&mut self, bp: u64) {
        self.armed = false;
        self.in_bound_streak = 0;
        self.settle_until_bp = self.settle_until_bp.max(bp + self.cfg.settle_bps);
    }

    fn push(&mut self, kind: InvariantKind, bp: u64, node: Option<NodeId>, detail: String) {
        self.violations.push(Violation {
            kind,
            bp,
            node,
            detail,
        });
    }

    /// Validate a disclosed key against the sender's published anchor,
    /// using the per-source cache of previously validated elements.
    fn key_valid(
        &mut self,
        anchors: &AnchorRegistry,
        src: NodeId,
        key_interval: u32,
        disclosed: &ChainElement,
    ) -> Result<(), String> {
        if let Some((s, i, el)) = &self.last_key_ok {
            if *s == src && *i == key_interval && el == disclosed {
                return Ok(());
            }
        }
        let Some(anchor) = anchors.get(src) else {
            return Err(format!("no published anchor for source {src}"));
        };
        let ok = match self.validated.get(src as usize).copied().flatten() {
            Some((ci, el)) if key_interval >= ci => {
                let d = (key_interval - ci) as usize;
                if d == 0 {
                    *disclosed == el
                } else {
                    chain_step_n(disclosed, d) == el
                }
            }
            _ => chain_step_n(disclosed, key_interval as usize) == anchor,
        };
        if !ok {
            return Err(format!(
                "disclosed key for interval {key_interval} does not hash to source {src}'s anchor"
            ));
        }
        if key_interval >= 1 {
            if let Some(slot) = self.validated.get_mut(src as usize) {
                *slot = Some((key_interval, *disclosed));
            }
        }
        self.last_key_ok = Some((src, key_interval, *disclosed));
        Ok(())
    }
}

impl EngineHook for InvariantChecker {
    // Not fast-path-safe: the checker audits each delivery's payload and
    // before/after stats via `post_delivery`, which only the per-event
    // slow path computes.
    fn capabilities(&self) -> HookCaps {
        HookCaps {
            fastpath_safe: false,
        }
    }

    fn post_delivery(&mut self, obs: &DeliveryObs<'_>) {
        if !obs.accepted() {
            return;
        }
        let BeaconPayload::Secured(body, auth) = obs.payload else {
            return;
        };
        let bp = obs.ctx.bp;
        let dst = obs.ctx.dst;

        // Never-accept-after-disclosure: the claimed interval must be the
        // receiver's current interval, recomputed from the receiver's clock
        // at the reception instant. A beacon accepted outside its interval
        // window is a replay or a stale-key acceptance; `None` means the
        // chain was exhausted and nothing should be acceptable at all.
        if self.cfg.check_keys {
            let current = self.schedule.interval_at(obs.clock_before_us);
            if current != Some(auth.interval as usize) {
                self.push(
                    InvariantKind::KeyFreshness,
                    bp,
                    Some(dst),
                    format!(
                        "accepted interval {} while receiver's current interval is {:?} \
                         (clock {:.1} µs)",
                        auth.interval, current, obs.clock_before_us
                    ),
                );
            }
            // The disclosed key (key of interval j−1) must verify against
            // the sender's published anchor — recomputed here with our own
            // chain walk, independent of the verifier implementation.
            if auth.interval >= 1 {
                if let Err(why) =
                    self.key_valid(obs.anchors, body.src, auth.interval - 1, &auth.disclosed)
                {
                    self.push(InvariantKind::KeyFreshness, bp, Some(dst), why);
                }
            }
        }

        // Guard influence bound: once locked onto its reference, a station
        // accepting a routine beacon *from that reference* must have seen a
        // timestamp within δ_fine of its own clock. Domain takeovers are
        // sanctioned steps (the clock_steps counter moves) and exempt.
        if self.cfg.check_guard {
            if let (Some(before), Some(after)) = (obs.stats_before, obs.stats_after) {
                let routine = before.guard_locked
                    && obs.ref_before == Some(body.src)
                    && after.clock_steps == before.clock_steps;
                if routine {
                    let ts_ref = body.timestamp_us as f64 + self.t_p_us;
                    let diff = (ts_ref - obs.clock_before_us).abs();
                    if diff > self.guard_fine_us + 1e-6 {
                        self.push(
                            InvariantKind::GuardInfluenceBound,
                            bp,
                            Some(dst),
                            format!(
                                "locked station accepted |ts_ref − c| = {diff:.3} µs > δ = {} µs",
                                self.guard_fine_us
                            ),
                        );
                    }
                }
            }
        }
    }

    fn on_bp_end(&mut self, view: &BpView<'_>) {
        // Adjusted-clock monotonicity for honest synchronized stations.
        for snap in view.nodes {
            let i = snap.id as usize;
            if !snap.honest {
                continue;
            }
            let prev = self.prev[i];
            if snap.present {
                if let Some(p) = prev {
                    let stepped = match snap.stats {
                        Some(s) => s.clock_steps != p.clock_steps,
                        None => false,
                    };
                    let exempt = self.clock_exempt_until[i] >= view.bp || stepped;
                    if p.synchronized
                        && snap.synchronized
                        && !exempt
                        && snap.clock_us + self.cfg.monotonicity_tol_us < p.clock_us
                    {
                        self.push(
                            InvariantKind::ClockMonotonicity,
                            view.bp,
                            Some(snap.id),
                            format!(
                                "adjusted clock moved backwards: {:.3} → {:.3} µs",
                                p.clock_us, snap.clock_us
                            ),
                        );
                    }
                }
                self.prev[i] = Some(PrevSample {
                    clock_us: snap.clock_us,
                    synchronized: snap.synchronized,
                    clock_steps: snap.stats.map_or(0, |s| s.clock_steps),
                });
            } else {
                // Absent stations restart the comparison on return.
                self.prev[i] = None;
            }
        }

        // Spread bound over synced honest present stations, self-arming.
        if let Some(bound) = self.cfg.spread_bound_us {
            if view.disturbed {
                self.note_disturbance(view.bp);
            } else if view.bp > self.settle_until_bp {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut count = 0u32;
                for snap in view.nodes {
                    if snap.present && snap.honest && snap.synchronized {
                        min = min.min(snap.clock_us);
                        max = max.max(snap.clock_us);
                        count += 1;
                    }
                }
                if count >= 2 {
                    let spread = max - min;
                    if spread <= bound {
                        self.in_bound_streak += 1;
                        if self.in_bound_streak >= self.cfg.spread_arm_bps {
                            self.armed = true;
                        }
                    } else if self.armed {
                        self.push(
                            InvariantKind::SpreadBound,
                            view.bp,
                            None,
                            format!(
                                "synced-set spread {spread:.2} µs exceeds the {bound} µs bound \
                                 after settling"
                            ),
                        );
                        // One report per excursion, not one per BP.
                        self.note_disturbance(view.bp);
                    } else {
                        self.in_bound_streak = 0;
                    }
                }
            }
        }
    }
}

/// Run `scenario` with a [`InvariantChecker`] attached and panic on any
/// violation — the guard experiments and tests call through this so every
/// nominal trajectory is invariant-checked.
pub fn run_checked(scenario: &ScenarioConfig) -> RunResult {
    let mut checker = InvariantChecker::for_scenario(scenario);
    let result = crate::engine::Network::build(scenario).run_with_hook(&mut checker);
    let violations = checker.into_violations();
    assert!(
        violations.is_empty(),
        "invariant violations in {} N={} seed={}:\n{}",
        scenario.protocol.name(),
        scenario.n_nodes,
        scenario.seed,
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    result
}
