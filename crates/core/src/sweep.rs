//! Parallel seed / parameter sweeps.
//!
//! Runs are embarrassingly parallel and each is a pure function of its
//! seed, so sweeps parallelize over *runs* with rayon while staying
//! bit-reproducible regardless of thread count (the hpc-parallel
//! data-parallelism discipline: never share mutable state across runs).

use crate::engine::RunResult;
use crate::invariants::run_checked;
use crate::scenario::ScenarioConfig;
use rayon::prelude::*;

/// Run `base` once per seed, in parallel. Every run carries the invariant
/// checker ([`run_checked`]): a violation in any experiment path panics the
/// sweep instead of silently producing numbers from a broken trajectory.
pub fn run_seeds(base: &ScenarioConfig, seeds: &[u64]) -> Vec<RunResult> {
    seeds
        .par_iter()
        .map(|&seed| {
            let mut cfg = base.clone();
            cfg.seed = seed;
            run_checked(&cfg)
        })
        .collect()
}

/// Run each scenario in parallel (parameter sweeps: one config per point),
/// invariant-checked like [`run_seeds`].
pub fn run_configs(configs: &[ScenarioConfig]) -> Vec<RunResult> {
    configs.par_iter().map(run_checked).collect()
}

/// Mean of an optional per-run metric, ignoring runs where it is absent.
/// Returns `(mean, samples)`.
pub fn mean_of<F>(results: &[RunResult], f: F) -> (Option<f64>, usize)
where
    F: Fn(&RunResult) -> Option<f64>,
{
    let vals: Vec<f64> = results.iter().filter_map(f).collect();
    if vals.is_empty() {
        (None, 0)
    } else {
        (
            Some(vals.iter().sum::<f64>() / vals.len() as f64),
            vals.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ProtocolKind;

    #[test]
    fn seed_sweep_is_deterministic_and_parallel_safe() {
        let base = ScenarioConfig::new(ProtocolKind::Sstsp, 5, 8.0, 0);
        let a = run_seeds(&base, &[1, 2, 3]);
        let b = run_seeds(&base, &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spread.values(), y.spread.values());
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn mean_of_handles_missing() {
        let base = ScenarioConfig::new(ProtocolKind::Sstsp, 5, 8.0, 0);
        let rs = run_seeds(&base, &[5, 6]);
        let (mean, n) = mean_of(&rs, |r| r.sync_latency_s);
        assert!(n <= 2);
        if n > 0 {
            assert!(mean.unwrap() >= 0.0);
        }
        let (none, zero) = mean_of(&rs, |_| None);
        assert_eq!(none, None);
        assert_eq!(zero, 0);
    }
}
