//! The network simulation engine.
//!
//! One [`Network`] instance simulates one IBSS for one scenario. Per beacon
//! period it:
//!
//! 1. applies churn (departures / returns) and jamming windows,
//! 2. collects every present station's beacon intent and resolves the
//!    beacon generation window on the shared channel,
//! 3. delivers a successful beacon to every present receiver at the correct
//!    reception instant (each receiver timestamps it with its *own*
//!    drifting clock), subject to independent packet-error draws,
//! 4. gives transmit feedback, closes the BP, and samples the maximum
//!    pairwise difference of the honest stations' synchronized clocks.
//!
//! Because the IBSS is a single collision domain, the entire beacon window
//! outcome is determined at the window start — there is no event that could
//! interleave mid-window — so deliveries are computed inline at their exact
//! reception times rather than round-tripping through the event heap. The
//! heap-based [`simcore::Simulator`] drives the BP sequence itself, which
//! keeps the time bookkeeping honest (monotone, horizon-checked).

use crate::instrument::{
    BatchRx, BpBatch, BpView, DeliveryCtx, DeliveryFate, DeliveryObs, EngineHook, FaultAction,
    NodeSnapshot, NoopHook,
};
use crate::kernel::{BpTimeline, NodeSoa};
use crate::scenario::{ProtocolKind, ScenarioConfig, TopologySpec};
use attacks::{AttackWindow, CampaignMember, FastBeaconAttacker};
use clocks::Oscillator;
use mac80211::ContentionWindow;
use protocols::api::{
    AnchorRegistry, BeaconIntent, BeaconPayload, MeshRole, NodeCtx, NodeId, ProtocolConfig,
    ReceivedBeacon, SyncProtocol,
};
use protocols::{AspNode, AtspNode, RkNode, SatsfNode, SstspNode, TatspNode, TsfNode};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use simcore::rng::StreamDomain;
use simcore::{
    CountingRng, Histogram, RngStreams, SimControl, SimDuration, SimTime, Simulator, TimeSeries,
};
use sstsp_telemetry as telemetry;
use std::sync::Arc;
use sync_analysis::{SpreadTracker, SyncCriterion};
use wireless::{
    resolve_mesh, resolve_multihop, Channel, Delivery, DomainDecomposition, MeshResolver,
    MhAttempt, MhDelivery, PhyParams, Topology, TxAttempt, WindowOutcome,
};

/// Binning of the per-BP spread distribution recorded into telemetry:
/// 0.5 µs resolution up to 500 µs; larger spreads land in the overflow
/// bucket and surface as an `>=hi` tail in rendered snapshots.
const SPREAD_DIST: telemetry::DistSpec = telemetry::DistSpec {
    lo: 0.0,
    hi: 500.0,
    bins: 1000,
};

/// End-of-run summary of one collision domain in a mesh scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSummary {
    /// Collision-domain index.
    pub domain: u32,
    /// Stations assigned to the domain (gateways included).
    pub nodes: u32,
    /// The domain member holding a reference role at run end (subordinate
    /// or sovereign), if any.
    pub final_reference: Option<NodeId>,
    /// Max pairwise clock difference across the domain's honest
    /// synchronized members at run end, µs (`None` with fewer than two).
    pub end_spread_us: Option<f64>,
}

/// Aggregate outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Maximum clock difference across honest present stations, sampled at
    /// the end of every BP (µs) — the paper's figures.
    pub spread: TimeSeries,
    /// First time the network stays under the 25 µs criterion, seconds.
    pub sync_latency_s: Option<f64>,
    /// Maximum spread observed after synchronization (µs).
    pub steady_error_us: Option<f64>,
    /// Largest spread ever observed (µs).
    pub peak_spread_us: f64,
    /// Successful (collision-free) beacon transmissions.
    pub tx_successes: u64,
    /// Beacon windows lost to collisions.
    pub tx_collisions: u64,
    /// Beacon windows with no transmission at all.
    pub silent_windows: u64,
    /// Beacon windows destroyed by jamming.
    pub jammed_windows: u64,
    /// Number of reference-role changes observed (SSTSP).
    pub reference_changes: u64,
    /// Station holding the reference role at the end, if any.
    pub final_reference: Option<NodeId>,
    /// Whether the attacker ever held the reference role.
    pub attacker_became_reference: bool,
    /// Aggregated SSTSP guard-time rejections across honest stations.
    pub guard_rejections: u64,
    /// Aggregated SSTSP µTESLA rejections across honest stations.
    pub mutesla_rejections: u64,
    /// Aggregated successful SSTSP clock re-targetings.
    pub retargets: u64,
    /// Attack alerts raised by the recovery extension (if enabled).
    pub alerts: u64,
    /// Multi-hop runs only: per honest station `(hop distance from the
    /// final reference, |clock − reference clock| at the end of the run)`.
    pub hop_profile: Option<Vec<(u32, f64)>>,
    /// Mesh runs only: one summary per collision domain.
    pub domain_report: Option<Vec<DomainSummary>>,
    /// Protocol name.
    pub protocol: &'static str,
    /// Network size.
    pub n_nodes: u32,
    /// Seed the run was generated from.
    pub seed: u64,
}

/// Reusable per-BP scratch buffers, hoisted out of the hot loop so a
/// steady-state beacon period performs no heap allocation. Dense vectors
/// indexed by station id stand in for NodeId-keyed hash maps; they are
/// cleared (not reallocated) at the start of each window.
struct Scratch {
    /// Single-hop transmission attempts for the current window.
    tx_attempts: Vec<TxAttempt>,
    /// Multi-hop transmission attempts for the current window.
    mh_attempts: Vec<MhAttempt>,
    /// Beacon produced by each transmitting station this window.
    payloads: Vec<Option<BeaconPayload>>,
    /// Whether each transmitter reached at least one receiver this window.
    reached: Vec<bool>,
    /// Clocks of honest synchronized present stations, sampled at BP end.
    clocks: Vec<f64>,
    /// Fast path: receiver ids of the current window, in id order.
    rx_ids: Vec<u32>,
    /// Fast path: batched per-receiver delivery verdicts (parallel to
    /// `rx_ids`).
    rx_fates: Vec<Delivery>,
    /// Mesh fast path: present-receiver deliveries of the current window,
    /// in delivery order (parallel to `rx_fates` after the batch draw).
    mh_rx: Vec<MhDelivery>,
    /// Passive-hook fast path: stations that transmitted this BP, in slot
    /// order, buffered for the end-of-BP batch callback.
    batch_txs: Vec<NodeId>,
    /// Passive-hook fast path: completed deliveries of this BP, in
    /// delivery order, buffered for the end-of-BP batch callback.
    batch_rxs: Vec<BatchRx>,
    /// Passive-hook fast path: per-domain reference holders at BP end.
    domain_refs: Vec<Option<NodeId>>,
    /// Mesh fast path: reception instant per transmitting station of the
    /// current window (constant across that station's receivers, so it is
    /// computed once in the beacon pass instead of per delivery).
    t_rx_by_tx: Vec<SimTime>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            tx_attempts: Vec::with_capacity(n),
            mh_attempts: Vec::with_capacity(n),
            payloads: vec![None; n],
            reached: vec![false; n],
            clocks: Vec::with_capacity(n),
            rx_ids: Vec::with_capacity(n),
            rx_fates: Vec::with_capacity(n),
            mh_rx: Vec::with_capacity(n),
            batch_txs: Vec::new(),
            batch_rxs: Vec::new(),
            domain_refs: Vec::new(),
            t_rx_by_tx: vec![SimTime::ZERO; n],
        }
    }
}

/// Run-level scratch block for the engine's hot-loop telemetry counters.
///
/// The hot loop increments these plain `u64`s unconditionally — cheaper
/// than even the relaxed-atomic enabled check a `counter_add` call starts
/// with — and [`flush`](BpCounters::flush) moves the whole block into the
/// thread's registry shard with a single lock, once per *run*, instead of
/// one shard lock per recorded event (~2 n per BP at n stations) or per
/// beacon period (nine string-keyed map lookups every BP, which dominated
/// the enabled-mode overhead on small scenarios). Totals are identical to
/// per-event recording because counter merge is commutative;
/// `tests/telemetry_reconcile.rs` pins the identities. The trade: the
/// engine's own counters become visible to [`telemetry::snapshot`] only
/// after the run — the same cadence the per-event [`LocalCounter`] sites
/// already have (the run epilogue calls `flush_local`).
#[derive(Default)]
struct BpCounters {
    window_silent: u64,
    window_jammed: u64,
    window_collision: u64,
    window_success: u64,
    beacon_tx: u64,
    rx_attempt: u64,
    rx_lost: u64,
    rx_hook_dropped: u64,
    rx_delivered: u64,
}

impl BpCounters {
    /// Flush every non-zero counter to the registry shard (one lock) and
    /// zero the block. A no-op beyond the zeroing when telemetry is off.
    #[inline]
    fn flush(&mut self) {
        telemetry::counter_add_many(&[
            ("engine.window.silent", self.window_silent),
            ("engine.window.jammed", self.window_jammed),
            ("engine.window.collision", self.window_collision),
            ("engine.window.success", self.window_success),
            ("engine.beacon.tx", self.beacon_tx),
            ("engine.beacon.rx_attempt", self.rx_attempt),
            ("engine.beacon.rx_lost", self.rx_lost),
            ("engine.beacon.rx_hook_dropped", self.rx_hook_dropped),
            ("engine.beacon.rx_delivered", self.rx_delivered),
        ]);
        *self = BpCounters::default();
    }
}

/// A simulated IBSS ready to run.
pub struct Network {
    scenario: ScenarioConfig,
    phy: PhyParams,
    window: ContentionWindow,
    channel: Channel,
    nodes: Vec<Box<dyn SyncProtocol>>,
    oscs: Vec<Oscillator>,
    present: Vec<bool>,
    honest: Vec<bool>,
    proto_rngs: Vec<ChaCha12Rng>,
    backoff_rngs: Vec<ChaCha12Rng>,
    chan_rng: ChaCha12Rng,
    jitter_rng: ChaCha12Rng,
    scenario_rng: ChaCha12Rng,
    anchors: AnchorRegistry,
    topology: Option<Topology>,
    domains: Option<DomainDecomposition>,
    scratch: Scratch,
}

/// Context builder that splits borrows of the engine's parallel arrays.
macro_rules! node_ctx {
    ($proto_rngs:expr, $anchors:expr, $pcfg:expr, $id:expr, $local:expr) => {
        NodeCtx {
            id: $id as NodeId,
            local_us: $local,
            rng: &mut $proto_rngs[$id as usize],
            anchors: $anchors,
            config: $pcfg,
        }
    };
}

impl Network {
    /// Instantiate every station, oscillator and RNG stream for `scenario`.
    pub fn build(scenario: &ScenarioConfig) -> Self {
        let streams = RngStreams::new(scenario.seed);
        let n = scenario.n_nodes as usize;
        let phy = PhyParams::paper_ofdm();

        // Receivers estimate t_p for the beacon size their protocol uses.
        let mut sc = scenario.clone();
        sc.protocol_config.t_p_us = phy.t_p(scenario.protocol.secured()).as_us_f64();
        sc.protocol_config.beacon_airtime_slots = if scenario.protocol.secured() {
            phy.sstsp_beacon_slots as u32
        } else {
            phy.tsf_beacon_slots as u32
        };

        // Multi-hop topology (the future-work extension): built up front
        // from the scenario stream; SSTSP members relay the timing wave.
        let mut domains: Option<DomainDecomposition> = None;
        let topology = sc.topology.map(|spec| match spec {
            TopologySpec::Line => Topology::line(sc.n_nodes),
            TopologySpec::Ring => Topology::ring(sc.n_nodes),
            TopologySpec::Grid { cols, rows } => {
                assert_eq!(cols * rows, sc.n_nodes, "grid must cover all stations");
                Topology::grid(cols, rows)
            }
            TopologySpec::RandomDisk { side, range } => {
                let mut topo_rng = streams.stream(StreamDomain::Scenario, 1);
                Topology::random_disk(sc.n_nodes, side, range, &mut topo_rng)
            }
            TopologySpec::Bridged {
                domains: nd,
                cols,
                rows,
            } => {
                let (topo, decomp) = Topology::bridged(nd, cols, rows);
                assert_eq!(
                    topo.len(),
                    sc.n_nodes,
                    "bridged mesh must cover all stations"
                );
                domains = Some(decomp);
                topo
            }
        });
        if topology.is_some() && sc.protocol == ProtocolKind::Sstsp {
            sc.protocol_config.multihop_relay = true;
            // An explicit collision-domain decomposition switches SSTSP to
            // per-domain reference election.
            sc.protocol_config.domain_election = domains.is_some();
        }

        let mut osc_rng = streams.stream(StreamDomain::Oscillator, 0);
        let oscs = sc.drift.sample_population(&mut osc_rng, n);

        let attacker_id = sc.attacker_id();
        // Campaign members are compromised *stations*, constructed as
        // wrappers around the honest protocol exactly like the lone
        // attacker; the member range takes precedence over the lone
        // attacker slot if both are configured.
        let campaign_ids = sc.campaign_member_ids();
        let mut nodes: Vec<Box<dyn SyncProtocol>> = Vec::with_capacity(n);
        let mut honest = vec![true; n];
        for id in 0..n as u32 {
            if campaign_ids.contains(&id) {
                let spec = sc.campaign.expect("campaign ids imply spec");
                let idx = id - campaign_ids.start;
                honest[id as usize] = false;
                nodes.push(match sc.protocol {
                    ProtocolKind::Sstsp => {
                        Box::new(CampaignMember::new(spec, idx, SstspNode::founding(), true))
                    }
                    _ => Box::new(CampaignMember::new(spec, idx, TsfNode::new(), false)),
                });
            } else if Some(id) == attacker_id {
                let spec = sc.attacker.expect("attacker id implies spec");
                let window = AttackWindow {
                    start_us: spec.start_s * 1e6,
                    end_us: spec.end_s * 1e6,
                };
                honest[id as usize] = false;
                nodes.push(match sc.protocol {
                    ProtocolKind::Sstsp => Box::new(FastBeaconAttacker::new(
                        SstspNode::founding(),
                        window,
                        spec.error_us,
                        true,
                    )),
                    _ => Box::new(FastBeaconAttacker::new(
                        TsfNode::new(),
                        window,
                        spec.error_us,
                        false,
                    )),
                });
            } else {
                nodes.push(match sc.protocol {
                    ProtocolKind::Tsf => Box::new(TsfNode::new()),
                    ProtocolKind::Atsp => Box::new(AtspNode::new()),
                    ProtocolKind::Tatsp => Box::new(TatspNode::new()),
                    ProtocolKind::Satsf => Box::new(SatsfNode::new()),
                    ProtocolKind::Asp => Box::new(AspNode::new()),
                    ProtocolKind::Rk => Box::new(RkNode::new()),
                    ProtocolKind::Sstsp => Box::new(SstspNode::founding()),
                });
            }
        }

        // Distribute deployment-time mesh roles: each station learns its
        // domain, gateway status and the shared station→domain map (out of
        // band, like key anchors — beacon bytes stay identical).
        if let Some(d) = &domains {
            if sc.protocol_config.domain_election {
                let domain_of = Arc::new(d.domain_of.clone());
                let bridges = Arc::new(d.bridges.clone());
                for id in 0..n as u32 {
                    nodes[id as usize].set_mesh_role(MeshRole {
                        domain: d.domain_of(id),
                        num_domains: d.len() as u32,
                        bridge_index: d.bridges.iter().position(|&b| b == id).map(|i| i as u32),
                        domain_of: domain_of.clone(),
                        bridges: bridges.clone(),
                    });
                }
            }
        }

        Network {
            phy,
            window: ContentionWindow::new(sc.protocol_config.w, phy.slot_us),
            channel: Channel::new(sc.per),
            nodes,
            oscs,
            present: vec![true; n],
            honest,
            proto_rngs: (0..n)
                .map(|i| streams.stream(StreamDomain::Protocol, i as u64))
                .collect(),
            backoff_rngs: (0..n)
                .map(|i| streams.stream(StreamDomain::MacBackoff, i as u64))
                .collect(),
            chan_rng: streams.stream(StreamDomain::ChannelError, 0),
            jitter_rng: streams.stream(StreamDomain::TimestampJitter, 0),
            scenario_rng: streams.stream(StreamDomain::Scenario, 0),
            anchors: AnchorRegistry::new(),
            topology,
            domains,
            scratch: Scratch::new(n),
            scenario: sc,
        }
    }

    /// Run the scenario to completion.
    pub fn run(self) -> RunResult {
        self.run_with_hook(&mut NoopHook)
    }

    /// Run the scenario with an [`EngineHook`] attached (fault injection,
    /// invariant checking). Running with [`NoopHook`] — or any hook that
    /// neither drops nor mutates deliveries nor emits fault actions — is
    /// bit-identical to [`Network::run`]: the hook only ever sees copies,
    /// and no engine RNG stream is consulted on its behalf.
    pub fn run_with_hook(self, hook: &mut dyn EngineHook) -> RunResult {
        let active = hook.active();
        let pcfg: ProtocolConfig = self.scenario.protocol_config.clone();
        let bp = SimDuration::from_us_f64(pcfg.bp_us);
        let total_bps = self.scenario.total_bps();
        let horizon = SimTime::ZERO + bp * (total_bps + 1);
        // Precompute churn departure instants (BP indices).
        let churn_bps: Vec<u64> = match self.scenario.churn {
            Some(c) => {
                let period_bps = (c.period_s * 1e6 / pcfg.bp_us).round() as u64;
                (1..)
                    .map(|k| k * period_bps)
                    .take_while(|&b| b < total_bps)
                    .collect()
            }
            None => Vec::new(),
        };
        let churn_absence_bps = self
            .scenario
            .churn
            .map(|c| (c.absence_s * 1e6 / pcfg.bp_us).round() as u64)
            .unwrap_or(0);
        let ref_leave_bps: Vec<u64> = self
            .scenario
            .ref_leaves_s
            .iter()
            .map(|&s| (s * 1e6 / pcfg.bp_us).round() as u64)
            .collect();
        let ref_absence_bps = (self.scenario.ref_absence_s * 1e6 / pcfg.bp_us).round() as u64;

        // Quiescent-BP timeline: which BPs have *any* scheduled scenario
        // event (churn/reference departure, jam window, attacker window).
        // The fast path skips the per-BP event scans on quiet BPs.
        let windows_s: Vec<(f64, f64)> = self
            .scenario
            .jam_windows
            .iter()
            .map(|w| (w.start_s, w.end_s))
            .chain(self.scenario.attacker.map(|a| (a.start_s, a.end_s)))
            .chain(self.scenario.campaign.map(|c| (c.start_s, c.end_s)))
            .collect();
        let timeline = BpTimeline::build(total_bps, bp, &churn_bps, &ref_leave_bps, &windows_s);

        // (bp index, station) pairs due to rejoin.
        let mut returns: Vec<(u64, u32)> = Vec::new();

        let mut tracker = SpreadTracker::new(format!(
            "{} N={}",
            self.scenario.protocol.name(),
            self.scenario.n_nodes
        ));
        let mut tx_successes = 0u64;
        let mut tx_collisions = 0u64;
        let mut silent_windows = 0u64;
        let mut jammed_windows = 0u64;
        let mut reference_changes = 0u64;
        let mut last_reference: Option<NodeId> = None;
        let mut attacker_became_reference = false;

        // Destructure for borrow-friendly access inside the loop.
        let Network {
            scenario,
            phy,
            window,
            mut channel,
            mut nodes,
            mut oscs,
            mut present,
            honest,
            mut proto_rngs,
            mut backoff_rngs,
            chan_rng,
            jitter_rng,
            mut scenario_rng,
            mut anchors,
            topology,
            domains,
            mut scratch,
            ..
        } = self;
        // Transparent draw-count wrappers: the wrapped streams are
        // bit-identical to the bare ones, so telemetry on RNG consumption
        // cannot perturb the run.
        let mut chan_rng = CountingRng::new(chan_rng);
        let mut jitter_rng = CountingRng::new(jitter_rng);

        // Stations under adversary control: the lone attacker and every
        // campaign member (reference capture is tracked for all of them).
        let adversary_ids: Vec<NodeId> = (0..scenario.n_nodes)
            .filter(|&i| !honest[i as usize])
            .collect();

        // The large-n fast path (dense SoA node state, cached static
        // intents, batched delivery draws, quiescent-BP scan skipping) is
        // bit-identical to the plain loop by construction. It runs when
        // the attached hook declares itself fast-path-safe (a passive
        // observer fed one batched callback per BP instead of per-event
        // dispatch), and covers mesh topologies that carry a domain
        // decomposition (per-domain window resolution); topologies
        // without one (line/ring/grid/rgg) stay on the plain loop. It can
        // be forced off for cross-checking with SSTSP_NO_FASTPATH=1.
        let caps = hook.capabilities();
        // Campaign runs always take the plain loop: members form intents
        // from live protocol state (reference tracking, replay tapes,
        // transmission parity) that the SoA static-intent cache cannot
        // represent.
        let fastpath = (!active || caps.fastpath_safe)
            && (topology.is_none() || domains.is_some())
            && scenario.campaign.is_none()
            && std::env::var("SSTSP_NO_FASTPATH").map_or(true, |v| v != "1");
        // A fast-path-safe hook rides along passively; `hooked` guards the
        // per-event callbacks the slow path owes a full-fidelity hook.
        let passive = active && fastpath;
        let hooked = active && !fastpath;
        // One counter tick per run records which loop actually executed, so
        // equivalence tests can *prove* the slow path ran instead of
        // trusting the gate above.
        telemetry::counter_add(
            if fastpath {
                "engine.path.fast"
            } else {
                "engine.path.slow"
            },
            1,
        );
        let mut soa = NodeSoa::new(scenario.n_nodes as usize);
        // Mesh fast path: reusable per-domain window resolver, built once
        // per run from the decomposition (domain-major index permutation
        // plus audible-domain lists and scratch buffers).
        let mut mesh_resolver = match (&topology, &domains) {
            (Some(t), Some(d)) if fastpath => Some(MeshResolver::new(t, d)),
            _ => None,
        };

        // Coarse per-phase wall-clock accounting for the BP loop, emitted
        // at run end through the structured log (`engine.prof`, info level
        // — so `SSTSP_PROF=1 SSTSP_LOG=info`). Off, it costs one branch
        // per phase boundary per BP.
        let prof = std::env::var("SSTSP_PROF").is_ok();
        let mut prof_ns = [0u128; 6];

        // Node initiation (seed draw + deferred anchor registration).
        let t_init = std::time::Instant::now();
        for id in 0..scenario.n_nodes {
            let local = oscs[id as usize].local_us(SimTime::ZERO);
            let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
            nodes[id as usize].init(&mut ctx);
            if fastpath {
                soa.refresh(id as usize, &*nodes[id as usize], &pcfg);
            }
        }
        if prof {
            telemetry::log::info("engine.prof", || {
                format!(
                    "prof      init: {:8.3} ms",
                    t_init.elapsed().as_secs_f64() * 1e3
                )
            });
        }
        hook.on_run_start(&scenario, &anchors);

        // Fault-layer state: actions collected at each BP start, and the
        // fault-layer jamming flag OR-ed with the scenario's jam windows.
        let mut fault_actions: Vec<FaultAction> = Vec::new();
        let mut fault_jam = false;
        // Hot-loop telemetry is batched: plain increments during the BP,
        // one shard flush per run (see `BpCounters`). The per-BP spread
        // sample accumulates into a local histogram folded in at run end
        // the same way (`dist_merge`).
        let mut bp_counters = BpCounters::default();
        let mut spread_hist: Option<Histogram> = None;
        // Tracks whether every station is currently present; maintained at
        // each non-quiet BP so the delivery loops can skip the per-entry
        // membership filter in the (overwhelmingly common) full-mesh case.
        let mut all_present = present.iter().all(|&p| p);
        let mut snapshots: Vec<NodeSnapshot> =
            Vec::with_capacity(if hooked { scenario.n_nodes as usize } else { 0 });

        let mut sim: Simulator<u64> = Simulator::new(horizon);
        if hooked {
            // Instrumented runs also cross-check simcore's event ordering
            // from the outside via the probe hook.
            let mut last = SimTime::ZERO;
            sim.set_probe(Box::new(move |t, _| {
                assert!(t >= last, "simulator delivered events out of order");
                last = t;
            }));
        }
        sim.schedule_at(SimTime::ZERO + bp, 1u64);

        sim.run(|sim, ev| {
            let k: u64 = ev.payload;
            let t0 = ev.time;
            let mut prof_t = prof.then(std::time::Instant::now);
            macro_rules! lap {
                ($i:expr) => {
                    if let Some(t) = prof_t.as_mut() {
                        let n = std::time::Instant::now();
                        prof_ns[$i] += n.duration_since(*t).as_nanos();
                        *t = n;
                    }
                };
            }

            // Anything that perturbs the network this BP (churn, departures,
            // jamming, attacker activity, fault injections, reference
            // changes); convergence invariants suspend after disturbances.
            let mut disturbed = false;

            if hooked {
                fault_actions.clear();
                hook.on_bp_start(k, t0, &mut fault_actions);
            }

            // Quiescent-BP skip-ahead: nothing is scheduled this BP (no
            // churn or reference departure, no jam or attack window, no
            // rejoin due) and no hook can inject faults, so the event
            // scans below would all no-op. Skip straight to the beacon
            // window; the only state they could have touched is the
            // jammer flag, which a quiet BP always leaves released.
            let quiet =
                fastpath && !timeline.interesting(k) && returns.iter().all(|&(due, _)| due != k);
            if quiet {
                channel.set_jammed(false);
            } else {
                // --- Churn & reference departures -------------------------
                returns.retain(|&(due, id)| {
                    if due == k {
                        present[id as usize] = true;
                        let local = oscs[id as usize].local_us(t0);
                        let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                        nodes[id as usize].on_join(&mut ctx);
                        if fastpath {
                            soa.refresh(id as usize, &*nodes[id as usize], &pcfg);
                        }
                        disturbed = true;
                        false
                    } else {
                        true
                    }
                });
                if churn_bps.contains(&k) {
                    let churn = scenario.churn.expect("churn configured");
                    let candidates: Vec<u32> = (0..scenario.n_nodes)
                        .filter(|&id| {
                            present[id as usize]
                                && honest[id as usize]
                                && !nodes[id as usize].is_reference()
                        })
                        .collect();
                    let quota = ((scenario.n_nodes as f64 * churn.fraction).round() as usize)
                        .min(candidates.len());
                    // Deterministic partial Fisher-Yates from the scenario stream.
                    let mut pool = candidates;
                    for pick in 0..quota {
                        let j = scenario_rng.random_range(pick..pool.len());
                        pool.swap(pick, j);
                        let id = pool[pick];
                        present[id as usize] = false;
                        let local = oscs[id as usize].local_us(t0);
                        let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                        nodes[id as usize].on_leave(&mut ctx);
                        returns.push((k + churn_absence_bps, id));
                    }
                    disturbed |= quota > 0;
                }
                if ref_leave_bps.contains(&k) {
                    if let Some(id) = (0..scenario.n_nodes)
                        .find(|&id| present[id as usize] && nodes[id as usize].is_reference())
                    {
                        present[id as usize] = false;
                        let local = oscs[id as usize].local_us(t0);
                        let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                        nodes[id as usize].on_leave(&mut ctx);
                        returns.push((k + ref_absence_bps, id));
                        disturbed = true;
                    }
                }

                // --- Fault injection --------------------------------------
                // Applied after churn so a fault plan targeting the reference
                // sees the network exactly as the scenario left it this BP.
                for &action in fault_actions.iter() {
                    disturbed = true;
                    match action {
                        FaultAction::Crash {
                            node,
                            rejoin_after_bps,
                        } => {
                            if present[node as usize] {
                                present[node as usize] = false;
                                let local = oscs[node as usize].local_us(t0);
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, node, local);
                                nodes[node as usize].on_leave(&mut ctx);
                                if let Some(r) = rejoin_after_bps {
                                    returns.push((k + r.max(1), node));
                                }
                            }
                        }
                        FaultAction::KillReference { rejoin_after_bps } => {
                            if let Some(id) = (0..scenario.n_nodes).find(|&id| {
                                present[id as usize] && nodes[id as usize].is_reference()
                            }) {
                                present[id as usize] = false;
                                let local = oscs[id as usize].local_us(t0);
                                let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                nodes[id as usize].on_leave(&mut ctx);
                                if let Some(r) = rejoin_after_bps {
                                    returns.push((k + r.max(1), id));
                                }
                            }
                        }
                        FaultAction::CrashDomain {
                            domain,
                            rejoin_after_bps,
                        } => {
                            if let Some(d) = &domains {
                                let members = &d.domains[domain as usize % d.len()];
                                for &node in members {
                                    if d.is_bridge(node) || !present[node as usize] {
                                        continue;
                                    }
                                    present[node as usize] = false;
                                    let local = oscs[node as usize].local_us(t0);
                                    let mut ctx =
                                        node_ctx!(proto_rngs, &mut anchors, &pcfg, node, local);
                                    nodes[node as usize].on_leave(&mut ctx);
                                    if let Some(r) = rejoin_after_bps {
                                        returns.push((k + r.max(1), node));
                                    }
                                }
                            }
                        }
                        FaultAction::KillBridge {
                            bridge,
                            rejoin_after_bps,
                        } => {
                            if let Some(d) = &domains {
                                if !d.bridges.is_empty() {
                                    let node = d.bridges[bridge as usize % d.bridges.len()];
                                    if present[node as usize] {
                                        present[node as usize] = false;
                                        let local = oscs[node as usize].local_us(t0);
                                        let mut ctx =
                                            node_ctx!(proto_rngs, &mut anchors, &pcfg, node, local);
                                        nodes[node as usize].on_leave(&mut ctx);
                                        if let Some(r) = rejoin_after_bps {
                                            returns.push((k + r.max(1), node));
                                        }
                                    }
                                }
                            }
                        }
                        FaultAction::ClockStep { node, delta_us } => {
                            oscs[node as usize].step_by(delta_us)
                        }
                        FaultAction::ClockFreeze { node } => oscs[node as usize].freeze(t0),
                        FaultAction::ClockUnfreeze { node } => oscs[node as usize].unfreeze(t0),
                        FaultAction::SetBurstLoss(p) => channel.set_burst_loss(p),
                        FaultAction::SetJammed(on) => fault_jam = on,
                    }
                }

                // --- Jamming ----------------------------------------------
                let t_secs = t0.as_secs_f64();
                channel.set_jammed(
                    fault_jam
                        || scenario
                            .jam_windows
                            .iter()
                            .any(|w| t_secs >= w.start_s && t_secs < w.end_s),
                );
                disturbed |= channel.is_jammed();
                if let Some(a) = scenario.attacker {
                    disturbed |= t_secs >= a.start_s && t_secs < a.end_s;
                }
                if let Some(c) = scenario.campaign {
                    disturbed |= c.active_at(t_secs);
                }
                // Churn, departures, and faults all run above, so a
                // non-quiet BP recomputes the all-present flag once here;
                // quiet BPs cannot change membership and keep it as-is.
                all_present = present.iter().all(|&p| p);
            } // end of the non-quiet event scans
            lap!(0);

            // --- Beacon generation window -----------------------------
            match &topology {
                None => {
                    // Single-hop fast path: the whole window is decided by
                    // the earliest occupied slot.
                    let attempts = &mut scratch.tx_attempts;
                    attempts.clear();
                    for id in 0..scenario.n_nodes {
                        if !present[id as usize] {
                            continue;
                        }
                        // Fast path: serve the intent from the SoA cache
                        // when the protocol predicted it. A cached intent
                        // is one the real call would return without
                        // consuming randomness, so skipping the call (and
                        // the oscillator read feeding its context) leaves
                        // every RNG stream untouched.
                        let intent = match soa.static_intent(id as usize).filter(|_| fastpath) {
                            Some(si) => {
                                #[cfg(debug_assertions)]
                                {
                                    let pos = proto_rngs[id as usize].stream_pos();
                                    let local = oscs[id as usize].local_us(t0);
                                    let mut ctx =
                                        node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                    let real = nodes[id as usize].intent(&mut ctx);
                                    assert_eq!(real, si, "static intent diverged for node {id}");
                                    assert_eq!(
                                        proto_rngs[id as usize].stream_pos(),
                                        pos,
                                        "static intent consumed randomness for node {id}"
                                    );
                                }
                                si
                            }
                            None => {
                                let local = oscs[id as usize].local_us(t0);
                                let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                nodes[id as usize].intent(&mut ctx)
                            }
                        };
                        match intent {
                            BeaconIntent::Silent => {}
                            // Relaying is pointless when everyone already
                            // hears the reference directly.
                            BeaconIntent::RelayAfterRx(_) => {}
                            BeaconIntent::Contend => {
                                let slot = window.draw_slot(&mut backoff_rngs[id as usize]);
                                attempts.push(TxAttempt { station: id, slot });
                            }
                            BeaconIntent::FixedSlot(slot) => {
                                attempts.push(TxAttempt { station: id, slot });
                            }
                        }
                    }

                    lap!(1);
                    let mut outcome = channel.resolve_window(attempts);
                    if hooked {
                        // Replay seam: a schedule-driven hook substitutes
                        // the recorded outcome after cross-checking `live`.
                        if let Some(replayed) = hook.on_window(k, &outcome) {
                            outcome = replayed;
                        }
                    }
                    match outcome {
                        WindowOutcome::Silent => {
                            silent_windows += 1;
                            bp_counters.window_silent += 1;
                        }
                        WindowOutcome::Jammed { victims } => {
                            jammed_windows += 1;
                            bp_counters.window_jammed += 1;
                            for id in victims {
                                let local = oscs[id as usize].local_us(t0);
                                let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                nodes[id as usize].on_tx_outcome(&mut ctx, true);
                            }
                        }
                        WindowOutcome::Collision { colliders, .. } => {
                            tx_collisions += 1;
                            bp_counters.window_collision += 1;
                            for id in colliders {
                                let local = oscs[id as usize].local_us(t0);
                                let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                nodes[id as usize].on_tx_outcome(&mut ctx, true);
                            }
                        }
                        WindowOutcome::Success { winner, slot } => {
                            tx_successes += 1;
                            bp_counters.window_success += 1;
                            bp_counters.beacon_tx += 1;
                            let t_tx = t0 + window.delay_of(slot);
                            if hooked {
                                hook.on_beacon_tx(k, winner, t_tx);
                            } else if passive {
                                scratch.batch_txs.push(winner);
                            }
                            // Sub-µs hardware timestamping jitter.
                            let jitter =
                                jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                            let tx_local = oscs[winner as usize].local_us(t_tx) + jitter;
                            let beacon = {
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, winner, tx_local);
                                nodes[winner as usize].make_beacon(&mut ctx)
                            };
                            {
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, winner, tx_local);
                                nodes[winner as usize].on_tx_outcome(&mut ctx, false);
                            }
                            let airtime = phy.beacon_airtime(beacon.is_secured());
                            let t_rx = t_tx + airtime + phy.propagation();
                            if fastpath {
                                // Batched-draw receiver path: collect the
                                // receiver set, take every channel-error
                                // draw in one pass (identical stream
                                // consumption — the jitter draws live on a
                                // separate stream, so splitting the loop
                                // cannot reorder either), then process the
                                // survivors branch-lean: no hook checks,
                                // no per-delivery observer state.
                                let rx_ids = &mut scratch.rx_ids;
                                rx_ids.clear();
                                for id in 0..scenario.n_nodes {
                                    if id != winner && present[id as usize] {
                                        rx_ids.push(id);
                                    }
                                }
                                bp_counters.rx_attempt += rx_ids.len() as u64;
                                channel.deliver_batch(
                                    &mut chan_rng,
                                    rx_ids.len(),
                                    &mut scratch.rx_fates,
                                );
                                for (&id, &fate) in rx_ids.iter().zip(scratch.rx_fates.iter()) {
                                    if fate == Delivery::Lost {
                                        bp_counters.rx_lost += 1;
                                        continue;
                                    }
                                    bp_counters.rx_delivered += 1;
                                    let rx_jitter =
                                        jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                                    let local_rx = oscs[id as usize].local_us(t_rx) + rx_jitter;
                                    // Passive capture reads the *virtual*
                                    // clock: the SoA entry is refreshed only
                                    // at BP end and can be stale mid-window.
                                    let (clock_before, stats_before) = if passive {
                                        (
                                            nodes[id as usize].clock_us(local_rx),
                                            nodes[id as usize].sstsp_stats(),
                                        )
                                    } else {
                                        (0.0, None)
                                    };
                                    {
                                        let mut ctx = node_ctx!(
                                            proto_rngs,
                                            &mut anchors,
                                            &pcfg,
                                            id,
                                            local_rx
                                        );
                                        nodes[id as usize].on_beacon(
                                            &mut ctx,
                                            ReceivedBeacon {
                                                payload: beacon,
                                                local_rx_us: local_rx,
                                            },
                                        );
                                    }
                                    if passive {
                                        scratch.batch_rxs.push(BatchRx {
                                            src: winner,
                                            dst: id,
                                            t_rx,
                                            clock_before_us: clock_before,
                                            stats_before,
                                            stats_after: nodes[id as usize].sstsp_stats(),
                                        });
                                    }
                                }
                            } else {
                                for id in 0..scenario.n_nodes {
                                    if id == winner || !present[id as usize] {
                                        continue;
                                    }
                                    bp_counters.rx_attempt += 1;
                                    if channel.deliver(&mut chan_rng) == Delivery::Lost {
                                        bp_counters.rx_lost += 1;
                                        continue;
                                    }
                                    // Each receiver processes its own copy: a
                                    // corruption fault at one receiver models
                                    // that receiver's demodulation errors, not
                                    // a change to the transmitted frame.
                                    let mut payload = beacon;
                                    let dctx = DeliveryCtx {
                                        bp: k,
                                        src: winner,
                                        dst: id,
                                        t_rx,
                                    };
                                    if active
                                        && hook.on_delivery(&dctx, &mut payload)
                                            == DeliveryFate::Drop
                                    {
                                        bp_counters.rx_hook_dropped += 1;
                                        continue;
                                    }
                                    bp_counters.rx_delivered += 1;
                                    // Receiver-side timestamping noise: each
                                    // station stamps the arrival with its own
                                    // hardware path, contributing (with the
                                    // sender-side jitter) the paper's receiver
                                    // estimation error ε.
                                    let rx_jitter =
                                        jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                                    let local_rx = oscs[id as usize].local_us(t_rx) + rx_jitter;
                                    let (clock_before, ref_before, stats_before) = if active {
                                        (
                                            nodes[id as usize].clock_us(local_rx),
                                            nodes[id as usize].current_reference(),
                                            nodes[id as usize].sstsp_stats(),
                                        )
                                    } else {
                                        (0.0, None, None)
                                    };
                                    {
                                        let mut ctx = node_ctx!(
                                            proto_rngs,
                                            &mut anchors,
                                            &pcfg,
                                            id,
                                            local_rx
                                        );
                                        nodes[id as usize].on_beacon(
                                            &mut ctx,
                                            ReceivedBeacon {
                                                payload,
                                                local_rx_us: local_rx,
                                            },
                                        );
                                    }
                                    if active {
                                        hook.post_delivery(&DeliveryObs {
                                            ctx: dctx,
                                            payload: &payload,
                                            local_rx_us: local_rx,
                                            clock_before_us: clock_before,
                                            ref_before,
                                            stats_before,
                                            stats_after: nodes[id as usize].sstsp_stats(),
                                            anchors: &anchors,
                                        });
                                    }
                                }
                            } // end of the plain (hook-capable) receiver loop
                        }
                    }
                }
                Some(topo) if mesh_resolver.is_some() => {
                    // Mesh fast path: static intents served from the SoA,
                    // per-domain window resolution over the domain-major
                    // order with reusable buffers, and batched receiver
                    // draws. Bit-identical to the plain multi-hop branch
                    // below: static intents are exactly what the real
                    // calls would return (debug-asserted), `MeshResolver`
                    // is pinned output-identical to `resolve_mesh`, and
                    // the split delivery passes preserve each RNG stream's
                    // internal draw order (channel and jitter draws live
                    // on separate streams).
                    let resolver = mesh_resolver.as_mut().expect("guarded by arm");
                    let attempts = &mut scratch.mh_attempts;
                    attempts.clear();
                    for id in 0..scenario.n_nodes {
                        if !present[id as usize] {
                            continue;
                        }
                        let intent = match soa.static_intent(id as usize) {
                            Some(si) => {
                                #[cfg(debug_assertions)]
                                {
                                    let pos = proto_rngs[id as usize].stream_pos();
                                    let local = oscs[id as usize].local_us(t0);
                                    let mut ctx =
                                        node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                    let real = nodes[id as usize].intent(&mut ctx);
                                    assert_eq!(real, si, "static intent diverged for node {id}");
                                    assert_eq!(
                                        proto_rngs[id as usize].stream_pos(),
                                        pos,
                                        "static intent consumed randomness for node {id}"
                                    );
                                }
                                si
                            }
                            None => {
                                let local = oscs[id as usize].local_us(t0);
                                let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                                nodes[id as usize].intent(&mut ctx)
                            }
                        };
                        match intent {
                            BeaconIntent::Silent => {}
                            BeaconIntent::Contend => {
                                let slot = window.draw_slot(&mut backoff_rngs[id as usize]);
                                attempts.push(MhAttempt {
                                    station: id,
                                    slot,
                                    relay: false,
                                });
                            }
                            BeaconIntent::FixedSlot(slot) => attempts.push(MhAttempt {
                                station: id,
                                slot,
                                relay: false,
                            }),
                            BeaconIntent::RelayAfterRx(slot) => attempts.push(MhAttempt {
                                station: id,
                                slot,
                                relay: true,
                            }),
                        }
                    }

                    if channel.is_jammed() {
                        jammed_windows += 1;
                        bp_counters.window_jammed += 1;
                        for a in attempts.iter() {
                            if !a.relay {
                                let local = oscs[a.station as usize].local_us(t0);
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, a.station, local);
                                nodes[a.station as usize].on_tx_outcome(&mut ctx, true);
                            }
                        }
                    } else if attempts.is_empty() {
                        silent_windows += 1;
                        bp_counters.window_silent += 1;
                    } else {
                        let airtime_slots = pcfg.beacon_airtime_slots;
                        let out = resolver.resolve(topo, attempts, airtime_slots);

                        // Beacons are produced at each transmitter's start
                        // slot; deliveries happen one airtime later.
                        scratch.payloads.fill(None);
                        for &(station, slot) in &out.transmissions {
                            let t_tx = t0 + window.delay_of(slot);
                            bp_counters.beacon_tx += 1;
                            if passive {
                                scratch.batch_txs.push(station);
                            }
                            let jitter =
                                jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                            let tx_local = oscs[station as usize].local_us(t_tx) + jitter;
                            let mut ctx =
                                node_ctx!(proto_rngs, &mut anchors, &pcfg, station, tx_local);
                            let payload = nodes[station as usize].make_beacon(&mut ctx);
                            // Reception instant is per-transmitter, not
                            // per-delivery: hoist it out of the receiver
                            // loop (same integer-time expression the slow
                            // path evaluates per delivery).
                            scratch.t_rx_by_tx[station as usize] = t0
                                + window.delay_of(slot)
                                + phy.beacon_airtime(payload.is_secured())
                                + phy.propagation();
                            scratch.payloads[station as usize] = Some(payload);
                        }
                        // Transmit feedback: a transmission that reached at
                        // least one receiver counts as clean.
                        scratch.reached.fill(false);
                        for d in &out.deliveries {
                            scratch.reached[d.tx as usize] = true;
                        }
                        for &(station, _) in &out.transmissions {
                            let ok = scratch.reached[station as usize];
                            if ok {
                                tx_successes += 1;
                                bp_counters.window_success += 1;
                            } else {
                                tx_collisions += 1;
                                bp_counters.window_collision += 1;
                            }
                            let local = oscs[station as usize].local_us(t0);
                            let mut ctx =
                                node_ctx!(proto_rngs, &mut anchors, &pcfg, station, local);
                            nodes[station as usize].on_tx_outcome(&mut ctx, !ok);
                        }
                        // Two-pass batched deliveries: filter the present
                        // receivers (in delivery order), take every
                        // channel-error draw in one pass, then run jitter
                        // and protocol processing for the survivors only.
                        let rx_del = &mut scratch.mh_rx;
                        rx_del.clear();
                        if all_present {
                            rx_del.extend_from_slice(&out.deliveries);
                        } else {
                            for d in &out.deliveries {
                                if present[d.rx as usize] {
                                    rx_del.push(*d);
                                }
                            }
                        }
                        bp_counters.rx_attempt += rx_del.len() as u64;
                        channel.deliver_batch(&mut chan_rng, rx_del.len(), &mut scratch.rx_fates);
                        for (d, &fate) in rx_del.iter().zip(scratch.rx_fates.iter()) {
                            if fate == Delivery::Lost {
                                bp_counters.rx_lost += 1;
                                continue;
                            }
                            bp_counters.rx_delivered += 1;
                            let payload = scratch.payloads[d.tx as usize]
                                .expect("every delivery has a transmitter");
                            let t_rx = scratch.t_rx_by_tx[d.tx as usize];
                            let rx_jitter =
                                jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                            let local_rx = oscs[d.rx as usize].local_us(t_rx) + rx_jitter;
                            // Passive capture reads the *virtual* clock: the
                            // SoA entry is refreshed only at BP end and can
                            // be stale mid-window.
                            let (clock_before, stats_before) = if passive {
                                (
                                    nodes[d.rx as usize].clock_us(local_rx),
                                    nodes[d.rx as usize].sstsp_stats(),
                                )
                            } else {
                                (0.0, None)
                            };
                            {
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, d.rx, local_rx);
                                nodes[d.rx as usize].on_beacon(
                                    &mut ctx,
                                    ReceivedBeacon {
                                        payload,
                                        local_rx_us: local_rx,
                                    },
                                );
                            }
                            if passive {
                                scratch.batch_rxs.push(BatchRx {
                                    src: d.tx,
                                    dst: d.rx,
                                    t_rx,
                                    clock_before_us: clock_before,
                                    stats_before,
                                    stats_after: nodes[d.rx as usize].sstsp_stats(),
                                });
                            }
                        }
                    }
                }
                Some(topo) => {
                    // Multi-hop path: local carrier sense, hidden
                    // terminals, spatial reuse, and in-window relaying.
                    let attempts = &mut scratch.mh_attempts;
                    attempts.clear();
                    for id in 0..scenario.n_nodes {
                        if !present[id as usize] {
                            continue;
                        }
                        let local = oscs[id as usize].local_us(t0);
                        let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                        match nodes[id as usize].intent(&mut ctx) {
                            BeaconIntent::Silent => {}
                            BeaconIntent::Contend => {
                                let slot = window.draw_slot(&mut backoff_rngs[id as usize]);
                                attempts.push(MhAttempt {
                                    station: id,
                                    slot,
                                    relay: false,
                                });
                            }
                            BeaconIntent::FixedSlot(slot) => attempts.push(MhAttempt {
                                station: id,
                                slot,
                                relay: false,
                            }),
                            BeaconIntent::RelayAfterRx(slot) => attempts.push(MhAttempt {
                                station: id,
                                slot,
                                relay: true,
                            }),
                        }
                    }

                    if channel.is_jammed() {
                        jammed_windows += 1;
                        bp_counters.window_jammed += 1;
                        for a in attempts.iter() {
                            if !a.relay {
                                let local = oscs[a.station as usize].local_us(t0);
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, a.station, local);
                                nodes[a.station as usize].on_tx_outcome(&mut ctx, true);
                            }
                        }
                    } else if attempts.is_empty() {
                        silent_windows += 1;
                        bp_counters.window_silent += 1;
                    } else {
                        let airtime_slots = pcfg.beacon_airtime_slots;
                        // With a collision-domain decomposition the window
                        // resolves per domain; `resolve_mesh` is pinned
                        // output-identical to the naive global resolution
                        // (wireless mesh_props differential proptests), so
                        // existing multi-hop goldens are unaffected.
                        let out = match &domains {
                            Some(d) => resolve_mesh(topo, d, attempts, airtime_slots),
                            None => resolve_multihop(topo, attempts, airtime_slots),
                        };

                        // Beacons are produced at each transmitter's start
                        // slot; deliveries happen one airtime later.
                        scratch.payloads.fill(None);
                        for &(station, slot) in &out.transmissions {
                            let t_tx = t0 + window.delay_of(slot);
                            bp_counters.beacon_tx += 1;
                            if active {
                                hook.on_beacon_tx(k, station, t_tx);
                            }
                            let jitter =
                                jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                            let tx_local = oscs[station as usize].local_us(t_tx) + jitter;
                            let mut ctx =
                                node_ctx!(proto_rngs, &mut anchors, &pcfg, station, tx_local);
                            scratch.payloads[station as usize] =
                                Some(nodes[station as usize].make_beacon(&mut ctx));
                        }
                        // Transmit feedback: a transmission that reached at
                        // least one receiver counts as clean.
                        scratch.reached.fill(false);
                        for d in &out.deliveries {
                            scratch.reached[d.tx as usize] = true;
                        }
                        for &(station, _) in &out.transmissions {
                            let ok = scratch.reached[station as usize];
                            if ok {
                                tx_successes += 1;
                                bp_counters.window_success += 1;
                            } else {
                                tx_collisions += 1;
                                bp_counters.window_collision += 1;
                            }
                            let local = oscs[station as usize].local_us(t0);
                            let mut ctx =
                                node_ctx!(proto_rngs, &mut anchors, &pcfg, station, local);
                            nodes[station as usize].on_tx_outcome(&mut ctx, !ok);
                        }
                        // Deliveries, in slot order (relays react next BP;
                        // in-window relay chaining was already decided by
                        // the resolution).
                        for d in &out.deliveries {
                            if !present[d.rx as usize] {
                                continue;
                            }
                            bp_counters.rx_attempt += 1;
                            if channel.deliver(&mut chan_rng) == Delivery::Lost {
                                bp_counters.rx_lost += 1;
                                continue;
                            }
                            let mut payload = scratch.payloads[d.tx as usize]
                                .expect("every delivery has a transmitter");
                            // Airtime is that of the transmitted frame; a
                            // hook corrupting the receiver's copy does not
                            // change when the energy left the channel.
                            let t_rx = t0
                                + window.delay_of(d.slot)
                                + phy.beacon_airtime(payload.is_secured())
                                + phy.propagation();
                            let dctx = DeliveryCtx {
                                bp: k,
                                src: d.tx,
                                dst: d.rx,
                                t_rx,
                            };
                            if active && hook.on_delivery(&dctx, &mut payload) == DeliveryFate::Drop
                            {
                                bp_counters.rx_hook_dropped += 1;
                                continue;
                            }
                            bp_counters.rx_delivered += 1;
                            let rx_jitter =
                                jitter_rng.random_range(0.0..=scenario.timestamp_jitter_us);
                            let local_rx = oscs[d.rx as usize].local_us(t_rx) + rx_jitter;
                            let (clock_before, ref_before, stats_before) = if active {
                                (
                                    nodes[d.rx as usize].clock_us(local_rx),
                                    nodes[d.rx as usize].current_reference(),
                                    nodes[d.rx as usize].sstsp_stats(),
                                )
                            } else {
                                (0.0, None, None)
                            };
                            {
                                let mut ctx =
                                    node_ctx!(proto_rngs, &mut anchors, &pcfg, d.rx, local_rx);
                                nodes[d.rx as usize].on_beacon(
                                    &mut ctx,
                                    ReceivedBeacon {
                                        payload,
                                        local_rx_us: local_rx,
                                    },
                                );
                            }
                            if active {
                                hook.post_delivery(&DeliveryObs {
                                    ctx: dctx,
                                    payload: &payload,
                                    local_rx_us: local_rx,
                                    clock_before_us: clock_before,
                                    ref_before,
                                    stats_before,
                                    stats_after: nodes[d.rx as usize].sstsp_stats(),
                                    anchors: &anchors,
                                });
                            }
                        }
                    }
                }
            }

            // --- End of BP --------------------------------------------
            lap!(2);
            let t_end = t0 + bp - SimDuration::from_us(1);
            scratch.clocks.clear();
            if fastpath {
                // Fused sweep: the final callback of the BP, the SoA
                // snapshot, and the spread-metric clock read share one
                // pass (and one oscillator evaluation per node). The
                // snapshot keeps the SoA exact for this BP's metric read
                // and the next BP's intent scan; any interim mutation —
                // join, leave — refreshes at its own site.
                for id in 0..scenario.n_nodes {
                    let i = id as usize;
                    if !present[i] {
                        continue;
                    }
                    let local = oscs[i].local_us(t_end);
                    let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                    nodes[i].on_bp_end(&mut ctx);
                    soa.refresh(i, &*nodes[i], &pcfg);
                    if honest[i] && soa.synchronized(i) {
                        let c = soa
                            .clock_us(i, local)
                            .unwrap_or_else(|| nodes[i].clock_us(local));
                        debug_assert_eq!(
                            c.to_bits(),
                            nodes[i].clock_us(local).to_bits(),
                            "SoA affine clock diverged for node {i}"
                        );
                        scratch.clocks.push(c);
                    }
                }
            } else {
                for id in 0..scenario.n_nodes {
                    if !present[id as usize] {
                        continue;
                    }
                    let local = oscs[id as usize].local_us(t_end);
                    let mut ctx = node_ctx!(proto_rngs, &mut anchors, &pcfg, id, local);
                    nodes[id as usize].on_bp_end(&mut ctx);
                }
                for i in 0..scenario.n_nodes as usize {
                    if present[i] && honest[i] && nodes[i].is_synchronized() {
                        scratch
                            .clocks
                            .push(nodes[i].clock_us(oscs[i].local_us(t_end)));
                    }
                }
            }

            // --- Metrics ----------------------------------------------
            lap!(3);
            tracker.sample(t_end, &scratch.clocks);
            if telemetry::enabled() {
                if let Some(&spread) = tracker.series().values().last() {
                    spread_hist
                        .get_or_insert_with(|| {
                            Histogram::new(SPREAD_DIST.lo, SPREAD_DIST.hi, SPREAD_DIST.bins)
                        })
                        .record(spread);
                }
            }

            lap!(4);
            let current_ref = if fastpath {
                (0..scenario.n_nodes)
                    .find(|&id| present[id as usize] && soa.is_reference(id as usize))
            } else {
                (0..scenario.n_nodes)
                    .find(|&id| present[id as usize] && nodes[id as usize].is_reference())
            };
            if current_ref != last_reference {
                if current_ref.is_some() {
                    reference_changes += 1;
                }
                last_reference = current_ref;
                disturbed = true;
            }
            for &atk in &adversary_ids {
                if attacker_became_reference {
                    break;
                }
                if current_ref == Some(atk) {
                    attacker_became_reference = true;
                    break;
                }
                // An internal adversary acts as a *de facto* reference when
                // the honest stations follow its beacons.
                let followers = (0..scenario.n_nodes as usize)
                    .filter(|&i| {
                        present[i]
                            && honest[i]
                            && if fastpath {
                                soa.current_reference(i) == Some(atk)
                            } else {
                                nodes[i].current_reference() == Some(atk)
                            }
                    })
                    .count();
                let honest_present = (0..scenario.n_nodes as usize)
                    .filter(|&i| present[i] && honest[i])
                    .count();
                if honest_present > 0 && followers * 2 > honest_present {
                    attacker_became_reference = true;
                }
            }

            if hooked {
                snapshots.clear();
                for i in 0..scenario.n_nodes as usize {
                    snapshots.push(NodeSnapshot {
                        id: i as NodeId,
                        present: present[i],
                        honest: honest[i],
                        synchronized: nodes[i].is_synchronized(),
                        is_reference: present[i] && nodes[i].is_reference(),
                        clock_us: nodes[i].clock_us(oscs[i].local_us(t_end)),
                        stats: nodes[i].sstsp_stats(),
                    });
                }
                hook.on_bp_end(&BpView {
                    bp: k,
                    t_end,
                    nodes: &snapshots,
                    reference: current_ref,
                    disturbed,
                });
            } else if passive {
                // Batched dispatch for fast-path-safe hooks: one callback
                // per BP carrying everything the per-event slow path would
                // have reported. The SoA was refreshed by the fused sweep
                // above, so the per-domain reference scan and the spread
                // (min/max over the same qualifying clock set the slow
                // path's `view_spread_us` uses) read end-of-BP state.
                let domain_refs: Option<&[Option<NodeId>]> = if let Some(d) = &domains {
                    scratch.domain_refs.clear();
                    for members in &d.domains {
                        scratch.domain_refs.push(
                            members
                                .iter()
                                .copied()
                                .find(|&id| present[id as usize] && soa.is_reference(id as usize)),
                        );
                    }
                    Some(&scratch.domain_refs)
                } else {
                    None
                };
                let spread_us = (scratch.clocks.len() >= 2).then(|| {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &c in &scratch.clocks {
                        lo = lo.min(c);
                        hi = hi.max(c);
                    }
                    hi - lo
                });
                hook.on_bp_batch(&BpBatch {
                    bp: k,
                    t_end,
                    txs: &scratch.batch_txs,
                    rxs: &scratch.batch_rxs,
                    domain_refs,
                    reference: current_ref,
                    spread_us,
                    disturbed,
                });
                scratch.batch_txs.clear();
                scratch.batch_rxs.clear();
            }

            lap!(5);
            if k < total_bps {
                sim.schedule_at(t0 + bp, k + 1);
            }
            SimControl::Continue
        });

        if prof {
            let names = ["events", "intent", "window+rx", "bp_end", "metrics", "tail"];
            let per_bp_node = 1e0 / (total_bps as f64 * scenario.n_nodes as f64);
            for (name, ns) in names.iter().zip(prof_ns.iter()) {
                telemetry::log::info("engine.prof", || {
                    format!(
                        "prof {name:>9}: {:8.3} ms  {:6.1} ns/node/bp",
                        *ns as f64 / 1e6,
                        *ns as f64 * per_bp_node
                    )
                });
            }
        }

        // Run-level telemetry flush: the hot loop's counter block, the
        // per-BP spread samples, and simcore's event-loop pressure and RNG
        // consumption all land in the registry here, once per run. Gauges
        // high-water across a sweep; counters and histogram bins sum.
        bp_counters.flush();
        if let Some(h) = &spread_hist {
            telemetry::dist_merge("engine.spread_us", h);
        }
        telemetry::gauge_max("engine.sim.events", sim.events_processed());
        telemetry::gauge_max("engine.queue.peak_pending", sim.peak_pending() as u64);
        telemetry::counter_add_many(&[
            ("engine.rng.chan_draws", chan_rng.draws()),
            ("engine.rng.jitter_draws", jitter_rng.draws()),
        ]);
        // Fold this thread's pending per-event (`LocalCounter`) deltas into
        // its shard: sweep worker threads never call `snapshot()`
        // themselves, so the engine flushes at the end of every run.
        telemetry::flush_local();

        let mut guard_rejections = 0u64;
        let mut mutesla_rejections = 0u64;
        let mut retargets = 0u64;
        let mut alerts = 0u64;
        for (i, node) in nodes.iter().enumerate() {
            if !honest[i] {
                continue;
            }
            if let Some(st) = node.sstsp_stats() {
                guard_rejections += st.guard_rejections;
                mutesla_rejections += st.mutesla_rejections;
                retargets += st.retargets;
                alerts += st.alerts;
            }
        }

        // Per-node end-of-run dump, formerly an `SSTSP_DEBUG_MH`-gated
        // eprintln. Routed through the structured log instead: silent by
        // default, on stderr with `SSTSP_LOG=debug`, capturable in tests.
        {
            let t_dbg = horizon - SimDuration::from_us(1);
            let ref_clock = (0..scenario.n_nodes as usize)
                .find(|&i| present[i] && nodes[i].is_reference())
                .map(|i| nodes[i].clock_us(oscs[i].local_us(t_dbg)));
            for i in 0..scenario.n_nodes as usize {
                telemetry::log::debug("engine.run_end", || {
                    let st = nodes[i].sstsp_stats();
                    let c = nodes[i].clock_us(oscs[i].local_us(t_dbg));
                    format!(
                        "node {i}: present={} sync={} isref={} follows={:?} err_us={:.1} stats={:?}",
                        present[i],
                        nodes[i].is_synchronized(),
                        nodes[i].is_reference(),
                        nodes[i].current_reference(),
                        ref_clock.map_or(f64::NAN, |rc| c - rc),
                        st.map(|s| (s.retargets, s.guard_rejections, s.mutesla_rejections)),
                    )
                });
            }
        }

        // Multi-hop: per-hop error profile against the final reference.
        let hop_profile = match (&topology, last_reference) {
            (Some(topo), Some(r)) if present[r as usize] => {
                let t_end = horizon - SimDuration::from_us(1);
                let ref_clock = nodes[r as usize].clock_us(oscs[r as usize].local_us(t_end));
                let hops = topo.hops_from(r);
                Some(
                    (0..scenario.n_nodes as usize)
                        .filter(|&i| {
                            present[i] && honest[i] && nodes[i].is_synchronized() && i as u32 != r
                        })
                        .map(|i| {
                            let c = nodes[i].clock_us(oscs[i].local_us(t_end));
                            (hops[i], (c - ref_clock).abs())
                        })
                        .collect(),
                )
            }
            _ => None,
        };

        // Mesh: per-domain end-of-run summary (reference identity and
        // intra-domain agreement — the per-domain analogue of the global
        // spread metric, which keeps measuring *cross*-domain agreement).
        let domain_report = domains.as_ref().map(|d| {
            let t_end = horizon - SimDuration::from_us(1);
            d.domains
                .iter()
                .enumerate()
                .map(|(di, members)| {
                    let final_reference = members
                        .iter()
                        .copied()
                        .find(|&id| present[id as usize] && nodes[id as usize].is_reference());
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    let mut qualified = 0u32;
                    for &id in members {
                        let i = id as usize;
                        if present[i] && honest[i] && nodes[i].is_synchronized() {
                            let c = nodes[i].clock_us(oscs[i].local_us(t_end));
                            lo = lo.min(c);
                            hi = hi.max(c);
                            qualified += 1;
                        }
                    }
                    DomainSummary {
                        domain: di as u32,
                        nodes: members.len() as u32,
                        final_reference,
                        end_spread_us: (qualified >= 2).then_some(hi - lo),
                    }
                })
                .collect()
        });

        let criterion = SyncCriterion::default();
        let sync_latency_s = criterion.latency(tracker.series()).map(|t| t.as_secs_f64());
        let steady_error_us = criterion.steady_state_error(tracker.series());
        // The BP handler samples the tracker every BP, and every scenario
        // runs at least one BP, so an empty tracker here is a logic error.
        let peak = tracker
            .peak()
            .expect("spread tracker sampled at least once per run");
        let result = RunResult {
            spread: tracker.into_series(),
            sync_latency_s,
            steady_error_us,
            peak_spread_us: peak,
            tx_successes,
            tx_collisions,
            silent_windows,
            jammed_windows,
            reference_changes,
            final_reference: last_reference,
            attacker_became_reference,
            guard_rejections,
            mutesla_rejections,
            retargets,
            alerts,
            hop_profile,
            domain_report,
            protocol: scenario.protocol.name(),
            n_nodes: scenario.n_nodes,
            seed: scenario.seed,
        };
        hook.on_run_end(&result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn tiny_sstsp_network_synchronizes() {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 5, 20.0, 7);
        let r = Network::build(&cfg).run();
        assert_eq!(r.protocol, "SSTSP");
        assert!(
            r.sync_latency_s.is_some(),
            "5 nodes must synchronize in 20 s; peak {}",
            r.peak_spread_us
        );
        let tail = r
            .spread
            .max_in(SimTime::from_secs(15), SimTime::from_secs(20))
            .unwrap();
        assert!(tail < 25.0, "steady-state spread {tail} µs");
        assert!(r.final_reference.is_some());
        assert!(r.tx_successes > 100, "reference beacons every BP");
    }

    #[test]
    fn tsf_small_network_roughly_synchronizes() {
        let cfg = ScenarioConfig::new(ProtocolKind::Tsf, 5, 20.0, 7);
        let r = Network::build(&cfg).run();
        // TSF at 5 nodes works decently; spread stays bounded by ~ tens of µs.
        let tail = r
            .spread
            .max_in(SimTime::from_secs(10), SimTime::from_secs(20))
            .unwrap();
        assert!(tail < 200.0, "TSF tail spread {tail} µs");
        assert!(r.final_reference.is_none(), "TSF has no reference role");
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 8, 10.0, 99);
        let a = Network::build(&cfg).run();
        let b = Network::build(&cfg).run();
        assert_eq!(a.spread.values(), b.spread.values());
        assert_eq!(a.tx_successes, b.tx_successes);
        assert_eq!(a.tx_collisions, b.tx_collisions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Network::build(&ScenarioConfig::new(ProtocolKind::Sstsp, 8, 10.0, 1)).run();
        let b = Network::build(&ScenarioConfig::new(ProtocolKind::Sstsp, 8, 10.0, 2)).run();
        assert_ne!(a.spread.values(), b.spread.values());
    }

    #[test]
    fn sample_count_matches_bps() {
        let cfg = ScenarioConfig::new(ProtocolKind::Tsf, 4, 5.0, 3);
        let r = Network::build(&cfg).run();
        assert_eq!(r.spread.len() as u64, cfg.total_bps());
    }

    #[test]
    fn jamming_window_blocks_beacons() {
        let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 5, 10.0, 11);
        cfg.jam_windows.push(crate::scenario::JamWindow {
            start_s: 3.0,
            end_s: 5.0,
        });
        let r = Network::build(&cfg).run();
        // During the jam, windows with at least one (destroyed) transmission
        // count as jammed; fully silent windows do not. Expect a healthy
        // number of each across the 20-BP jam.
        assert!(r.jammed_windows >= 5, "jammed {} windows", r.jammed_windows);
        // The network must re-synchronize after the jam lifts.
        let tail = r
            .spread
            .max_in(SimTime::from_secs(8), SimTime::from_secs(10))
            .unwrap();
        assert!(tail < 25.0, "post-jam spread {tail} µs");
    }
}
