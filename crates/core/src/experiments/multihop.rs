//! **Extension experiment** — SSTSP over multi-hop topologies (the paper's
//! stated future work, Sec. 6).
//!
//! Mechanism: synchronized members *relay* the timing wave every BP at
//! slots staggered by one beacon airtime, signing with their own published
//! chains; downstream stations discipline their clocks against one sticky
//! upstream; competing timing domains merge toward the lowest root id.
//!
//! The quantity of interest is **error growth per hop**: each relay hop
//! adds an independent receiver estimation error ε, so the error envelope
//! should grow roughly with the hop count (the classic multi-hop sync
//! scaling) while staying far below the free-running drift.

use super::Fidelity;
use crate::engine::RunResult;
use crate::invariants::run_checked;
use crate::report::render_table;
use crate::scenario::{ProtocolKind, ScenarioConfig, TopologySpec};
use simcore::SimTime;

/// Aggregated per-hop error statistics.
#[derive(Debug, Clone)]
pub struct HopRow {
    /// Hop distance from the final reference.
    pub hop: u32,
    /// Stations at this distance.
    pub count: usize,
    /// Mean |clock − reference| at the end of the run, µs.
    pub mean_err_us: f64,
    /// Worst error at this distance, µs.
    pub max_err_us: f64,
}

/// Multi-hop experiment output.
pub struct Multihop {
    /// The line-topology run.
    pub line: RunResult,
    /// Per-hop rows from the line run.
    pub line_hops: Vec<HopRow>,
    /// The grid-topology run.
    pub grid: RunResult,
    /// Steady spread over the final quarter of each run, µs (line, grid).
    pub steady_us: (f64, f64),
}

fn hop_rows(r: &RunResult) -> Vec<HopRow> {
    let Some(profile) = &r.hop_profile else {
        return Vec::new();
    };
    let max_hop = profile.iter().map(|&(h, _)| h).max().unwrap_or(0);
    (1..=max_hop)
        .map(|hop| {
            let errs: Vec<f64> = profile
                .iter()
                .filter(|&&(h, _)| h == hop)
                .map(|&(_, e)| e)
                .collect();
            HopRow {
                hop,
                count: errs.len(),
                mean_err_us: if errs.is_empty() {
                    f64::NAN
                } else {
                    errs.iter().sum::<f64>() / errs.len() as f64
                },
                max_err_us: errs.iter().cloned().fold(f64::NAN, f64::max),
            }
        })
        .filter(|row| row.count > 0)
        .collect()
}

fn steady(r: &RunResult, duration_s: f64) -> f64 {
    r.spread
        .max_in(
            SimTime::from_secs_f64(duration_s * 0.75),
            SimTime::from_secs_f64(duration_s),
        )
        .unwrap_or(f64::NAN)
}

/// Run the multi-hop extension experiment.
pub fn run(fid: Fidelity, seed: u64) -> Multihop {
    let duration = fid.secs(600.0);

    // A 12-station line: diameter 11, the hardest per-hop case.
    // Multi-hop runs tolerate more beacon loss (l = 3): relay
    // participation is probabilistic, so occasional upstream silence is
    // normal rather than a sign the reference left.
    let mut line_cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 12, duration, seed)
        .with_l(3)
        .with_m(6);
    line_cfg.topology = Some(TopologySpec::Line);
    let line = run_checked(&line_cfg);

    // A 5×5 grid: diameter 8 with route diversity.
    let mut grid_cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 25, duration, seed)
        .with_l(3)
        .with_m(6);
    grid_cfg.topology = Some(TopologySpec::Grid { cols: 5, rows: 5 });
    let grid = run_checked(&grid_cfg);

    let line_hops = hop_rows(&line);
    let steady_us = (steady(&line, duration), steady(&grid, duration));
    Multihop {
        line,
        line_hops,
        grid,
        steady_us,
    }
}

impl Multihop {
    /// Render the experiment report.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Extension — SSTSP over multi-hop topologies (paper future work)\n\n");
        out.push_str(&format!(
            "line (12 stations, diameter 11): steady spread {:.1} µs\n",
            self.steady_us.0
        ));
        out.push_str(&format!(
            "grid (5×5, diameter 8):          steady spread {:.1} µs\n\n",
            self.steady_us.1
        ));
        out.push_str("Per-hop error on the line (vs final reference):\n");
        let rows: Vec<Vec<String>> = self
            .line_hops
            .iter()
            .map(|r| {
                vec![
                    r.hop.to_string(),
                    r.count.to_string(),
                    format!("{:.1}", r.mean_err_us),
                    format!("{:.1}", r.max_err_us),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["hop", "stations", "mean err µs", "max err µs"],
            &rows,
        ));
        out
    }

    /// Sanity shape for the extension. The **line** is the validated
    /// configuration: tight steady state, bounded per-hop error. The
    /// **grid** exercises concurrent-domain merging, which works but still
    /// shows residual excursions (tens of ms in bad seeds — an order of
    /// magnitude under free-running divergence, far over the single-hop
    /// paper numbers); it is reported, lightly bounded, and documented as
    /// the open frontier of this future-work mode (DESIGN.md §7).
    pub fn shape_holds(&self) -> bool {
        let line_ok = self.steady_us.0 < 150.0;
        let grid_merged_at_all = self.steady_us.1 < 200_000.0;
        let hops_bounded = self
            .line_hops
            .iter()
            .all(|r| r.max_err_us.is_finite() && r.max_err_us < 150.0);
        line_ok && grid_merged_at_all && hops_bounded && !self.line_hops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_multihop_synchronizes_and_bounds_hops() {
        let m = run(Fidelity::Quick, 11);
        assert!(m.shape_holds(), "multi-hop shape failed:\n{}", m.render());
        // The line run must actually use relays: far stations can only be
        // reached through them.
        assert!(m.line.tx_successes > 0);
        assert!(m.line.sync_latency_s.is_some(), "line never synchronized");
    }
}
