//! **Sec. 3.4 overhead accounting** — beacon size and hash-chain storage.
//!
//! The paper budgets: beacon growth 56 → 92 bytes; per-node chain storage
//! either `n` elements (store-all), or `log₂(n)` elements with `log₂(n)`
//! amortized computation using Jakobsson's scheme \[6\]. This module
//! *measures* those numbers from the actual implementations instead of
//! restating them.

use crate::report::render_table;
use mac80211::frame::{BeaconBody, SecuredBeacon, WIRE_LEN_PLAIN, WIRE_LEN_SECURED};
use sstsp_crypto::{BeaconAuth, FractalTraverser, HashChain};

/// Measured chain-traversal strategy costs for one chain length.
#[derive(Debug, Clone)]
pub struct ChainCostRow {
    /// Chain length `n`.
    pub n: usize,
    /// Store-all memory, bytes (`(n + 1) × 16`).
    pub store_all_bytes: usize,
    /// Fractal pebble peak count.
    pub fractal_peak_pebbles: usize,
    /// Fractal memory, bytes (peak pebbles × 16 + seed).
    pub fractal_bytes: usize,
    /// Fractal amortized hashes per disclosed element.
    pub fractal_hashes_per_element: f64,
    /// Naive recompute-from-seed amortized hashes per element (`≈ n/2`).
    pub naive_hashes_per_element: f64,
}

/// Overhead report.
pub struct Overhead {
    /// Wire sizes measured from the codecs.
    pub plain_beacon_bytes: usize,
    /// Secured beacon size.
    pub secured_beacon_bytes: usize,
    /// Chain strategy costs at several lengths.
    pub chain_rows: Vec<ChainCostRow>,
}

/// Measure everything.
pub fn run() -> Overhead {
    let body = BeaconBody {
        src: 1,
        seq: 1,
        timestamp_us: 0,
        root: 1,
        hop: 0,
    };
    let secured = SecuredBeacon {
        body,
        auth: BeaconAuth {
            interval: 1,
            mac: [0; 16],
            disclosed: [0; 16],
        },
    };
    let plain_beacon_bytes = body.encode().len();
    let secured_beacon_bytes = secured.encode().len();
    debug_assert_eq!(plain_beacon_bytes, WIRE_LEN_PLAIN);
    debug_assert_eq!(secured_beacon_bytes, WIRE_LEN_SECURED);

    let chain_rows = [256usize, 1_024, 4_096, 10_240]
        .iter()
        .map(|&n| {
            let seed = [7u8; 16];
            let chain = HashChain::generate(seed, n);
            let store_all_bytes = (chain.len() + 1) * 16;
            let mut t = FractalTraverser::new(seed, n);
            let setup = t.hash_count();
            let mut peak = t.pebble_count();
            while t.next_element().is_some() {
                peak = peak.max(t.pebble_count());
            }
            let traversal_hashes = t.hash_count() - setup;
            ChainCostRow {
                n,
                store_all_bytes,
                fractal_peak_pebbles: peak,
                fractal_bytes: (peak + 1) * 16,
                fractal_hashes_per_element: traversal_hashes as f64 / n as f64,
                naive_hashes_per_element: (n as f64 - 1.0) / 2.0,
            }
        })
        .collect();

    Overhead {
        plain_beacon_bytes,
        secured_beacon_bytes,
        chain_rows,
    }
}

impl Overhead {
    /// Render the report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Overhead (Sec. 3.4)\n\nBeacon size: TSF {} B → SSTSP {} B (+{} B: 4 B interval \
             index + 16 B HMAC + 16 B disclosed key)\n\n",
            self.plain_beacon_bytes,
            self.secured_beacon_bytes,
            self.secured_beacon_bytes - self.plain_beacon_bytes
        );
        let rows: Vec<Vec<String>> = self
            .chain_rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{} B", r.store_all_bytes),
                    r.fractal_peak_pebbles.to_string(),
                    format!("{} B", r.fractal_bytes),
                    format!("{:.2}", r.fractal_hashes_per_element),
                    format!("{:.0}", r.naive_hashes_per_element),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "n",
                "store-all mem",
                "fractal pebbles",
                "fractal mem",
                "fractal hashes/elem",
                "naive hashes/elem",
            ],
            &rows,
        ));
        out
    }

    /// The paper's claim: log₂(n) storage and log₂(n) computation.
    pub fn shape_holds(&self) -> bool {
        self.secured_beacon_bytes == 92
            && self.plain_beacon_bytes == 56
            && self.chain_rows.iter().all(|r| {
                let log2n = (r.n as f64).log2();
                (r.fractal_peak_pebbles as f64) <= log2n + 2.0
                    && r.fractal_hashes_per_element <= log2n + 1.0
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_budget() {
        let o = run();
        assert_eq!(o.plain_beacon_bytes, 56);
        assert_eq!(o.secured_beacon_bytes, 92);
        assert!(o.shape_holds(), "{}", o.render());
        // Fractal memory must crush store-all at n = 10 240: the paper's
        // 160 KiB chain collapses to a few hundred bytes.
        let big = o.chain_rows.last().unwrap();
        assert!(big.fractal_bytes < big.store_all_bytes / 100);
    }
}
