//! **Figure 4** — SSTSP under the same fast-beacon attack, 500 stations.
//!
//! The attacker (an *internal* adversary with valid credentials) beacons at
//! slot 0 every BP with timestamps slower than its clock but within the
//! guard time δ. It collides the legitimate reference off the air and wins
//! the subsequent election — but because its timestamps must pass the
//! guard check, the honest stations merely follow a slightly skewed virtual
//! clock and **stay synchronized with each other**. The paper's claim:
//! the attacker cannot desynchronize the network.

use super::Fidelity;
use crate::engine::RunResult;
use crate::invariants::run_checked;
use crate::report::render_series_chart;
use crate::scenario::ProtocolKind;
use simcore::SimTime;

/// Figure 4 output.
pub struct Fig4 {
    /// The attacked SSTSP run.
    pub run: RunResult,
    /// Peak spread inside the attack window, µs.
    pub peak_during_attack_us: f64,
    /// Steady spread before the attack, µs.
    pub peak_before_attack_us: f64,
    /// Attack window (seconds).
    pub attack_window_s: (f64, f64),
}

/// Reproduce Figure 4.
pub fn run(fid: Fidelity, seed: u64) -> Fig4 {
    let mut cfg = super::scaled_paper_scenario(ProtocolKind::Sstsp, 500, fid, seed).with_m(4);
    let start_s = fid.secs(400.0);
    let end_s = fid.secs(600.0);
    cfg.attacker = Some(crate::scenario::AttackerSpec {
        start_s,
        end_s,
        // Crafted to pass the guard check (δ = 50 µs by default).
        error_us: 30.0,
    });
    let run = run_checked(&cfg);
    // Skip the initial election/convergence transient when measuring the
    // pre-attack baseline.
    let settle = fid.secs(50.0);
    let peak_before = run
        .spread
        .max_in(
            SimTime::from_secs_f64(settle),
            SimTime::from_secs_f64(start_s),
        )
        .unwrap_or(f64::NAN);
    let peak_during = run
        .spread
        .max_in(
            SimTime::from_secs_f64(start_s),
            SimTime::from_secs_f64(end_s),
        )
        .unwrap_or(f64::NAN);
    Fig4 {
        run,
        peak_during_attack_us: peak_during,
        peak_before_attack_us: peak_before,
        attack_window_s: (start_s, end_s),
    }
}

impl Fig4 {
    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 4 — Maximum clock difference, SSTSP, fast-beacon attacker \
             active {:.0}–{:.0} s (timestamps crafted within δ)\n\n",
            self.attack_window_s.0, self.attack_window_s.1
        );
        out.push_str(&render_series_chart(&self.run.spread, 72, 10));
        out.push_str(&format!(
            "  peak before attack {:.1} µs   peak during attack {:.1} µs   \
             attacker became reference: {}\n",
            self.peak_before_attack_us,
            self.peak_during_attack_us,
            self.run.attacker_became_reference
        ));
        out
    }

    /// The paper's qualitative claim: even with the attacker as reference
    /// the honest network stays synchronized — the spread during the attack
    /// stays within the same order as the paper's 25 µs bound, light-years
    /// from TSF's 20 000 µs blow-up.
    pub fn shape_holds(&self) -> bool {
        self.run.attacker_became_reference && self.peak_during_attack_us < 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig4_sstsp_survives_attack() {
        let fig = run(Fidelity::Quick, 42);
        assert!(
            fig.run.attacker_became_reference,
            "the attacker should capture the reference role"
        );
        assert!(
            fig.peak_during_attack_us < 100.0,
            "honest spread during attack: {:.1} µs",
            fig.peak_during_attack_us
        );
        assert!(fig.render().contains("Figure 4"));
    }
}
