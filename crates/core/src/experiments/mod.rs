//! One module per table/figure of the paper's evaluation (Sec. 5), plus the
//! ablations DESIGN.md calls out. Each experiment produces the rows/series
//! the paper reports; the benches in `crates/bench` and the
//! `paper_figures` example regenerate them from here.
//!
//! Every experiment takes a [`Fidelity`]: [`Fidelity::Paper`] uses the
//! paper's exact dimensions (1000 s, up to 500 stations — minutes of wall
//! time); [`Fidelity::Quick`] shrinks the network and horizon while keeping
//! every mechanism active (used by tests and as the timed kernel in the
//! Criterion benches).

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod multihop;
pub mod overhead;
pub mod table1;

use crate::scenario::{ChurnConfig, ProtocolKind, ScenarioConfig};

/// The Sec. 5 scenario with every time constant scaled by the fidelity:
/// 1000 s horizon, 5 % churn every 200 s (50 s absences), reference
/// departures at 300/500/800 s.
pub(crate) fn scaled_paper_scenario(
    protocol: ProtocolKind,
    paper_n: u32,
    fid: Fidelity,
    seed: u64,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(protocol, fid.n(paper_n), fid.secs(1000.0), seed);
    cfg.churn = Some(ChurnConfig {
        period_s: fid.secs(200.0),
        fraction: 0.05,
        absence_s: fid.secs(50.0),
    });
    cfg.ref_leaves_s = vec![fid.secs(300.0), fid.secs(500.0), fid.secs(800.0)];
    cfg.ref_absence_s = fid.secs(50.0);
    cfg
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The paper's exact dimensions.
    Paper,
    /// Reduced dimensions (same mechanisms) for tests and timed benches.
    Quick,
}

impl Fidelity {
    /// Scale a station count.
    pub fn n(self, paper_n: u32) -> u32 {
        match self {
            Fidelity::Paper => paper_n,
            Fidelity::Quick => (paper_n / 10).max(5),
        }
    }

    /// Scale a duration in seconds.
    pub fn secs(self, paper_secs: f64) -> f64 {
        match self {
            Fidelity::Paper => paper_secs,
            Fidelity::Quick => (paper_secs / 20.0).max(10.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_scaling() {
        assert_eq!(Fidelity::Paper.n(500), 500);
        assert_eq!(Fidelity::Quick.n(500), 50);
        assert_eq!(Fidelity::Quick.n(10), 5);
        assert_eq!(Fidelity::Paper.secs(1000.0), 1000.0);
        assert_eq!(Fidelity::Quick.secs(1000.0), 50.0);
        assert_eq!(Fidelity::Quick.secs(100.0), 10.0);
    }
}
