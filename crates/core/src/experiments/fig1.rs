//! **Figure 1** — Maximum clock difference of TSF at 100 and 300 stations.
//!
//! The paper's point: TSF fails to scale. The fastest station rarely wins
//! the beacon contention, so its clock runs away between wins (sawtooth
//! growth), and at 300 stations beacon collisions starve the network of
//! timing information almost entirely.

use super::Fidelity;
use crate::engine::RunResult;
use crate::invariants::run_checked;
use crate::report::render_series_chart;
use crate::scenario::ProtocolKind;
use rayon::prelude::*;

/// The two network sizes the paper shows.
pub const PAPER_SIZES: [u32; 2] = [100, 300];

/// Figure 1 output: one TSF drift series per network size.
pub struct Fig1 {
    /// Runs at each size, in [`PAPER_SIZES`] order.
    pub runs: Vec<RunResult>,
}

/// Reproduce Figure 1.
pub fn run(fid: Fidelity, seed: u64) -> Fig1 {
    let runs = PAPER_SIZES
        .par_iter()
        .map(|&n| {
            let cfg = super::scaled_paper_scenario(ProtocolKind::Tsf, n, fid, seed);
            run_checked(&cfg)
        })
        .collect();
    Fig1 { runs }
}

impl Fig1 {
    /// Render the figure as text charts plus the headline comparison.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 1 — Maximum clock difference, TSF (fastest-node \
             asynchronization + beacon collisions)\n\n",
        );
        for r in &self.runs {
            out.push_str(&render_series_chart(&r.spread, 72, 10));
            out.push_str(&format!(
                "  successes {}  collisions {}  silent {}\n\n",
                r.tx_successes, r.tx_collisions, r.silent_windows
            ));
        }
        if let [small, large] = &self.runs[..] {
            out.push_str(&format!(
                "Scalability check: peak spread {} stations = {:.0} µs vs {} stations = {:.0} µs\n",
                small.n_nodes, small.peak_spread_us, large.n_nodes, large.peak_spread_us
            ));
        }
        out
    }

    /// The paper's qualitative claim: the larger network drifts worse (or
    /// at least no better) than the smaller one, and both exceed the 25 µs
    /// industrial bound.
    pub fn shape_holds(&self) -> bool {
        let [small, large] = &self.runs[..] else {
            return false;
        };
        small.peak_spread_us > 25.0
            && large.peak_spread_us > 25.0
            && large.peak_spread_us >= 0.5 * small.peak_spread_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig1_shows_tsf_failure() {
        let fig = run(Fidelity::Quick, 42);
        assert_eq!(fig.runs.len(), 2);
        // Even at quick scale TSF exceeds the 25 µs criterion.
        assert!(
            fig.runs.iter().any(|r| r.peak_spread_us > 25.0),
            "TSF peaks: {:?}",
            fig.runs
                .iter()
                .map(|r| r.peak_spread_us)
                .collect::<Vec<_>>()
        );
        let text = fig.render();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("Scalability check"));
    }
}
