//! Ablations over the design choices DESIGN.md calls out.
//!
//! * [`ref_change`] — the (m, l) interaction at a reference change.
//!   Lemma 2 predicts the post-change error ratio `D⁺/D⁻ ≈ |m − l − 3| / m`
//!   with the optimum at `m = l + 3`; the ablation forces one reference
//!   departure and measures the spike and the recovery time.
//! * [`guard_sweep`] — the guard time δ against the internal fast-beacon
//!   attacker: larger δ admits proportionally larger attacker-induced
//!   offsets, while a δ tighter than the legitimate error budget starts
//!   rejecting honest beacons.

use super::Fidelity;
use crate::report::render_table;
use crate::scenario::{AttackerSpec, ProtocolKind, ScenarioConfig};
use crate::sweep::run_configs;
use simcore::SimTime;

/// One (m, l) cell of the reference-change ablation.
#[derive(Debug, Clone)]
pub struct RefChangeRow {
    /// Aggressiveness parameter.
    pub m: u32,
    /// Loss-tolerance parameter.
    pub l: u32,
    /// Max spread in the 10 BPs before the forced departure, µs.
    pub pre_spike_us: f64,
    /// Max spread in the window after the departure, µs.
    pub post_spike_us: f64,
    /// Seconds from departure until the spread re-enters 25 µs.
    pub recovery_s: Option<f64>,
}

/// Reference-change ablation output.
pub struct RefChangeAblation {
    /// All (m, l) cells.
    pub rows: Vec<RefChangeRow>,
    /// Departure instant used, seconds.
    pub leave_s: f64,
}

/// Run the (m, l) grid.
pub fn ref_change(fid: Fidelity, seed: u64) -> RefChangeAblation {
    let duration = fid.secs(400.0);
    let leave_s = duration / 2.0;
    let ms = [1u32, 2, 3, 4, 5];
    let ls = [1u32, 2];
    let mut configs = Vec::new();
    for &l in &ls {
        for &m in &ms {
            let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, fid.n(200), duration, seed)
                .with_m(m)
                .with_l(l);
            cfg.ref_leaves_s = vec![leave_s];
            configs.push(cfg);
        }
    }
    let results = run_configs(&configs);
    let mut rows = Vec::new();
    for (cfg, r) in configs.iter().zip(&results) {
        let bp_s = cfg.protocol_config.bp_us / 1e6;
        let pre = r
            .spread
            .max_in(
                SimTime::from_secs_f64(leave_s - 10.0 * bp_s),
                SimTime::from_secs_f64(leave_s),
            )
            .unwrap_or(f64::NAN);
        let post_window_end = leave_s + duration * 0.2;
        let post = r
            .spread
            .max_in(
                SimTime::from_secs_f64(leave_s),
                SimTime::from_secs_f64(post_window_end),
            )
            .unwrap_or(f64::NAN);
        // Recovery: time until the spread is back under 25 µs after the
        // departure. If the departure never pushed it over 25 µs the
        // disturbance was absorbed instantly (recovery 0).
        let spiked = r
            .spread
            .iter()
            .skip_while(|(t, _)| t.as_secs_f64() < leave_s)
            .take_while(|(t, _)| t.as_secs_f64() < post_window_end)
            .any(|(_, v)| v > 25.0);
        let recovery_s = if !spiked {
            Some(0.0)
        } else {
            r.spread
                .iter()
                .skip_while(|(t, _)| t.as_secs_f64() < leave_s)
                .skip_while(|(_, v)| *v <= 25.0)
                .find(|(_, v)| *v <= 25.0)
                .map(|(t, _)| t.as_secs_f64() - leave_s)
        };
        rows.push(RefChangeRow {
            m: cfg.protocol_config.m,
            l: cfg.protocol_config.l,
            pre_spike_us: pre,
            post_spike_us: post,
            recovery_s,
        });
    }
    RefChangeAblation { rows, leave_s }
}

impl RefChangeAblation {
    /// Render the grid.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.l.to_string(),
                    format!("{:.1}", r.pre_spike_us),
                    format!("{:.1}", r.post_spike_us),
                    r.recovery_s.map_or("-".into(), |s| format!("{s:.1}s")),
                ]
            })
            .collect();
        format!(
            "Ablation — reference change at {:.0} s: (m, l) vs spike and recovery\n{}",
            self.leave_s,
            render_table(
                &["m", "l", "pre-spike µs", "post-spike µs", "recovery"],
                &rows
            )
        )
    }
}

/// One δ cell of the guard-time sweep.
#[derive(Debug, Clone)]
pub struct GuardRow {
    /// Guard time δ, µs.
    pub delta_us: f64,
    /// Attacker timestamp error, µs.
    pub attacker_error_us: f64,
    /// Peak honest spread during the attack, µs.
    pub peak_during_attack_us: f64,
    /// Whether the attacker captured the reference role.
    pub attacker_became_reference: bool,
    /// Guard rejections over the run (resistance evidence).
    pub guard_rejections: u64,
}

/// Guard-time sweep output.
pub struct GuardSweep {
    /// One row per δ.
    pub rows: Vec<GuardRow>,
}

/// Sweep the guard time against a fixed attacker error.
pub fn guard_sweep(fid: Fidelity, seed: u64) -> GuardSweep {
    let duration = fid.secs(600.0);
    let start_s = duration * 0.4;
    let end_s = duration * 0.8;
    let attacker_error = 30.0;
    let deltas = [10.0f64, 25.0, 50.0, 100.0, 400.0];
    let configs: Vec<ScenarioConfig> = deltas
        .iter()
        .map(|&delta| {
            let mut cfg =
                ScenarioConfig::new(ProtocolKind::Sstsp, fid.n(200), duration, seed).with_m(4);
            cfg.protocol_config.guard_fine_us = delta;
            cfg.attacker = Some(AttackerSpec {
                start_s,
                end_s,
                error_us: attacker_error,
            });
            cfg
        })
        .collect();
    let results = run_configs(&configs);
    let rows = deltas
        .iter()
        .zip(&results)
        .map(|(&delta, r)| GuardRow {
            delta_us: delta,
            attacker_error_us: attacker_error,
            peak_during_attack_us: r
                .spread
                .max_in(
                    SimTime::from_secs_f64(start_s + 5.0),
                    SimTime::from_secs_f64(end_s),
                )
                .unwrap_or(f64::NAN),
            attacker_became_reference: r.attacker_became_reference,
            guard_rejections: r.guard_rejections,
        })
        .collect();
    GuardSweep { rows }
}

impl GuardSweep {
    /// Render the sweep.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.delta_us),
                    format!("{:.0}", r.attacker_error_us),
                    format!("{:.1}", r.peak_during_attack_us),
                    r.attacker_became_reference.to_string(),
                    r.guard_rejections.to_string(),
                ]
            })
            .collect();
        format!(
            "Ablation — guard time δ vs fast-beacon attacker (error 30 µs)\n{}",
            render_table(
                &[
                    "δ µs",
                    "attacker err µs",
                    "peak spread µs",
                    "attacker is ref",
                    "guard rejections"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_change_grid_runs() {
        let a = ref_change(Fidelity::Quick, 7);
        assert_eq!(a.rows.len(), 10);
        assert!(a.render().contains("reference change"));
        // Every configuration recovers eventually at quick scale.
        let recovered = a.rows.iter().filter(|r| r.recovery_s.is_some()).count();
        assert!(recovered >= 8, "only {recovered}/10 cells recovered");
    }

    #[test]
    fn guard_sweep_blocks_or_admits() {
        let g = guard_sweep(Fidelity::Quick, 7);
        assert_eq!(g.rows.len(), 5);
        // With δ above the attacker error (30 µs) the forged timestamps are
        // accepted and the honest network stays internally synchronized
        // (the paper's Fig. 4 claim).
        for r in g.rows.iter().filter(|r| r.delta_us > r.attacker_error_us) {
            assert!(
                r.peak_during_attack_us < 200.0,
                "δ={} blew up: {:.1} µs",
                r.delta_us,
                r.peak_during_attack_us
            );
        }
        // δ below the attacker error forces guard rejections. What
        // follows is drift-dependent: members whose clocks drift *toward*
        // the attacker's claimed time eventually close the gap and get
        // captured (the injected error is effectively capped at ≈ δ);
        // members drifting away free-run. Depending on the drift draw the
        // network either partitions (large spread) or converges onto the
        // attacker with a delay — the robust invariant is that resistance
        // happened at all, which the rows with δ ≥ error never show.
        for r in g.rows.iter().filter(|r| r.delta_us < r.attacker_error_us) {
            assert!(
                r.guard_rejections > 50,
                "δ={} should visibly resist (got {} rejections)",
                r.delta_us,
                r.guard_rejections
            );
        }
        assert!(g.render().contains("guard time"));
    }
}
