//! **Figure 2** — Maximum clock difference of SSTSP, 500 stations, m = 4.
//!
//! The paper's headline result: after the protocol stabilizes the maximum
//! clock difference stays below 10 µs, with brief spikes when the
//! reference node leaves (300 s, 500 s, 800 s) and 5 % churn every 200 s.

use super::Fidelity;
use crate::engine::RunResult;
use crate::invariants::run_checked;
use crate::report::render_series_chart;
use crate::scenario::ProtocolKind;
use simcore::SimTime;

/// Figure 2 output.
pub struct Fig2 {
    /// The 500-station SSTSP run.
    pub run: RunResult,
    /// Steady-state spread measured over the final quarter of the run, µs.
    pub steady_tail_us: f64,
    /// Horizon of the run, seconds.
    pub duration_s: f64,
}

/// Reproduce Figure 2.
pub fn run(fid: Fidelity, seed: u64) -> Fig2 {
    let cfg = super::scaled_paper_scenario(ProtocolKind::Sstsp, 500, fid, seed).with_m(4);
    let duration_s = cfg.duration_s;
    let run = run_checked(&cfg);
    // "After the protocol stabilizes": measure the window between the last
    // two disturbances (ref departures / churn) — the tail after the final
    // churn-return completes.
    let tail_from = duration_s * 0.87;
    let steady_tail_us = run
        .spread
        .max_in(
            SimTime::from_secs_f64(tail_from),
            SimTime::from_secs_f64(duration_s),
        )
        .unwrap_or(f64::NAN);
    Fig2 {
        run,
        steady_tail_us,
        duration_s,
    }
}

impl Fig2 {
    /// Render the figure as a text chart plus headline numbers.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 2 — Maximum clock difference, SSTSP, m = 4 (reference \
             departures at 30/50/80 % of the horizon)\n\n",
        );
        out.push_str(&render_series_chart(&self.run.spread, 72, 10));
        out.push_str(&format!(
            "  sync latency {:?} s   steady tail {:.1} µs   reference changes {}\n",
            self.run.sync_latency_s, self.steady_tail_us, self.run.reference_changes
        ));
        out
    }

    /// The paper's qualitative claims: the network synchronizes, stays
    /// under ~10 µs once stable, and survives reference changes.
    pub fn shape_holds(&self) -> bool {
        self.run.sync_latency_s.is_some()
            && self.steady_tail_us < 10.0
            && self.run.reference_changes >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig2_synchronizes_under_10us() {
        let fig = run(Fidelity::Quick, 42);
        assert!(
            fig.run.sync_latency_s.is_some(),
            "network must synchronize; peak {}",
            fig.run.peak_spread_us
        );
        assert!(
            fig.steady_tail_us < 10.0,
            "steady tail {} µs",
            fig.steady_tail_us
        );
        assert!(fig.render().contains("Figure 2"));
    }
}
