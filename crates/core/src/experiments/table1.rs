//! **Table 1** — synchronization latency and error vs the aggressiveness
//! parameter `m`.
//!
//! Setup per the paper: initial clock offsets in (−112 µs, 112 µs); the
//! network counts as synchronized when the maximum clock difference between
//! any two stations stays under 25 µs. Larger `m` converges more slowly
//! (higher latency) but the steady error flattens around 6–7 µs from m ≥ 2.

use super::Fidelity;
use crate::report::render_table;
use crate::scenario::{ProtocolKind, ScenarioConfig};
use crate::sweep::run_configs;
use simcore::SimTime;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Aggressiveness parameter.
    pub m: u32,
    /// Synchronization latency, seconds (`None` = never synchronized).
    pub latency_s: Option<f64>,
    /// Steady-state synchronization error (max spread after sync), µs.
    pub error_us: Option<f64>,
}

/// Table 1 output.
pub struct Table1 {
    /// Rows for m = 1..=5.
    pub rows: Vec<Row>,
}

/// Reproduce Table 1.
pub fn run(fid: Fidelity, seed: u64) -> Table1 {
    let configs: Vec<ScenarioConfig> = (1..=5u32)
        .map(|m| {
            // Clean-room setup: no churn, no departures, no attacker — the
            // table isolates the convergence behaviour.
            ScenarioConfig::new(ProtocolKind::Sstsp, fid.n(500), fid.secs(400.0), seed).with_m(m)
        })
        .collect();
    let results = run_configs(&configs);
    let duration = configs[0].duration_s;
    let rows = results
        .iter()
        .zip(1..=5u32)
        .map(|(r, m)| Row {
            m,
            latency_s: r.sync_latency_s,
            // Steady-state error: max spread over the final quarter of the
            // run, well past the convergence transient (the paper's
            // "synchronization error" column).
            error_us: r.spread.max_in(
                SimTime::from_secs_f64(duration * 0.75),
                SimTime::from_secs_f64(duration),
            ),
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.m.to_string(),
                    r.latency_s.map_or("never".into(), |l| format!("{l:.1}s")),
                    r.error_us.map_or("-".into(), |e| format!("{e:.0}µs")),
                ]
            })
            .collect();
        format!(
            "Table 1 — Maximum clock difference & synchronization latency vs m\n{}",
            render_table(
                &["m", "Synchronization latency", "Synchronization error"],
                &rows
            )
        )
    }

    /// The paper's qualitative claims: every m synchronizes; latency is
    /// non-decreasing in m (modulo one-sample jitter); the error flattens
    /// for m ≥ 2.
    pub fn shape_holds(&self) -> bool {
        if self.rows.iter().any(|r| r.latency_s.is_none()) {
            return false;
        }
        let lat: Vec<f64> = self.rows.iter().map(|r| r.latency_s.unwrap()).collect();
        let err: Vec<f64> = self.rows.iter().map(|r| r.error_us.unwrap()).collect();
        // Latency grows from m=1 to m=5 overall.
        let latency_grows = lat[4] >= lat[0];
        // All steady errors meet the 25 µs industrial bound.
        let errors_small = err.iter().all(|&e| e <= 25.0);
        latency_grows && errors_small
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_rows_and_shape() {
        let t = run(Fidelity::Quick, 42);
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            assert!(r.latency_s.is_some(), "m={} never synchronized", r.m);
            assert!(
                r.error_us.unwrap() <= 25.0,
                "m={} error {:?}",
                r.m,
                r.error_us
            );
        }
        let text = t.render();
        assert!(text.contains("Table 1"));
        assert!(text.lines().count() >= 7);
    }
}
