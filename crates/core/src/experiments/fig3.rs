//! **Figure 3** — TSF under the fast-beacon attack, 100 stations.
//!
//! The attacker beacons at the start of every BP (no random delay) from
//! 400 s to 600 s with a timestamp slower than its clock. It wins every
//! contention, suppressing all legitimate beacons; since TSF only adopts
//! *later* timestamps, nobody adopts the attacker's time — the network
//! simply stops exchanging timing information and the clocks drift apart
//! at their native rates. The paper reports the error rising to ~2·10⁴ µs.

use super::Fidelity;
use crate::engine::RunResult;
use crate::invariants::run_checked;
use crate::report::render_series_chart;
use crate::scenario::ProtocolKind;
use simcore::SimTime;

/// Figure 3 output.
pub struct Fig3 {
    /// The attacked TSF run.
    pub run: RunResult,
    /// Peak spread inside the attack window, µs.
    pub peak_during_attack_us: f64,
    /// Peak spread before the attack, µs.
    pub peak_before_attack_us: f64,
    /// Attack window (seconds).
    pub attack_window_s: (f64, f64),
}

/// Reproduce Figure 3.
pub fn run(fid: Fidelity, seed: u64) -> Fig3 {
    let mut cfg = super::scaled_paper_scenario(ProtocolKind::Tsf, 100, fid, seed);
    let start_s = fid.secs(400.0);
    let end_s = fid.secs(600.0);
    cfg.attacker = Some(crate::scenario::AttackerSpec {
        start_s,
        end_s,
        error_us: 30.0,
    });
    // The paper's Fig. 3 isolates the attack effect on TSF (no reference
    // role exists in TSF anyway).
    cfg.ref_leaves_s.clear();
    let run = run_checked(&cfg);
    let peak_during = run
        .spread
        .max_in(
            SimTime::from_secs_f64(start_s),
            SimTime::from_secs_f64(end_s),
        )
        .unwrap_or(f64::NAN);
    let peak_before = run
        .spread
        .max_in(SimTime::ZERO, SimTime::from_secs_f64(start_s))
        .unwrap_or(f64::NAN);
    Fig3 {
        run,
        peak_during_attack_us: peak_during,
        peak_before_attack_us: peak_before,
        attack_window_s: (start_s, end_s),
    }
}

impl Fig3 {
    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3 — Maximum clock difference, TSF, fast-beacon attacker \
             active {:.0}–{:.0} s\n\n",
            self.attack_window_s.0, self.attack_window_s.1
        );
        out.push_str(&render_series_chart(&self.run.spread, 72, 10));
        out.push_str(&format!(
            "  peak before attack {:.0} µs   peak during attack {:.0} µs\n",
            self.peak_before_attack_us, self.peak_during_attack_us
        ));
        out
    }

    /// The paper's qualitative claim: during the attack the error climbs
    /// into the 10⁴ µs range (the paper reports ≈ 2·10⁴ µs) because beacon
    /// suppression lets the clocks free-run at drift rate. At 100 stations
    /// TSF is already degraded *before* the attack (that is Figure 1's
    /// point), so the claim is about the absolute blow-up, plus strict
    /// worsening.
    pub fn shape_holds(&self) -> bool {
        let floor = self.peak_during_attack_us > 5_000.0;
        let worse = self.peak_during_attack_us > self.peak_before_attack_us;
        // At quick scale the attack window is short; scale the absolute
        // floor by the window length relative to the paper's 200 s.
        let window = self.attack_window_s.1 - self.attack_window_s.0;
        let scaled_floor = 5_000.0 * (window / 200.0).min(1.0);
        worse && (floor || self.peak_during_attack_us > scaled_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig3_attack_desynchronizes_tsf() {
        let fig = run(Fidelity::Quick, 42);
        assert!(
            fig.peak_during_attack_us > fig.peak_before_attack_us * 3.0,
            "attack must blow up the spread: before {:.1} µs, during {:.1} µs",
            fig.peak_before_attack_us,
            fig.peak_during_attack_us
        );
        assert!(fig.render().contains("Figure 3"));
    }
}
