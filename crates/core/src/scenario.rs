//! Scenario configuration.
//!
//! Every experiment in the paper is a point in this configuration space.
//! The `paper_*` constructors reproduce the setups of Sec. 5 exactly:
//! 1000 s runs, BP = 0.1 s, w = 30, l = 1, drift ±0.01 %, PER 0.01 %,
//! initial offsets ±112 µs, 5 % of the stations leaving at k·200 s for
//! 50 s, and the reference leaving at 300 s, 500 s and 800 s.

use clocks::DriftModel;
use protocols::api::ProtocolConfig;
use serde::{Deserialize, Serialize};

pub use attacks::campaign::{CampaignKind, CampaignSpec};

/// Which synchronization protocol the (honest) stations run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// IEEE 802.11 TSF (baseline).
    Tsf,
    /// ATSP (Lai & Zhou 2003).
    Atsp,
    /// TATSP (tiered ATSP).
    Tatsp,
    /// SATSF (Zhou & Lai 2005).
    Satsf,
    /// Single-hop ASP (Sheu, Chao & Sun 2004).
    Asp,
    /// Rentel & Kunz controlled-clock mechanism (2004).
    Rk,
    /// SSTSP (the paper's contribution).
    Sstsp,
}

impl ProtocolKind {
    /// Whether this protocol transmits µTESLA-secured beacons.
    pub fn secured(self) -> bool {
        matches!(self, ProtocolKind::Sstsp)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Tsf => "TSF",
            ProtocolKind::Atsp => "ATSP",
            ProtocolKind::Tatsp => "TATSP",
            ProtocolKind::Satsf => "SATSF",
            ProtocolKind::Asp => "ASP",
            ProtocolKind::Rk => "RK",
            ProtocolKind::Sstsp => "SSTSP",
        }
    }
}

/// Station churn: a fraction of stations leaves periodically and returns.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Departure period in seconds (paper: every 200 s).
    pub period_s: f64,
    /// Fraction of stations leaving each time (paper: 5 %).
    pub fraction: f64,
    /// Absence duration in seconds (paper: 50 s).
    pub absence_s: f64,
}

impl ChurnConfig {
    /// The paper's churn: 5 % leave at k·200 s, return after 50 s.
    pub fn paper() -> Self {
        ChurnConfig {
            period_s: 200.0,
            fraction: 0.05,
            absence_s: 50.0,
        }
    }
}

/// The attacker wired into the scenario (one attacker station, Figs. 3–4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AttackerSpec {
    /// Attack window start, seconds (paper: 400 s).
    pub start_s: f64,
    /// Attack window end, seconds (paper: 600 s).
    pub end_s: f64,
    /// How much slower than the attacker's clock the forged timestamps
    /// are, µs. Chosen below δ so SSTSP's guard check passes (paper).
    pub error_us: f64,
}

impl AttackerSpec {
    /// The paper's attacker: active 400 s – 600 s; 30 µs of timestamp
    /// error (under the default δ = 50 µs).
    pub fn paper() -> Self {
        AttackerSpec {
            start_s: 400.0,
            end_s: 600.0,
            error_us: 30.0,
        }
    }
}

/// Topology for the multi-hop extension. `None` = the paper's single-hop
/// IBSS (full connectivity, fast-path channel model).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum TopologySpec {
    /// A path of stations: worst case for per-hop error accumulation.
    Line,
    /// A cols × rows grid with 4-neighborhood.
    Grid {
        /// Grid columns.
        cols: u32,
        /// Grid rows.
        rows: u32,
    },
    /// Unit-disk graph in a square area (re-sampled until connected).
    RandomDisk {
        /// Square side length.
        side: f64,
        /// Radio range.
        range: f64,
    },
    /// A cycle of stations (two disjoint timing paths between any pair).
    Ring,
    /// `domains` full-mesh islands of `cols × rows` stations each, chained
    /// by gateway stations that hear two adjacent islands in full — the
    /// canonical multi-collision-domain mesh. Station count is derived:
    /// `domains·cols·rows + domains − 1`. SSTSP runs with per-domain
    /// reference election on this topology.
    Bridged {
        /// Number of collision-domain islands.
        domains: u32,
        /// Island grid columns.
        cols: u32,
        /// Island grid rows.
        rows: u32,
    },
}

impl TopologySpec {
    /// The station count this spec requires, when it determines one.
    pub fn required_nodes(&self) -> Option<u32> {
        match *self {
            TopologySpec::Grid { cols, rows } => Some(cols * rows),
            TopologySpec::Bridged {
                domains,
                cols,
                rows,
            } => Some(domains * cols * rows + domains - 1),
            _ => None,
        }
    }
}

/// A jamming window: the channel destroys every transmission inside it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JamWindow {
    /// Start, seconds.
    pub start_s: f64,
    /// End, seconds.
    pub end_s: f64,
}

/// A complete scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Protocol run by honest stations.
    pub protocol: ProtocolKind,
    /// Number of stations (including the attacker if present).
    pub n_nodes: u32,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Master seed; every run is a pure function of it.
    pub seed: u64,
    /// Oscillator population model.
    pub drift: DriftModel,
    /// Packet error rate.
    pub per: f64,
    /// Protocol parameters (BP, w, l, m, δ, ...).
    pub protocol_config: ProtocolConfig,
    /// Periodic station churn, if any.
    pub churn: Option<ChurnConfig>,
    /// Instants (seconds) at which the current reference node leaves; it
    /// returns `ref_absence_s` later.
    pub ref_leaves_s: Vec<f64>,
    /// How long a departed reference stays away.
    pub ref_absence_s: f64,
    /// The attacker, if any (station id = n_nodes - 1).
    pub attacker: Option<AttackerSpec>,
    /// A coordinated multi-attacker campaign, if any (see
    /// [`campaign_member_ids`](Self::campaign_member_ids) for which
    /// stations are compromised).
    pub campaign: Option<CampaignSpec>,
    /// Jamming windows.
    pub jam_windows: Vec<JamWindow>,
    /// Optional multi-hop topology (the paper's future-work extension).
    pub topology: Option<TopologySpec>,
    /// Sub-µs timestamping jitter bound (uniform `[0, bound]`), µs.
    pub timestamp_jitter_us: f64,
}

impl ScenarioConfig {
    /// A minimal scenario: no churn, no reference departures, no attacker.
    pub fn new(protocol: ProtocolKind, n_nodes: u32, duration_s: f64, seed: u64) -> Self {
        assert!(n_nodes >= 2, "a network needs at least two stations");
        assert!(duration_s > 0.0);
        let mut pc = ProtocolConfig::paper();
        pc.total_intervals = (duration_s / (pc.bp_us / 1e6)).ceil() as usize + 64;
        ScenarioConfig {
            protocol,
            n_nodes,
            duration_s,
            seed,
            drift: DriftModel::paper(),
            per: 1e-4,
            protocol_config: pc,
            churn: None,
            ref_leaves_s: Vec::new(),
            ref_absence_s: 50.0,
            attacker: None,
            campaign: None,
            jam_windows: Vec::new(),
            topology: None,
            timestamp_jitter_us: 1.0,
        }
    }

    /// The paper's Sec. 5 setup: 1000 s, churn at k·200 s, reference
    /// leaving at 300/500/800 s.
    pub fn paper(protocol: ProtocolKind, n_nodes: u32, seed: u64) -> Self {
        let mut cfg = Self::new(protocol, n_nodes, 1000.0, seed);
        cfg.churn = Some(ChurnConfig::paper());
        cfg.ref_leaves_s = vec![300.0, 500.0, 800.0];
        cfg
    }

    /// The paper's hostile setup (Figs. 3–4): the Sec. 5 scenario plus the
    /// fast-beacon attacker active 400 s – 600 s. To isolate the attack
    /// effect the reference-departure schedule is kept (the 500 s departure
    /// lands inside the attack window, exactly as in the paper).
    pub fn paper_with_attacker(protocol: ProtocolKind, n_nodes: u32, seed: u64) -> Self {
        let mut cfg = Self::paper(protocol, n_nodes, seed);
        cfg.attacker = Some(AttackerSpec::paper());
        cfg
    }

    /// Aggressiveness parameter sweep entry (Table 1).
    pub fn with_m(mut self, m: u32) -> Self {
        self.protocol_config.m = m;
        self
    }

    /// Override the loss-tolerance parameter `l`.
    pub fn with_l(mut self, l: u32) -> Self {
        self.protocol_config.l = l;
        self
    }

    /// Number of beacon periods in the run.
    pub fn total_bps(&self) -> u64 {
        (self.duration_s / (self.protocol_config.bp_us / 1e6)).floor() as u64
    }

    /// The attacker's station id, if an attacker is configured.
    pub fn attacker_id(&self) -> Option<u32> {
        self.attacker.map(|_| self.n_nodes - 1)
    }

    /// The contiguous id range compromised by the campaign (empty without
    /// one). The campaign takes the *highest-id island stations*: the tail
    /// of the last island on a bridged mesh — so gateways keep relaying
    /// and a small coalition is confined to one collision domain, while a
    /// coalition larger than an island spans domains — and the tail of
    /// the whole id space otherwise.
    pub fn campaign_member_ids(&self) -> std::ops::Range<u32> {
        let Some(c) = &self.campaign else { return 0..0 };
        let top = match self.topology {
            Some(TopologySpec::Bridged {
                domains,
                cols,
                rows,
            }) => domains * cols * rows,
            _ => self.n_nodes,
        };
        assert!(
            c.attackers < top && c.attackers <= self.n_nodes - 2,
            "campaign must leave honest island stations ({} attackers, {} stations)",
            c.attackers,
            self.n_nodes
        );
        top - c.attackers..top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_section5() {
        let cfg = ScenarioConfig::paper(ProtocolKind::Sstsp, 500, 1);
        assert_eq!(cfg.n_nodes, 500);
        assert_eq!(cfg.duration_s, 1000.0);
        assert_eq!(cfg.total_bps(), 10_000);
        assert!(cfg.protocol_config.total_intervals >= 10_000);
        let churn = cfg.churn.unwrap();
        assert_eq!(churn.period_s, 200.0);
        assert_eq!(churn.fraction, 0.05);
        assert_eq!(churn.absence_s, 50.0);
        assert_eq!(cfg.ref_leaves_s, vec![300.0, 500.0, 800.0]);
        assert!(cfg.attacker.is_none());
    }

    #[test]
    fn attacker_scenario_sets_window() {
        let cfg = ScenarioConfig::paper_with_attacker(ProtocolKind::Tsf, 100, 1);
        let atk = cfg.attacker.unwrap();
        assert_eq!(atk.start_s, 400.0);
        assert_eq!(atk.end_s, 600.0);
        assert_eq!(cfg.attacker_id(), Some(99));
    }

    #[test]
    fn chain_length_covers_run() {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 10, 123.0, 0);
        assert!(cfg.protocol_config.total_intervals as u64 >= cfg.total_bps());
    }

    #[test]
    fn m_and_l_overrides() {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 10, 10.0, 0)
            .with_m(2)
            .with_l(3);
        assert_eq!(cfg.protocol_config.m, 2);
        assert_eq!(cfg.protocol_config.l, 3);
    }

    #[test]
    fn protocol_kind_properties() {
        assert!(ProtocolKind::Sstsp.secured());
        assert!(!ProtocolKind::Tsf.secured());
        assert_eq!(ProtocolKind::Atsp.name(), "ATSP");
    }

    #[test]
    #[should_panic(expected = "two stations")]
    fn single_node_rejected() {
        let _ = ScenarioConfig::new(ProtocolKind::Tsf, 1, 1.0, 0);
    }
}
