//! Engine instrumentation: the hook surface the fault-injection and
//! invariant-checking layers attach to.
//!
//! The engine itself stays policy-free: it exposes *where* faults can act
//! (BP boundaries, individual beacon deliveries) and *what* can be observed
//! (per-delivery protocol state deltas, per-BP node snapshots), while the
//! `faults` crate supplies the schedules and the [`crate::invariants`]
//! module the checks. A [`NoopHook`] run is bit-identical to an uninstrumented
//! one: hooks receive copies and deltas, never mutable engine internals, and
//! every fault-layer random decision comes from the hook's own RNG stream —
//! the engine's streams are never touched.

use crate::scenario::ScenarioConfig;
use protocols::api::{AnchorRegistry, BeaconPayload, NodeId};
use protocols::sstsp::SstspStats;
use simcore::SimTime;
pub use wireless::WindowOutcome;

/// A state change the engine applies on behalf of a fault plan at the start
/// of a beacon period. Actions are the only way a hook mutates the network;
/// they model physical faults (crashed hardware, glitched oscillators,
/// interference), not protocol-level behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Crash a station: it leaves the network immediately and, if
    /// `rejoin_after_bps` is set, reboots and rejoins that many BPs later
    /// (through the protocol's normal join path).
    Crash {
        /// Station to crash.
        node: NodeId,
        /// BPs until reboot; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Crash whichever station currently holds the reference role (no-op
    /// if none does).
    KillReference {
        /// BPs until reboot; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Step a station's hardware clock by `delta_us` (register glitch,
    /// brown-out losing ticks).
    ClockStep {
        /// Affected station.
        node: NodeId,
        /// Signed step in microseconds.
        delta_us: f64,
    },
    /// Freeze a station's hardware clock at its current reading.
    ClockFreeze {
        /// Affected station.
        node: NodeId,
    },
    /// Release a previous freeze; the clock resumes from the frozen value.
    ClockUnfreeze {
        /// Affected station.
        node: NodeId,
    },
    /// Crash every non-gateway member of one collision domain (mesh
    /// scenarios with a domain decomposition only; no-op otherwise). The
    /// domain index wraps modulo the domain count so fuzz plans stay valid
    /// across shrinking.
    CrashDomain {
        /// Collision-domain index (wrapped modulo the domain count).
        domain: u32,
        /// BPs until the members reboot; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Crash one gateway (bridge) station of a mesh decomposition (no-op
    /// without one). The bridge index wraps modulo the bridge count.
    KillBridge {
        /// Bridge index (wrapped modulo the bridge count).
        bridge: u32,
        /// BPs until the gateway reboots; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Set the channel's burst-loss probability (0 clears it).
    SetBurstLoss(f64),
    /// Engage (`true`) or release (`false`) fault-layer jamming, OR-ed with
    /// the scenario's own jam windows.
    SetJammed(bool),
}

/// What a hook decides about one beacon delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFate {
    /// Deliver the (possibly mutated) payload to the receiver.
    Deliver,
    /// Drop the beacon at this receiver (targeted loss).
    Drop,
}

/// Identifies one beacon delivery before it reaches the receiver.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryCtx {
    /// Beacon period index (1-based).
    pub bp: u64,
    /// Transmitting station.
    pub src: NodeId,
    /// Receiving station.
    pub dst: NodeId,
    /// Simulated reception instant.
    pub t_rx: SimTime,
}

/// Everything observable about one completed beacon delivery: the payload
/// as received (after any hook mutation), the receiver's state immediately
/// before the protocol processed it, and its diagnostic counters before and
/// after — the deltas reveal whether the beacon was accepted.
pub struct DeliveryObs<'a> {
    /// Delivery identification (same values the pre-hook saw).
    pub ctx: DeliveryCtx,
    /// The payload the receiver processed.
    pub payload: &'a BeaconPayload,
    /// Receiver's local (hardware) timestamp of the reception.
    pub local_rx_us: f64,
    /// Receiver's adjusted clock evaluated at the reception instant,
    /// *before* processing — the exact value protocol checks ran against.
    pub clock_before_us: f64,
    /// Receiver's upstream reference before processing.
    pub ref_before: Option<NodeId>,
    /// SSTSP diagnostic counters before processing (`None` for protocols
    /// without them).
    pub stats_before: Option<SstspStats>,
    /// The same counters after processing.
    pub stats_after: Option<SstspStats>,
    /// The published µTESLA anchor registry (first-write-wins, so entries
    /// are exactly what honest verifiers saw).
    pub anchors: &'a AnchorRegistry,
}

impl DeliveryObs<'_> {
    /// Whether the receiver admitted the beacon (passed every protocol
    /// check). Only meaningful for protocols exposing stats; others return
    /// `false`.
    pub fn accepted(&self) -> bool {
        match (self.stats_before, self.stats_after) {
            (Some(b), Some(a)) => a.accepted > b.accepted,
            _ => false,
        }
    }
}

/// Per-station snapshot taken at the end of each beacon period.
#[derive(Debug, Clone, Copy)]
pub struct NodeSnapshot {
    /// Station id.
    pub id: NodeId,
    /// Present in the network (not churned out / crashed).
    pub present: bool,
    /// Honest (not the scenario's attacker).
    pub honest: bool,
    /// Protocol-reported synchronization state.
    pub synchronized: bool,
    /// Whether the station holds the reference role.
    pub is_reference: bool,
    /// Adjusted clock at the BP-end sampling instant (µs).
    pub clock_us: f64,
    /// SSTSP diagnostic counters (`None` for other protocols).
    pub stats: Option<SstspStats>,
}

/// End-of-BP view handed to hooks after metrics sampling.
pub struct BpView<'a> {
    /// Beacon period index (1-based).
    pub bp: u64,
    /// The BP-end sampling instant.
    pub t_end: SimTime,
    /// One snapshot per station (indexed by id).
    pub nodes: &'a [NodeSnapshot],
    /// Station holding the reference role, if any.
    pub reference: Option<NodeId>,
    /// Whether the engine disturbed the network this BP (churn, reference
    /// departure, jamming, a reference change, an active attacker window,
    /// or any fault action) — convergence-style invariants suspend
    /// themselves for a settle window after disturbances.
    pub disturbed: bool,
}

/// What an active hook promises the engine, letting it pick the fastest
/// execution path that still honors the hook's observation needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HookCaps {
    /// The hook is a *passive observer* that can be fed from the fast
    /// path's batched end-of-BP callback ([`EngineHook::on_bp_batch`])
    /// instead of per-event dispatch. A fast-path-safe hook must not rely
    /// on `on_bp_start` (it never injects [`FaultAction`]s), `on_window`,
    /// `on_delivery` (it never mutates or drops payloads), `post_delivery`,
    /// or `on_bp_end` — on the fast path none of those are called. It still
    /// receives `on_run_start`, `on_beacon_tx`-equivalent data inside each
    /// batch, and `on_run_end`.
    pub fastpath_safe: bool,
}

/// One beacon reception as captured by the fast path for a batched hook:
/// the per-receiver identification plus the protocol-state deltas the slow
/// path would have exposed through [`DeliveryObs`].
#[derive(Debug, Clone, Copy)]
pub struct BatchRx {
    /// Transmitting station.
    pub src: NodeId,
    /// Receiving station.
    pub dst: NodeId,
    /// Simulated reception instant.
    pub t_rx: SimTime,
    /// Receiver's adjusted clock at the reception instant, before
    /// processing.
    pub clock_before_us: f64,
    /// SSTSP diagnostic counters before processing (`None` for protocols
    /// without them).
    pub stats_before: Option<SstspStats>,
    /// The same counters after processing.
    pub stats_after: Option<SstspStats>,
}

/// Everything a beacon period produced, handed to fast-path-safe hooks in
/// one end-of-BP callback. Transmissions are in slot order and receptions
/// in delivery order — exactly the order the slow path would have emitted
/// the corresponding per-event callbacks.
pub struct BpBatch<'a> {
    /// Beacon period index (1-based).
    pub bp: u64,
    /// The BP-end sampling instant.
    pub t_end: SimTime,
    /// Stations that transmitted a beacon this BP, in slot order.
    pub txs: &'a [NodeId],
    /// Completed deliveries, in delivery order.
    pub rxs: &'a [BatchRx],
    /// Per-collision-domain reference holders (`None` entries for domains
    /// without one); `None` for single-hop runs.
    pub domain_refs: Option<&'a [Option<NodeId>]>,
    /// Station holding the (global) reference role, if any.
    pub reference: Option<NodeId>,
    /// Spread across present, honest, synchronized stations at `t_end`
    /// (`None` with fewer than two qualifying stations).
    pub spread_us: Option<f64>,
    /// Whether the engine disturbed the network this BP (same meaning as
    /// [`BpView::disturbed`]).
    pub disturbed: bool,
}

/// Observer/actor attached to a [`crate::engine::Network`] run.
///
/// All methods have no-op defaults; implementors override what they need.
/// The engine calls them in a fixed order per BP: `on_bp_start` (collect
/// fault actions) → `on_delivery`/`post_delivery` per beacon delivery →
/// `on_bp_end` after metrics. Hooks declaring themselves fast-path-safe
/// via [`EngineHook::capabilities`] instead receive one [`BpBatch`] per BP
/// through [`EngineHook::on_bp_batch`].
pub trait EngineHook {
    /// Whether the hook wants per-delivery observations and BP views. The
    /// engine skips snapshot assembly entirely when `false`, keeping the
    /// uninstrumented hot path allocation- and virtual-call-free.
    fn active(&self) -> bool {
        true
    }

    /// What this hook promises the engine. The default (no capabilities)
    /// keeps an active hook on the fully-instrumented slow path; passive
    /// observers override this to stay on the fast path.
    fn capabilities(&self) -> HookCaps {
        HookCaps::default()
    }

    /// Called at the end of each BP on the fast path when
    /// [`capabilities`](EngineHook::capabilities) declared
    /// `fastpath_safe`. Replaces the per-event callbacks for passive
    /// observers; never called on the slow path.
    fn on_bp_batch(&mut self, _batch: &BpBatch<'_>) {}

    /// Called once after node initiation (anchors published), before BP 1.
    fn on_run_start(&mut self, _scenario: &ScenarioConfig, _anchors: &AnchorRegistry) {}

    /// Called at the start of each BP; push [`FaultAction`]s into `actions`
    /// to mutate the network. Applied in order, before the beacon window.
    fn on_bp_start(&mut self, _bp: u64, _t0: SimTime, _actions: &mut Vec<FaultAction>) {}

    /// Called after the MAC contention window resolves, before the outcome
    /// is applied; `live` is what the channel model produced. Returning
    /// `Some` replaces it — this is the replay seam: a recorded schedule
    /// drives the run through here while the live outcome stays available
    /// for divergence cross-checking. Single-hop runs only; mesh window
    /// resolution is per-link and has no single window outcome to override.
    fn on_window(&mut self, _bp: u64, _live: &WindowOutcome) -> Option<WindowOutcome> {
        None
    }

    /// Called once per transmitted beacon (after the contention window
    /// resolves, before per-receiver deliveries). Trace recorders use this
    /// to log the send side; deliveries are observed per-receiver.
    fn on_beacon_tx(&mut self, _bp: u64, _src: NodeId, _t_tx: SimTime) {}

    /// Called for each beacon delivery before the receiver processes it.
    /// The hook may mutate the payload (corruption faults) or drop it.
    fn on_delivery(&mut self, _ctx: &DeliveryCtx, _payload: &mut BeaconPayload) -> DeliveryFate {
        DeliveryFate::Deliver
    }

    /// Called after the receiver processed a delivered beacon.
    fn post_delivery(&mut self, _obs: &DeliveryObs<'_>) {}

    /// Called at the end of each BP with per-station snapshots.
    fn on_bp_end(&mut self, _view: &BpView<'_>) {}

    /// Called once after the run loop with the aggregated result.
    fn on_run_end(&mut self, _result: &crate::engine::RunResult) {}
}

/// The do-nothing hook driving uninstrumented runs.
pub struct NoopHook;

impl EngineHook for NoopHook {
    fn active(&self) -> bool {
        false
    }
}
