//! `sstsp-sim` — run one synchronization scenario from the command line.
//!
//! ```text
//! sstsp-sim --protocol sstsp --nodes 100 --duration 60 --seed 1 --chart
//! sstsp-sim --protocol tsf --nodes 300 --duration 1000 --csv out.csv
//! sstsp-sim --protocol sstsp --nodes 500 --m 4 --attack 400,600,30 --chart
//! ```
//!
//! Flags:
//!
//! | flag | meaning | default |
//! |------|---------|---------|
//! | `--protocol tsf\|atsp\|tatsp\|satsf\|asp\|rk\|sstsp` | protocol | sstsp |
//! | `--nodes N` | station count | 50 |
//! | `--duration S` | simulated seconds | 60 |
//! | `--seed N` | master seed | 1 |
//! | `--m N` / `--l N` | SSTSP parameters | 4 / 1 |
//! | `--guard US` | fine guard time δ in µs | 300 |
//! | `--per P` | packet error rate | 1e-4 |
//! | `--churn PERIOD,FRACTION,ABSENCE` | station churn | off |
//! | `--ref-leaves T1,T2,...` | reference departure times (s) | none |
//! | `--attack START,END,ERROR_US` | fast-beacon attacker | off |
//! | `--jam START,END` | jamming window (repeatable) | none |
//! | `--chart` | print the ASCII spread chart | off |
//! | `--csv PATH` | write the spread series as CSV | off |

use sstsp::scenario::{AttackerSpec, ChurnConfig, JamWindow};
use sstsp::{Network, ProtocolKind, ScenarioConfig};

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nsee `sstsp-sim` source header for flags");
    std::process::exit(2)
}

fn parse_list(s: &str, n: usize, flag: &str) -> Vec<f64> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad number '{p}' in {flag}")))
        })
        .collect();
    if n > 0 && parts.len() != n {
        usage(&format!("{flag} expects {n} comma-separated numbers"));
    }
    parts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut protocol = ProtocolKind::Sstsp;
    let mut nodes = 50u32;
    let mut duration = 60.0f64;
    let mut seed = 1u64;
    let mut m = None::<u32>;
    let mut l = None::<u32>;
    let mut guard = None::<f64>;
    let mut per = None::<f64>;
    let mut churn = None::<ChurnConfig>;
    let mut ref_leaves: Vec<f64> = Vec::new();
    let mut attack = None::<AttackerSpec>;
    let mut jams: Vec<JamWindow> = Vec::new();
    let mut chart = false;
    let mut csv = None::<String>;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
                .clone()
        };
        match flag.as_str() {
            "--protocol" => {
                protocol = match val().to_lowercase().as_str() {
                    "tsf" => ProtocolKind::Tsf,
                    "atsp" => ProtocolKind::Atsp,
                    "tatsp" => ProtocolKind::Tatsp,
                    "satsf" => ProtocolKind::Satsf,
                    "asp" => ProtocolKind::Asp,
                    "rk" => ProtocolKind::Rk,
                    "sstsp" => ProtocolKind::Sstsp,
                    other => usage(&format!("unknown protocol '{other}'")),
                }
            }
            "--nodes" => nodes = val().parse().unwrap_or_else(|_| usage("bad --nodes")),
            "--duration" => duration = val().parse().unwrap_or_else(|_| usage("bad --duration")),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage("bad --seed")),
            "--m" => m = Some(val().parse().unwrap_or_else(|_| usage("bad --m"))),
            "--l" => l = Some(val().parse().unwrap_or_else(|_| usage("bad --l"))),
            "--guard" => guard = Some(val().parse().unwrap_or_else(|_| usage("bad --guard"))),
            "--per" => per = Some(val().parse().unwrap_or_else(|_| usage("bad --per"))),
            "--churn" => {
                let v = parse_list(&val(), 3, "--churn");
                churn = Some(ChurnConfig {
                    period_s: v[0],
                    fraction: v[1],
                    absence_s: v[2],
                });
            }
            "--ref-leaves" => ref_leaves = parse_list(&val(), 0, "--ref-leaves"),
            "--attack" => {
                let v = parse_list(&val(), 3, "--attack");
                attack = Some(AttackerSpec {
                    start_s: v[0],
                    end_s: v[1],
                    error_us: v[2],
                });
            }
            "--jam" => {
                let v = parse_list(&val(), 2, "--jam");
                jams.push(JamWindow {
                    start_s: v[0],
                    end_s: v[1],
                });
            }
            "--chart" => chart = true,
            "--csv" => csv = Some(val()),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }

    let mut cfg = ScenarioConfig::new(protocol, nodes, duration, seed);
    if let Some(m) = m {
        cfg = cfg.with_m(m);
    }
    if let Some(l) = l {
        cfg = cfg.with_l(l);
    }
    if let Some(g) = guard {
        cfg.protocol_config.guard_fine_us = g;
    }
    if let Some(p) = per {
        cfg.per = p;
    }
    cfg.churn = churn;
    cfg.ref_leaves_s = ref_leaves;
    cfg.attacker = attack;
    cfg.jam_windows = jams;

    eprintln!(
        "running {} × {} stations for {} s (seed {seed})...",
        cfg.protocol.name(),
        cfg.n_nodes,
        cfg.duration_s
    );
    let r = Network::build(&cfg).run();

    if chart {
        println!("{}", sstsp::report::render_series_chart(&r.spread, 72, 12));
    }
    println!("protocol:            {}", r.protocol);
    println!("stations:            {}", r.n_nodes);
    println!(
        "sync latency:        {}",
        r.sync_latency_s
            .map_or("never".into(), |v| format!("{v:.2} s"))
    );
    println!(
        "steady error:        {}",
        r.steady_error_us
            .map_or("-".into(), |v| format!("{v:.1} µs"))
    );
    println!("peak spread:         {:.1} µs", r.peak_spread_us);
    println!(
        "beacons:             {} ok / {} collided / {} silent / {} jammed",
        r.tx_successes, r.tx_collisions, r.silent_windows, r.jammed_windows
    );
    println!("reference changes:   {}", r.reference_changes);
    if cfg.attacker.is_some() {
        println!("attacker became ref: {}", r.attacker_became_reference);
    }
    if r.guard_rejections + r.mutesla_rejections > 0 {
        println!(
            "rejected beacons:    {} guard / {} µTESLA",
            r.guard_rejections, r.mutesla_rejections
        );
    }
    if r.alerts > 0 {
        println!("attack alerts:       {}", r.alerts);
    }

    if let Some(path) = csv {
        std::fs::write(&path, r.spread.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} samples to {path}", r.spread.len());
    }
}
