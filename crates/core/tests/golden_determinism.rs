//! Golden determinism: fixed-seed runs must reproduce recorded summary
//! values bit-for-bit, for every protocol.
//!
//! These constants pin the observable behavior of the engine hot loop, the
//! RNG streams, and the µTESLA crypto path. Any refactor that claims to be
//! behavior-preserving (allocation hoisting, verifier caching, event-queue
//! internals) must leave them untouched; a legitimate behavior change must
//! update them *and* say why in the commit.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo test --release -p sstsp --test golden_determinism -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDENS`.

use sstsp::{Network, ProtocolKind, ScenarioConfig};

const N_NODES: u32 = 8;
const DURATION_S: f64 = 12.0;
const SEED: u64 = 7;

/// Recorded summary per protocol: (kind, peak_spread_us, sync_latency_s,
/// steady_error_us, tx_successes, tx_collisions, silent_windows,
/// reference_changes, guard_rejections, mutesla_rejections, retargets,
/// final_reference).
type Golden = (
    ProtocolKind,
    f64,
    Option<f64>,
    Option<f64>,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    Option<u32>,
);

#[rustfmt::skip]
const GOLDENS: [Golden; 7] = [
    (ProtocolKind::Tsf, 112.6717169759795, Some(4.599999), Some(112.6717169759795), 103, 17, 0, 0, 0, 0, 0, None),
    (ProtocolKind::Atsp, 86.78270896099275, Some(0.399999), Some(34.74031974747777), 118, 2, 0, 0, 0, 0, 0, None),
    (ProtocolKind::Tatsp, 86.78270896099275, Some(0.399999), Some(28.897104548290372), 120, 0, 0, 0, 0, 0, 0, None),
    (ProtocolKind::Satsf, 196.97894508985337, Some(1.099999), Some(33.959499281831086), 113, 0, 7, 0, 0, 0, 0, None),
    (ProtocolKind::Asp, 187.35545515301055, Some(3.299999), Some(13.8130898270756), 105, 13, 2, 0, 0, 0, 0, None),
    (ProtocolKind::Rk, 171.21649383939803, Some(1.899999), Some(171.21649383939803), 61, 1, 58, 0, 0, 0, 0, None),
    (ProtocolKind::Sstsp, 218.49740660958923, Some(1.299999), Some(21.849832239560783), 118, 0, 2, 1, 0, 0, 812, Some(5)),
];

fn run(kind: ProtocolKind) -> sstsp::RunResult {
    let cfg = ScenarioConfig::new(kind, N_NODES, DURATION_S, SEED);
    Network::build(&cfg).run()
}

#[test]
fn fixed_seed_runs_match_recorded_goldens() {
    for &(
        kind,
        peak,
        latency,
        steady,
        successes,
        collisions,
        silent,
        ref_changes,
        guard,
        mutesla,
        retargets,
        final_ref,
    ) in &GOLDENS
    {
        let r = run(kind);
        let name = kind.name();
        assert_eq!(r.peak_spread_us, peak, "{name}: peak_spread_us");
        assert_eq!(r.sync_latency_s, latency, "{name}: sync_latency_s");
        assert_eq!(r.steady_error_us, steady, "{name}: steady_error_us");
        assert_eq!(r.tx_successes, successes, "{name}: tx_successes");
        assert_eq!(r.tx_collisions, collisions, "{name}: tx_collisions");
        assert_eq!(r.silent_windows, silent, "{name}: silent_windows");
        assert_eq!(
            r.reference_changes, ref_changes,
            "{name}: reference_changes"
        );
        assert_eq!(r.guard_rejections, guard, "{name}: guard_rejections");
        assert_eq!(r.mutesla_rejections, mutesla, "{name}: mutesla_rejections");
        assert_eq!(r.retargets, retargets, "{name}: retargets");
        assert_eq!(r.final_reference, final_ref, "{name}: final_reference");
    }
}

/// Re-running the exact same scenario twice in-process must agree on the
/// full spread series, not only the summary (catches state leaking across
/// runs through reused buffers).
#[test]
fn back_to_back_runs_are_bit_identical() {
    for kind in [ProtocolKind::Tsf, ProtocolKind::Sstsp] {
        let a = run(kind);
        let b = run(kind);
        assert_eq!(
            a.spread.values(),
            b.spread.values(),
            "{}: spread series",
            kind.name()
        );
    }
}

/// Generator: prints the current values in `GOLDENS` layout.
#[test]
#[ignore = "generator — run with --ignored --nocapture to refresh GOLDENS"]
fn print_goldens() {
    for kind in [
        ProtocolKind::Tsf,
        ProtocolKind::Atsp,
        ProtocolKind::Tatsp,
        ProtocolKind::Satsf,
        ProtocolKind::Asp,
        ProtocolKind::Rk,
        ProtocolKind::Sstsp,
    ] {
        let r = run(kind);
        println!(
            "    (ProtocolKind::{kind:?}, {:?}, {:?}, {:?}, {}, {}, {}, {}, {}, {}, {}, {:?}),",
            r.peak_spread_us,
            r.sync_latency_s,
            r.steady_error_us,
            r.tx_successes,
            r.tx_collisions,
            r.silent_windows,
            r.reference_changes,
            r.guard_rejections,
            r.mutesla_rejections,
            r.retargets,
            r.final_reference,
        );
    }
}
