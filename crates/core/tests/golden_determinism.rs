//! Golden determinism: fixed-seed runs must reproduce recorded summary
//! values bit-for-bit, for every protocol.
//!
//! These constants pin the observable behavior of the engine hot loop, the
//! RNG streams, and the µTESLA crypto path. Any refactor that claims to be
//! behavior-preserving (allocation hoisting, verifier caching, event-queue
//! internals) must leave them untouched; a legitimate behavior change must
//! update them *and* say why in the commit.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo test --release -p sstsp --test golden_determinism -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDENS`.

use sstsp::scenario::TopologySpec;
use sstsp::{InvariantChecker, Network, NoopHook, ProtocolKind, ScenarioConfig};

const N_NODES: u32 = 8;
const DURATION_S: f64 = 12.0;
const SEED: u64 = 7;

/// Recorded summary per protocol: (kind, peak_spread_us, sync_latency_s,
/// steady_error_us, tx_successes, tx_collisions, silent_windows,
/// reference_changes, guard_rejections, mutesla_rejections, retargets,
/// final_reference).
type Golden = (
    ProtocolKind,
    f64,
    Option<f64>,
    Option<f64>,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    u64,
    Option<u32>,
);

#[rustfmt::skip]
const GOLDENS: [Golden; 7] = [
    (ProtocolKind::Tsf, 112.6717169759795, Some(4.599999), Some(112.6717169759795), 103, 17, 0, 0, 0, 0, 0, None),
    (ProtocolKind::Atsp, 86.78270896099275, Some(0.399999), Some(34.74031974747777), 118, 2, 0, 0, 0, 0, 0, None),
    (ProtocolKind::Tatsp, 86.78270896099275, Some(0.399999), Some(28.897104548290372), 120, 0, 0, 0, 0, 0, 0, None),
    (ProtocolKind::Satsf, 196.97894508985337, Some(1.099999), Some(33.959499281831086), 113, 0, 7, 0, 0, 0, 0, None),
    (ProtocolKind::Asp, 187.35545515301055, Some(3.299999), Some(13.8130898270756), 105, 13, 2, 0, 0, 0, 0, None),
    (ProtocolKind::Rk, 171.21649383939803, Some(1.899999), Some(171.21649383939803), 61, 1, 58, 0, 0, 0, 0, None),
    (ProtocolKind::Sstsp, 218.49740660958923, Some(1.299999), Some(21.849832239560783), 118, 0, 2, 1, 0, 0, 812, Some(5)),
];

/// The engine-path variants pinned beyond the single-hop defaults:
/// a 12-station line topology (multi-hop relay path) and the reference-
/// change ablation path (reference leaves mid-run, l-window re-election).
#[rustfmt::skip]
const GOLDEN_MULTIHOP: Golden =
    (ProtocolKind::Sstsp, 1469.1320865955204, None, None, 858, 310, 12, 2, 0, 0, 891, Some(1));
#[rustfmt::skip]
const GOLDEN_ABLATION: Golden =
    (ProtocolKind::Sstsp, 229.77093229838647, Some(1.399999), Some(22.890236074104905), 114, 0, 6, 2, 0, 0, 714, Some(2));

fn run(kind: ProtocolKind) -> sstsp::RunResult {
    let cfg = ScenarioConfig::new(kind, N_NODES, DURATION_S, SEED);
    Network::build(&cfg).run()
}

/// 12-station line, the multihop experiment's hardest per-hop case at
/// quick-fidelity scale.
fn multihop_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 12, DURATION_S, SEED)
        .with_l(3)
        .with_m(6);
    cfg.topology = Some(TopologySpec::Line);
    cfg
}

/// Reference-change ablation shape: the elected reference leaves mid-run.
fn ablation_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, N_NODES, DURATION_S, SEED)
        .with_m(4)
        .with_l(2);
    cfg.ref_leaves_s = vec![6.0];
    cfg
}

fn assert_golden(r: &sstsp::RunResult, g: &Golden, name: &str) {
    let &(
        _,
        peak,
        latency,
        steady,
        successes,
        collisions,
        silent,
        ref_changes,
        guard,
        mutesla,
        retargets,
        final_ref,
    ) = g;
    assert_eq!(r.peak_spread_us, peak, "{name}: peak_spread_us");
    assert_eq!(r.sync_latency_s, latency, "{name}: sync_latency_s");
    assert_eq!(r.steady_error_us, steady, "{name}: steady_error_us");
    assert_eq!(r.tx_successes, successes, "{name}: tx_successes");
    assert_eq!(r.tx_collisions, collisions, "{name}: tx_collisions");
    assert_eq!(r.silent_windows, silent, "{name}: silent_windows");
    assert_eq!(
        r.reference_changes, ref_changes,
        "{name}: reference_changes"
    );
    assert_eq!(r.guard_rejections, guard, "{name}: guard_rejections");
    assert_eq!(r.mutesla_rejections, mutesla, "{name}: mutesla_rejections");
    assert_eq!(r.retargets, retargets, "{name}: retargets");
    assert_eq!(r.final_reference, final_ref, "{name}: final_reference");
}

#[test]
fn fixed_seed_runs_match_recorded_goldens() {
    for golden in &GOLDENS {
        let r = run(golden.0);
        assert_golden(&r, golden, golden.0.name());
    }
}

#[test]
fn fixed_seed_multihop_and_ablation_match_recorded_goldens() {
    let r = Network::build(&multihop_cfg()).run();
    assert_golden(&r, &GOLDEN_MULTIHOP, "multihop-line");
    let r = Network::build(&ablation_cfg()).run();
    assert_golden(&r, &GOLDEN_ABLATION, "ablation-refchange");
}

/// Hook transparency: attaching a hook — whether the inert [`NoopHook`] or
/// the passively observing [`InvariantChecker`] — must leave the run
/// bit-identical to the plain path. This is what lets every experiment run
/// invariant-checked while the goldens above stay valid.
#[test]
fn hooked_runs_are_bit_identical_to_plain_runs() {
    for cfg in [
        ScenarioConfig::new(ProtocolKind::Sstsp, N_NODES, DURATION_S, SEED),
        multihop_cfg(),
        ablation_cfg(),
    ] {
        let plain = Network::build(&cfg).run();
        let noop = Network::build(&cfg).run_with_hook(&mut NoopHook);
        let mut checker = InvariantChecker::for_scenario(&cfg);
        let checked = Network::build(&cfg).run_with_hook(&mut checker);
        assert!(
            checker.violations().is_empty(),
            "default scenario must be violation-free: {:?}",
            checker.violations()
        );
        for hooked in [&noop, &checked] {
            assert_eq!(plain.spread.values(), hooked.spread.values());
            assert_eq!(plain.tx_successes, hooked.tx_successes);
            assert_eq!(plain.tx_collisions, hooked.tx_collisions);
            assert_eq!(plain.retargets, hooked.retargets);
            assert_eq!(plain.final_reference, hooked.final_reference);
            assert_eq!(plain.peak_spread_us, hooked.peak_spread_us);
        }
    }
}

/// Telemetry transparency: enabling metrics recording (and attaching the
/// trace recorder) must leave runs bit-identical to the recorded goldens.
/// Telemetry observes through counters and the hook seam only — it never
/// touches the RNG streams or the event queue — so a recorded run IS the
/// plain run.
#[test]
fn telemetry_enabled_runs_match_recorded_goldens() {
    let _rec = sstsp_telemetry::recording();
    for golden in &GOLDENS {
        let r = run(golden.0);
        assert_golden(&r, golden, &format!("{} (telemetry on)", golden.0.name()));
    }
    let mut tracer = sstsp::TraceRecorder::new();
    let r = Network::build(&multihop_cfg()).run_with_hook(&mut tracer);
    assert_golden(&r, &GOLDEN_MULTIHOP, "multihop-line (traced)");
    let snap = sstsp_telemetry::snapshot();
    assert!(
        snap.counter("engine.beacon.tx") > 0,
        "recording session captured engine counters"
    );
}

/// Re-running the exact same scenario twice in-process must agree on the
/// full spread series, not only the summary (catches state leaking across
/// runs through reused buffers).
#[test]
fn back_to_back_runs_are_bit_identical() {
    for kind in [ProtocolKind::Tsf, ProtocolKind::Sstsp] {
        let a = run(kind);
        let b = run(kind);
        assert_eq!(
            a.spread.values(),
            b.spread.values(),
            "{}: spread series",
            kind.name()
        );
    }
}

/// Generator: prints the current values in `GOLDENS` layout.
#[test]
#[ignore = "generator — run with --ignored --nocapture to refresh GOLDENS"]
fn print_goldens() {
    for kind in [
        ProtocolKind::Tsf,
        ProtocolKind::Atsp,
        ProtocolKind::Tatsp,
        ProtocolKind::Satsf,
        ProtocolKind::Asp,
        ProtocolKind::Rk,
        ProtocolKind::Sstsp,
    ] {
        print_golden(&run(kind), &format!("{kind:?}"));
    }
    println!("multihop-line / ablation-refchange:");
    print_golden(&Network::build(&multihop_cfg()).run(), "Sstsp");
    print_golden(&Network::build(&ablation_cfg()).run(), "Sstsp");
}

#[allow(dead_code)]
fn print_golden(r: &sstsp::RunResult, kind: &str) {
    println!(
        "    (ProtocolKind::{kind}, {:?}, {:?}, {:?}, {}, {}, {}, {}, {}, {}, {}, {:?}),",
        r.peak_spread_us,
        r.sync_latency_s,
        r.steady_error_us,
        r.tx_successes,
        r.tx_collisions,
        r.silent_windows,
        r.reference_changes,
        r.guard_rejections,
        r.mutesla_rejections,
        r.retargets,
        r.final_reference,
    );
}
