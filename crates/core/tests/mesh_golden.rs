//! Mesh golden pins: the 2-domain grid-with-bridge scenario.
//!
//! This is the canonical multi-collision-domain shape — two 3×2 full-mesh
//! islands joined by one gateway station (n = 13) — and these constants pin
//! everything observable about it: the run summary, a sampled spread
//! trajectory, the per-domain report, the complete per-domain election
//! transcript, and the telemetry counters of the domain-election machinery.
//! `scripts/check.sh` re-runs the thread-determinism suite (which
//! fingerprints this same scenario) at RAYON_NUM_THREADS=1,2,8, so the pins
//! here are pool-size independent by construction.
//!
//! Regenerate after an intentional behavior change with:
//!
//! ```text
//! cargo test --release -p sstsp --test mesh_golden -- --ignored --nocapture
//! ```

use sstsp::scenario::TopologySpec;
use sstsp::{Network, ProtocolKind, ScenarioConfig, TraceRecorder};
use sstsp_telemetry::TraceEvent;

const DURATION_S: f64 = 12.0;
const SEED: u64 = 7;

/// Bridged mesh: 2 islands of 3×2 stations + 1 gateway = 13 stations.
/// Island 0 = ids 0..6, island 1 = ids 6..12, gateway = id 12.
fn mesh_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 13, DURATION_S, SEED);
    cfg.topology = Some(TopologySpec::Bridged {
        domains: 2,
        cols: 3,
        rows: 2,
    });
    cfg
}

/// Run summary pin: (peak_spread_us, sync_latency_s, steady_error_us,
/// tx_successes, tx_collisions, silent_windows, reference_changes,
/// retargets, final_reference).
#[allow(clippy::type_complexity)]
#[rustfmt::skip]
const GOLDEN_SUMMARY: (f64, Option<f64>, Option<f64>, u64, u64, u64, u64, u64, Option<u32>) =
    (312.53608422121033, Some(1.999999), Some(19.332709528971463), 329, 0, 10, 1, 1295, Some(0));

/// Spread trajectory pin: (BP-end sample index, spread µs) — early
/// acquisition, the mid-run regime, and the converged tail.
#[rustfmt::skip]
const GOLDEN_SPREAD_SAMPLES: [(usize, f64); 5] = [
    (9, 312.53608422121033),
    (29, 4.101147504989058),
    (59, 3.557647348381579),
    (89, 3.6308596190065145),
    (119, 2.4383700229227543),
];

/// Per-domain report pin: (domain, nodes, final_reference, end_spread_us).
#[rustfmt::skip]
const GOLDEN_DOMAINS: [(u32, u32, Option<u32>, Option<f64>); 2] = [
    (0, 7, Some(0), Some(1.8546539135277271)),
    (1, 6, Some(6), Some(0.7234471794217825)),
];

/// The complete per-domain election transcript: (bp, domain, from, to).
#[rustfmt::skip]
const GOLDEN_ELECTIONS: [(u64, u32, Option<u32>, Option<u32>); 2] = [
    (11, 0, None, Some(0)),
    (11, 1, None, Some(6)),
];

/// Telemetry pins for the domain-election machinery: (counter, total).
/// `engine.path.fast == 1` proves the bridged mesh rides the per-domain
/// fast path even with the (fast-path-safe) `TraceRecorder` attached.
#[rustfmt::skip]
const GOLDEN_COUNTERS: [(&str, u64); 4] = [
    ("engine.path.fast", 1),
    ("engine.path.slow", 0),
    ("sstsp.subordinate", 1),
    ("sstsp.sovereign_revert", 0),
];

#[test]
fn bridged_mesh_matches_recorded_goldens() {
    let cfg = mesh_cfg();
    let _rec = sstsp_telemetry::recording();
    let mut tracer = TraceRecorder::new();
    let r = Network::build(&cfg).run_with_hook(&mut tracer);
    let snap = sstsp_telemetry::snapshot();

    // --- Run summary ---------------------------------------------------
    let (peak, latency, steady, successes, collisions, silent, ref_changes, retargets, final_ref) =
        GOLDEN_SUMMARY;
    assert_eq!(r.peak_spread_us, peak, "peak_spread_us");
    assert_eq!(r.sync_latency_s, latency, "sync_latency_s");
    assert_eq!(r.steady_error_us, steady, "steady_error_us");
    assert_eq!(r.tx_successes, successes, "tx_successes");
    assert_eq!(r.tx_collisions, collisions, "tx_collisions");
    assert_eq!(r.silent_windows, silent, "silent_windows");
    assert_eq!(r.reference_changes, ref_changes, "reference_changes");
    assert_eq!(r.retargets, retargets, "retargets");
    assert_eq!(r.final_reference, final_ref, "final_reference");

    // --- Spread trajectory ---------------------------------------------
    let spread = r.spread.values();
    assert_eq!(spread.len(), cfg.total_bps() as usize, "spread series len");
    for &(i, v) in &GOLDEN_SPREAD_SAMPLES {
        assert_eq!(
            spread[i].to_bits(),
            v.to_bits(),
            "spread sample at index {i}"
        );
    }

    // --- Per-domain report ----------------------------------------------
    let report = r.domain_report.as_ref().expect("mesh run reports domains");
    assert_eq!(report.len(), GOLDEN_DOMAINS.len(), "domain count");
    for (d, &(domain, nodes, final_reference, end_spread_us)) in
        report.iter().zip(GOLDEN_DOMAINS.iter())
    {
        assert_eq!(d.domain, domain);
        assert_eq!(d.nodes, nodes, "domain {domain}: nodes");
        assert_eq!(
            d.final_reference, final_reference,
            "domain {domain}: final_reference"
        );
        assert_eq!(
            d.end_spread_us.map(f64::to_bits),
            end_spread_us.map(f64::to_bits),
            "domain {domain}: end_spread_us"
        );
    }
    // A *distinct* reference per domain, and both converged tight.
    let refs: Vec<_> = report.iter().filter_map(|d| d.final_reference).collect();
    assert_eq!(refs.len(), 2, "every domain holds a reference at run end");
    assert_ne!(refs[0], refs[1], "the domains elect distinct references");
    for d in report {
        assert!(
            d.end_spread_us.expect("domain converged") < 50.0,
            "domain {} spread under the coarse guard",
            d.domain
        );
    }

    // --- Election transcript --------------------------------------------
    let elections: Vec<_> = tracer
        .events()
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::DomainRefChange {
                bp,
                domain,
                from,
                to,
            } => Some((bp, domain, from, to)),
            _ => None,
        })
        .collect();
    assert_eq!(elections, GOLDEN_ELECTIONS, "domain election transcript");

    // --- Telemetry ------------------------------------------------------
    for &(key, total) in &GOLDEN_COUNTERS {
        assert_eq!(snap.counter(key), total, "counter {key}");
    }
}

/// Generator: prints current values in the constants' layout.
#[test]
#[ignore = "generator — run with --ignored --nocapture to refresh the pins"]
fn print_mesh_goldens() {
    let cfg = mesh_cfg();
    let _rec = sstsp_telemetry::recording();
    let mut tracer = TraceRecorder::new();
    let r = Network::build(&cfg).run_with_hook(&mut tracer);
    let snap = sstsp_telemetry::snapshot();
    println!(
        "GOLDEN_SUMMARY: ({:?}, {:?}, {:?}, {}, {}, {}, {}, {}, {:?})",
        r.peak_spread_us,
        r.sync_latency_s,
        r.steady_error_us,
        r.tx_successes,
        r.tx_collisions,
        r.silent_windows,
        r.reference_changes,
        r.retargets,
        r.final_reference,
    );
    println!("GOLDEN_SPREAD_SAMPLES:");
    for i in [9usize, 29, 59, 89, 119] {
        println!("    ({i}, {:?}),", r.spread.values()[i]);
    }
    println!("GOLDEN_DOMAINS:");
    for d in r.domain_report.as_deref().unwrap_or_default() {
        println!(
            "    ({}, {}, {:?}, {:?}),",
            d.domain, d.nodes, d.final_reference, d.end_spread_us
        );
    }
    println!("GOLDEN_ELECTIONS:");
    for ev in tracer.events() {
        if let TraceEvent::DomainRefChange {
            bp,
            domain,
            from,
            to,
        } = ev
        {
            println!("    ({bp}, {domain}, {from:?}, {to:?}),");
        }
    }
    println!("GOLDEN_COUNTERS:");
    for key in [
        "engine.path.fast",
        "engine.path.slow",
        "sstsp.subordinate",
        "sstsp.sovereign_revert",
    ] {
        println!("    ({key:?}, {}),", snap.counter(key));
    }
}
