//! Sweep results must not depend on the rayon pool size.
//!
//! `run_seeds` / `run_configs` parallelize over *runs*; each run is a pure
//! function of its config and seed, and results are collected in input
//! order. So the output must be bit-identical whether the pool has one
//! thread or many — and now that the vendored rayon actually steals work,
//! "many" means real concurrent interleavings, not a renamed loop.
//!
//! Two pins: an in-process one comparing scoped pools of 1, 2 and 8
//! threads (sweep fingerprints *and* merged telemetry snapshots), and a
//! child-process one exercising the `RAYON_NUM_THREADS` env path against
//! the default pool.

use rayon::ThreadPool;
use sstsp::sweep::{run_configs, run_seeds};
use sstsp::{ProtocolKind, ScenarioConfig};
use sstsp_telemetry as telemetry;

/// Env marker distinguishing the single-threaded child invocation.
const CHILD_VAR: &str = "SSTSP_THREAD_DETERMINISM_CHILD";
const FP_BEGIN: &str = "FP-BEGIN\n";
const FP_END: &str = "FP-END";

/// A bit-exact fingerprint (f64 bit patterns, not rounded prints) of a
/// seed sweep and a config sweep.
fn fingerprint() -> String {
    let base = ScenarioConfig::new(ProtocolKind::Sstsp, 6, 6.0, 0);
    let by_seed = run_seeds(&base, &[11, 12, 13, 14]);
    let configs: Vec<ScenarioConfig> = [ProtocolKind::Tsf, ProtocolKind::Sstsp, ProtocolKind::Asp]
        .iter()
        .map(|&k| ScenarioConfig::new(k, 5, 5.0, 3))
        .collect();
    let by_config = run_configs(&configs);
    // The mesh-golden scenario (2-domain bridged mesh, per-domain election):
    // its spread bytes *and* per-domain report must be pool-size
    // independent too.
    let mut mesh = ScenarioConfig::new(ProtocolKind::Sstsp, 13, 12.0, 7);
    mesh.topology = Some(sstsp::scenario::TopologySpec::Bridged {
        domains: 2,
        cols: 3,
        rows: 2,
    });
    let by_mesh = run_seeds(&mesh, &[7, 8]);
    // Hostile-environment scenarios: the differential security suite's
    // SSTSP-vs-TSF campaign runs must be pool-size independent too (a
    // coalition on the paper's single-hop IBSS, and a Sybil flood against
    // the bridged mesh's per-domain elections).
    let hostile: Vec<ScenarioConfig> = [ProtocolKind::Sstsp, ProtocolKind::Tsf]
        .iter()
        .flat_map(|&k| {
            let mut coalition = ScenarioConfig::new(k, 10, 8.0, 7);
            coalition.campaign = Some(sstsp::scenario::CampaignSpec {
                kind: sstsp::scenario::CampaignKind::Coalition {
                    error_us: 800.0,
                    delay_bps: 2,
                },
                attackers: 3,
                start_s: 4.0,
                end_s: 7.0,
            });
            let mut sybil = mesh.clone();
            sybil.protocol = k;
            sybil.duration_s = 8.0;
            // Window from t = 0 so the flood contests the initial
            // per-domain election and actually transmits.
            sybil.campaign = Some(sstsp::scenario::CampaignSpec {
                kind: sstsp::scenario::CampaignKind::SybilFlood { error_us: 1500.0 },
                attackers: 2,
                start_s: 0.0,
                end_s: 6.0,
            });
            [coalition, sybil]
        })
        .collect();
    let by_campaign = run_configs(&hostile);

    let mut s = String::new();
    for r in by_seed
        .iter()
        .chain(&by_config)
        .chain(&by_mesh)
        .chain(&by_campaign)
    {
        s.push_str(&format!(
            "{}/{}/{} peak={:016x} tx={} coll={} silent={} refchg={}\n",
            r.protocol,
            r.n_nodes,
            r.seed,
            r.peak_spread_us.to_bits(),
            r.tx_successes,
            r.tx_collisions,
            r.silent_windows,
            r.reference_changes,
        ));
        for v in r.spread.values() {
            s.push_str(&format!("{:016x},", v.to_bits()));
        }
        s.push('\n');
        for d in r.domain_report.as_deref().unwrap_or_default() {
            s.push_str(&format!(
                "dom {} n={} ref={:?} spread={:?}\n",
                d.domain,
                d.nodes,
                d.final_reference,
                d.end_spread_us.map(f64::to_bits),
            ));
        }
    }
    s
}

/// In-process pin: scoped pools of 1, 2 and 8 threads must produce the
/// same sweep bytes and — because shard merging is commutative — the same
/// merged telemetry snapshot, whatever the steal interleaving.
#[test]
fn sweeps_and_telemetry_identical_across_scoped_pools() {
    let run_at = |threads: usize| {
        ThreadPool::new(threads).install(|| {
            let _session = telemetry::recording();
            let fp = fingerprint();
            (fp, telemetry::snapshot().render_text())
        })
    };
    let (fp_seq, telem_seq) = run_at(1);
    assert!(!telem_seq.is_empty(), "telemetry recorded something");
    for threads in [2, 8] {
        let (fp, telem) = run_at(threads);
        assert_eq!(fp, fp_seq, "sweep bytes diverge at {threads} threads");
        assert_eq!(
            telem, telem_seq,
            "merged telemetry snapshot diverges at {threads} threads"
        );
    }
}

#[test]
fn sweeps_identical_across_rayon_pool_sizes() {
    if std::env::var_os(CHILD_VAR).is_some() {
        // Child mode (RAYON_NUM_THREADS=1): emit the fingerprint and stop.
        println!("{}{}{}", FP_BEGIN, fingerprint(), FP_END);
        return;
    }

    let parent = fingerprint(); // default pool

    let exe = std::env::current_exe().expect("test executable path");
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "sweeps_identical_across_rayon_pool_sizes",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(CHILD_VAR, "1")
        .env("RAYON_NUM_THREADS", "1")
        .output()
        .expect("spawn single-threaded child");
    assert!(
        out.status.success(),
        "child run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let begin = stdout.find(FP_BEGIN).expect("begin marker") + FP_BEGIN.len();
    let end = stdout.find(FP_END).expect("end marker");
    assert_eq!(
        &stdout[begin..end],
        parent,
        "sweep results diverge between RAYON_NUM_THREADS=1 and the default pool"
    );
}
