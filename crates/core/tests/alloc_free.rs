//! Steady-state allocation discipline for the engine hot loop, pinned by a
//! counting global allocator.
//!
//! The engine's per-BP work — intent scan, contention window, batched
//! receiver draws, protocol callbacks, SoA refresh, metrics — must not
//! touch the heap: every buffer it needs is either preallocated at build
//! time or lives in run-scoped scratch. The one sanctioned growth point is
//! the spread-series `Vec`, which doubles O(log BPs) times per run.
//!
//! The pin compares two runs of the same scenario that differ only in
//! duration: the allocation-count delta divided by the extra BPs bounds
//! the amortized per-BP allocation rate. A regression that puts even one
//! `Vec`/`Box`/`String` back on the per-BP path shows up as ~100 extra
//! counts and fails loudly.
//!
//! This file must stay a single-`#[test]` binary: the counter is global to
//! the process, so a concurrently running test would pollute the delta.

use sstsp::{Network, ProtocolKind, ScenarioConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// [`System`] with an allocation-event counter (dealloc is free: the pin
/// cares about allocation *pressure*, not leaks).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// Diagnostic arm switch: while set to 1, every allocation prints a
/// backtrace (self-disarming around the capture, which itself allocates).
/// Armed by running the test with `TRACE_ALLOCS=1` — the fastest way to
/// find whatever put the pin over budget.
static TRACE_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        if TRACE_ALLOCS.swap(0, Relaxed) == 1 {
            eprintln!(
                "alloc({} bytes):\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
            TRACE_ALLOCS.store(1, Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events during `Network::run` (build excluded) for an n-node
/// SSTSP scenario of `duration_s`.
fn run_allocs(n: u32, duration_s: f64) -> (u64, u64) {
    let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, n, duration_s, 2006);
    let bps = cfg.total_bps();
    let net = Network::build(&cfg);
    let before = ALLOC_CALLS.load(Relaxed);
    let r = std::hint::black_box(net.run());
    let during = ALLOC_CALLS.load(Relaxed) - before;
    // The result carries the spread series out; its allocations happened
    // inside the window and are the sanctioned O(log BPs) growth.
    drop(r);
    (during, bps)
}

#[test]
fn per_bp_heap_allocations_are_amortized_zero() {
    // Warm thread-local state (RNG stream tables, crypto memos) so the
    // measured runs see a steady process.
    run_allocs(100, 5.0);

    if std::env::var("TRACE_ALLOCS").is_ok() {
        let cfg = ScenarioConfig::new(ProtocolKind::Sstsp, 100, 10.0, 2006);
        let net = Network::build(&cfg);
        TRACE_ALLOCS.store(1, Relaxed);
        std::hint::black_box(net.run());
        TRACE_ALLOCS.store(0, Relaxed);
    }

    let (short_allocs, short_bps) = run_allocs(100, 10.0);
    let (long_allocs, long_bps) = run_allocs(100, 20.0);
    let extra_bps = long_bps - short_bps;
    assert!(
        extra_bps >= 100,
        "scenario shapes drifted: {extra_bps} extra BPs"
    );
    let delta = long_allocs.saturating_sub(short_allocs);

    // Doubling the BP count may only add the spread-series doublings
    // (plus the identical result-assembly tail, which cancels in the
    // delta). 16 events across 100 extra BPs = amortized 0.16 allocs/BP;
    // one real per-BP allocation would add >= 100.
    assert!(
        delta <= 16,
        "per-BP allocation regression: {extra_bps} extra BPs cost {delta} extra \
         allocation events ({short_allocs} at {short_bps} BPs -> {long_allocs} at {long_bps} BPs)"
    );
}
