//! # sstsp-telemetry — deterministic observability for the SSTSP stack
//!
//! Three facilities, all **zero-overhead when disabled** (a single relaxed
//! atomic load on every instrumented site) and **deterministic when
//! enabled** (no wall clocks, no RNG, order-independent aggregation):
//!
//! * [`registry`] — a static-key metrics registry (counters, gauges,
//!   [`simcore::Histogram`]-backed distributions) sharded per thread and
//!   merged deterministically: counters and histogram bins are summed,
//!   gauges merged by maximum, and the merged snapshot is keyed through
//!   `BTreeMap`s — the same totals fall out whatever the thread count or
//!   interleaving of a rayon sweep;
//! * [`log`] — structured library logging that is silent by default
//!   (`cargo test` output stays clean), writes to stderr when `SSTSP_LOG`
//!   selects a level, and can be captured programmatically for tests;
//! * [`trace`] — typed per-BP trace events (beacon tx/rx, µTESLA
//!   accept/reject, reference elections, invariant violations) with a
//!   hand-rolled JSONL encoding (the workspace has no serde_json).
//!
//! ## Determinism contract
//!
//! Telemetry never draws randomness, never reads wall-clock time, and
//! never feeds back into simulation state: a run executed with telemetry
//! enabled is bit-identical to the same run with telemetry disabled (the
//! `golden_determinism` suite pins this). Aggregation is commutative, so
//! snapshots are independent of thread scheduling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod log;
pub mod reader;
pub mod registry;
pub mod trace;

pub use reader::{parse_events, parse_trace, RecordedTrace, TraceReadError};
pub use registry::{
    counter_add, counter_add_many, dist_merge, dist_record, enabled, flush_local, gauge_max,
    recording, reset, set_enabled, snapshot, DistSpec, LocalCounter, RecordingGuard, Snapshot,
};
pub use trace::{RxOutcome, TraceEncodeError, TraceEvent, TRACE_SCHEMA};

/// Count one event at this site into a per-site [`LocalCounter`] static
/// (thread-batched; folded into the registry by [`flush_local`], which
/// [`snapshot`] and the engine's run epilogue call). Use for scattered,
/// data-dependent event sites; pass an explicit delta as the second
/// argument when counting more than one event.
#[macro_export]
macro_rules! count {
    ($key:literal) => {
        $crate::count!($key, 1)
    };
    ($key:literal, $delta:expr) => {{
        static SITE: $crate::LocalCounter = $crate::LocalCounter::new($key);
        SITE.add($delta);
    }};
}
