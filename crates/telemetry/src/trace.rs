//! Typed trace events and their JSONL encoding.
//!
//! A trace is an ordered sequence of [`TraceEvent`]s describing one run at
//! beacon-delivery granularity: what was transmitted, what each receiver
//! did with it (accepted, guard-rejected, µTESLA-rejected, ...), reference
//! elections, per-BP spread summaries, and invariant violations. The
//! engine-side recorder lives in the `sstsp` crate (it needs the
//! `EngineHook` seam); this module owns the event model and the encoding so
//! every consumer agrees on the schema.
//!
//! Encoding is one JSON object per line (JSONL), hand-rolled since the
//! workspace deliberately carries no serde_json. All numbers are plain
//! decimals; floats use Rust's shortest-round-trip `Display`, so a dumped
//! trace is itself deterministic. String fields are escaped to pure ASCII
//! (`\uXXXX` for controls and non-ASCII), and non-finite floats are an
//! encoding *error* rather than a silent `null` — a trace that parses is a
//! trace that round-trips. The inverse lives in [`crate::reader`].

use std::fmt::Write;

/// Version of the JSONL trace schema. Bumped whenever an event's encoding
/// changes shape; the reader refuses traces recorded under a different
/// version instead of misinterpreting them.
pub const TRACE_SCHEMA: u32 = 1;

/// What a receiver did with one delivered beacon, classified from the
/// receiver's diagnostic-counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Passed every check and was admitted; `retarget` marks whether it
    /// (re-)aimed the receiver's clock discipline.
    Accept {
        /// Whether the acceptance retargeted the receiver's clock.
        retarget: bool,
    },
    /// Rejected by the guard-time check.
    GuardReject,
    /// Rejected by µTESLA verification.
    MuteslaReject,
    /// Dropped: the sender's µTESLA anchor is unknown to the receiver.
    UnknownAnchor,
    /// Consumed for coarse synchronization only.
    CoarseSync,
    /// Processed without any counted state change (e.g. a plain beacon at
    /// an already-synchronized SSTSP station, or a non-SSTSP protocol).
    Ignored,
}

impl RxOutcome {
    /// Stable token used in the JSONL encoding.
    pub fn token(&self) -> &'static str {
        match self {
            RxOutcome::Accept { .. } => "accept",
            RxOutcome::GuardReject => "guard_reject",
            RxOutcome::MuteslaReject => "mutesla_reject",
            RxOutcome::UnknownAnchor => "unknown_anchor",
            RxOutcome::CoarseSync => "coarse_sync",
            RxOutcome::Ignored => "ignored",
        }
    }
}

/// One structured trace event. Node ids are station indices.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Trace-file header: the schema version the file was written under
    /// and the one-line case spec it was recorded from. Written as the
    /// first line by trace writers (not produced by engine hooks); replay
    /// needs it to rebuild the scenario the trace came from.
    Meta {
        /// Trace schema version (see [`TRACE_SCHEMA`]).
        schema: u32,
        /// One-line replayable case spec (`sstsp-faults` FuzzCase syntax).
        case: String,
    },
    /// Run header: scenario identity.
    RunStart {
        /// Protocol name.
        protocol: String,
        /// Station count.
        n_nodes: u32,
        /// Master seed.
        seed: u64,
    },
    /// A station transmitted a beacon this BP.
    BeaconTx {
        /// Beacon period index (1-based).
        bp: u64,
        /// Transmitting station.
        src: u32,
    },
    /// A beacon reached a receiver and was processed.
    BeaconRx {
        /// Beacon period index.
        bp: u64,
        /// Transmitting station.
        src: u32,
        /// Receiving station.
        dst: u32,
        /// Simulated reception instant, µs.
        t_rx_us: f64,
        /// Receiver's adjusted clock immediately before processing, µs.
        clock_before_us: f64,
        /// What the receiver did with it.
        outcome: RxOutcome,
    },
    /// A campaign member transmitted while its campaign was active.
    /// Emitted right after the member's [`TraceEvent::BeaconTx`], so
    /// replay divergence detection covers coordinated attacks: a replay
    /// whose adversary fires in a different BP or role diverges here.
    Campaign {
        /// Beacon period index.
        bp: u64,
        /// Transmitting compromised station.
        src: u32,
        /// Member index within the campaign (0-based).
        member: u32,
        /// Role token: `leader`, `amplifier`, `sybil` or `jammer`.
        role: String,
    },
    /// A hook (fault layer) dropped a beacon before the receiver saw it.
    HookDrop {
        /// Beacon period index.
        bp: u64,
        /// Transmitting station.
        src: u32,
        /// Receiver that never saw the beacon.
        dst: u32,
    },
    /// The station holding the reference role changed.
    RefChange {
        /// Beacon period index.
        bp: u64,
        /// Previous holder (`None` = role vacant).
        from: Option<u32>,
        /// New holder (`None` = role vacant).
        to: Option<u32>,
    },
    /// Mesh runs: the station holding one collision domain's reference
    /// role changed (the per-domain election transcript).
    DomainRefChange {
        /// Beacon period index.
        bp: u64,
        /// Collision-domain index.
        domain: u32,
        /// Previous holder (`None` = role vacant).
        from: Option<u32>,
        /// New holder (`None` = role vacant).
        to: Option<u32>,
    },
    /// Per-BP summary after metrics sampling.
    BpEnd {
        /// Beacon period index.
        bp: u64,
        /// Max pairwise spread of honest synchronized clocks, µs (`None`
        /// when fewer than two stations qualify — distinct from 0.0, which
        /// means perfect agreement).
        spread_us: Option<f64>,
        /// Reference holder at BP end.
        reference: Option<u32>,
        /// Whether the engine disturbed the network this BP.
        disturbed: bool,
    },
    /// An invariant violation detected this BP.
    Violation {
        /// Beacon period index.
        bp: u64,
        /// Invariant kind label.
        kind: String,
        /// Offending station, when attributable.
        node: Option<u32>,
        /// Human-readable detail.
        detail: String,
    },
    /// Run footer: aggregate counters for reconciliation.
    RunEnd {
        /// Successful beacon windows.
        tx_successes: u64,
        /// Collided beacon windows.
        tx_collisions: u64,
        /// Guard-time rejections (honest stations).
        guard_rejections: u64,
        /// µTESLA rejections (honest stations).
        mutesla_rejections: u64,
        /// Successful clock retargets.
        retargets: u64,
        /// Largest spread observed, µs.
        peak_spread_us: f64,
    },
}

/// Escape a string for inclusion in a JSON string literal. The output is
/// pure ASCII: quotes and backslashes get their two-character escapes,
/// control characters and everything outside `0x20..=0x7e` become `\uXXXX`
/// (UTF-16 units, so astral-plane characters encode as surrogate pairs).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut units = [0u16; 2];
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x20'..='\x7e' => out.push(c),
            c => {
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
        }
    }
    out
}

/// An event that cannot be encoded: JSON has no NaN or Infinity, and a
/// trace line that silently nulled a required float would not round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEncodeError {
    /// The field holding the non-finite value.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for TraceEncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot encode non-finite `{}` ({}) in a trace event",
            self.field, self.value
        )
    }
}

impl std::error::Error for TraceEncodeError {}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

/// Render a float as JSON via shortest-round-trip display; non-finite
/// values (JSON has no NaN/Inf) are an encoding error.
fn json_f64(field: &'static str, v: f64) -> Result<String, TraceEncodeError> {
    if v.is_finite() {
        Ok(format!("{v}"))
    } else {
        Err(TraceEncodeError { field, value: v })
    }
}

impl TraceEvent {
    /// Encode as one JSONL line (no trailing newline). Fails if the event
    /// carries a non-finite float (unrepresentable in JSON).
    pub fn to_jsonl(&self) -> Result<String, TraceEncodeError> {
        Ok(match self {
            TraceEvent::Meta { schema, case } => format!(
                "{{\"ev\":\"meta\",\"schema\":{schema},\"case\":\"{}\"}}",
                json_escape(case)
            ),
            TraceEvent::RunStart {
                protocol,
                n_nodes,
                seed,
            } => format!(
                "{{\"ev\":\"run_start\",\"protocol\":\"{}\",\"n_nodes\":{n_nodes},\"seed\":{seed}}}",
                json_escape(protocol)
            ),
            TraceEvent::BeaconTx { bp, src } => {
                format!("{{\"ev\":\"beacon_tx\",\"bp\":{bp},\"src\":{src}}}")
            }
            TraceEvent::BeaconRx {
                bp,
                src,
                dst,
                t_rx_us,
                clock_before_us,
                outcome,
            } => {
                let retarget = match outcome {
                    RxOutcome::Accept { retarget } => {
                        format!(",\"retarget\":{retarget}")
                    }
                    _ => String::new(),
                };
                format!(
                    "{{\"ev\":\"beacon_rx\",\"bp\":{bp},\"src\":{src},\"dst\":{dst},\"t_rx_us\":{},\"clock_before_us\":{},\"outcome\":\"{}\"{retarget}}}",
                    json_f64("t_rx_us", *t_rx_us)?,
                    json_f64("clock_before_us", *clock_before_us)?,
                    outcome.token()
                )
            }
            TraceEvent::Campaign {
                bp,
                src,
                member,
                role,
            } => format!(
                "{{\"ev\":\"campaign\",\"bp\":{bp},\"src\":{src},\"member\":{member},\"role\":\"{}\"}}",
                json_escape(role)
            ),
            TraceEvent::HookDrop { bp, src, dst } => {
                format!("{{\"ev\":\"hook_drop\",\"bp\":{bp},\"src\":{src},\"dst\":{dst}}}")
            }
            TraceEvent::RefChange { bp, from, to } => format!(
                "{{\"ev\":\"ref_change\",\"bp\":{bp},\"from\":{},\"to\":{}}}",
                opt_u32(*from),
                opt_u32(*to)
            ),
            TraceEvent::DomainRefChange {
                bp,
                domain,
                from,
                to,
            } => format!(
                "{{\"ev\":\"domain_ref_change\",\"bp\":{bp},\"domain\":{domain},\"from\":{},\"to\":{}}}",
                opt_u32(*from),
                opt_u32(*to)
            ),
            TraceEvent::BpEnd {
                bp,
                spread_us,
                reference,
                disturbed,
            } => format!(
                "{{\"ev\":\"bp_end\",\"bp\":{bp},\"spread_us\":{},\"reference\":{},\"disturbed\":{disturbed}}}",
                match spread_us {
                    Some(v) => json_f64("spread_us", *v)?,
                    None => "null".to_string(),
                },
                opt_u32(*reference)
            ),
            TraceEvent::Violation {
                bp,
                kind,
                node,
                detail,
            } => format!(
                "{{\"ev\":\"violation\",\"bp\":{bp},\"kind\":\"{}\",\"node\":{},\"detail\":\"{}\"}}",
                json_escape(kind),
                opt_u32(*node),
                json_escape(detail)
            ),
            TraceEvent::RunEnd {
                tx_successes,
                tx_collisions,
                guard_rejections,
                mutesla_rejections,
                retargets,
                peak_spread_us,
            } => format!(
                "{{\"ev\":\"run_end\",\"tx_successes\":{tx_successes},\"tx_collisions\":{tx_collisions},\"guard_rejections\":{guard_rejections},\"mutesla_rejections\":{mutesla_rejections},\"retargets\":{retargets},\"peak_spread_us\":{}}}",
                json_f64("peak_spread_us", *peak_spread_us)?
            ),
        })
    }

    /// Stable token naming the event kind (the JSONL `ev` field).
    pub fn kind_token(&self) -> &'static str {
        match self {
            TraceEvent::Meta { .. } => "meta",
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::BeaconTx { .. } => "beacon_tx",
            TraceEvent::BeaconRx { .. } => "beacon_rx",
            TraceEvent::Campaign { .. } => "campaign",
            TraceEvent::HookDrop { .. } => "hook_drop",
            TraceEvent::RefChange { .. } => "ref_change",
            TraceEvent::DomainRefChange { .. } => "domain_ref_change",
            TraceEvent::BpEnd { .. } => "bp_end",
            TraceEvent::Violation { .. } => "violation",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    /// The beacon period the event belongs to, when it carries one.
    pub fn bp(&self) -> Option<u64> {
        match self {
            TraceEvent::BeaconTx { bp, .. }
            | TraceEvent::BeaconRx { bp, .. }
            | TraceEvent::Campaign { bp, .. }
            | TraceEvent::HookDrop { bp, .. }
            | TraceEvent::RefChange { bp, .. }
            | TraceEvent::DomainRefChange { bp, .. }
            | TraceEvent::BpEnd { bp, .. }
            | TraceEvent::Violation { bp, .. } => Some(*bp),
            TraceEvent::Meta { .. } | TraceEvent::RunStart { .. } | TraceEvent::RunEnd { .. } => {
                None
            }
        }
    }
}

/// Encode a whole trace as JSONL (one event per line, trailing newline).
/// Fails on the first event carrying a non-finite float.
pub fn to_jsonl(events: &[TraceEvent]) -> Result<String, TraceEncodeError> {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_jsonl()?);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_controls_and_non_ascii() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // DEL and C1 controls, which the old writer passed through raw.
        assert_eq!(json_escape("\u{7f}\u{85}"), "\\u007f\\u0085");
        // Non-ASCII text (µ is ubiquitous in this repo's detail strings)
        // and an astral-plane char encode as \u escapes / surrogate pairs.
        assert_eq!(json_escape("µs"), "\\u00b5s");
        assert_eq!(json_escape("\u{1f310}"), "\\ud83c\\udf10");
        // The output is always pure ASCII.
        assert!(json_escape("snow\u{2028}man ☃").is_ascii());
    }

    #[test]
    fn events_encode_to_stable_jsonl() {
        let ev = TraceEvent::BeaconRx {
            bp: 3,
            src: 5,
            dst: 1,
            t_rx_us: 300128.5,
            clock_before_us: 300100.25,
            outcome: RxOutcome::Accept { retarget: true },
        };
        assert_eq!(
            ev.to_jsonl().unwrap(),
            "{\"ev\":\"beacon_rx\",\"bp\":3,\"src\":5,\"dst\":1,\"t_rx_us\":300128.5,\"clock_before_us\":300100.25,\"outcome\":\"accept\",\"retarget\":true}"
        );
        let ev = TraceEvent::RefChange {
            bp: 9,
            from: None,
            to: Some(4),
        };
        assert_eq!(
            ev.to_jsonl().unwrap(),
            "{\"ev\":\"ref_change\",\"bp\":9,\"from\":null,\"to\":4}"
        );
        let ev = TraceEvent::BpEnd {
            bp: 2,
            spread_us: None,
            reference: None,
            disturbed: false,
        };
        assert_eq!(
            ev.to_jsonl().unwrap(),
            "{\"ev\":\"bp_end\",\"bp\":2,\"spread_us\":null,\"reference\":null,\"disturbed\":false}"
        );
        let ev = TraceEvent::DomainRefChange {
            bp: 14,
            domain: 1,
            from: None,
            to: Some(8),
        };
        assert_eq!(
            ev.to_jsonl().unwrap(),
            "{\"ev\":\"domain_ref_change\",\"bp\":14,\"domain\":1,\"from\":null,\"to\":8}"
        );
        let ev = TraceEvent::Campaign {
            bp: 201,
            src: 11,
            member: 1,
            role: "amplifier".to_string(),
        };
        assert_eq!(
            ev.to_jsonl().unwrap(),
            "{\"ev\":\"campaign\",\"bp\":201,\"src\":11,\"member\":1,\"role\":\"amplifier\"}"
        );
        let ev = TraceEvent::Meta {
            schema: TRACE_SCHEMA,
            case: "n=6 dur=10 seed=11 m=4 delta=300 plan=5".to_string(),
        };
        assert_eq!(
            ev.to_jsonl().unwrap(),
            "{\"ev\":\"meta\",\"schema\":1,\"case\":\"n=6 dur=10 seed=11 m=4 delta=300 plan=5\"}"
        );
    }

    #[test]
    fn non_finite_floats_fail_to_encode() {
        let ev = TraceEvent::RunEnd {
            tx_successes: 1,
            tx_collisions: 0,
            guard_rejections: 0,
            mutesla_rejections: 0,
            retargets: 0,
            peak_spread_us: f64::NAN,
        };
        let err = ev.to_jsonl().unwrap_err();
        assert_eq!(err.field, "peak_spread_us");
        let ev = TraceEvent::BeaconRx {
            bp: 1,
            src: 0,
            dst: 1,
            t_rx_us: f64::INFINITY,
            clock_before_us: 0.0,
            outcome: RxOutcome::Ignored,
        };
        assert_eq!(ev.to_jsonl().unwrap_err().field, "t_rx_us");
        // An Option float is still encodable as null when absent, but a
        // present non-finite value fails like any other.
        let ev = TraceEvent::BpEnd {
            bp: 1,
            spread_us: Some(f64::NAN),
            reference: None,
            disturbed: false,
        };
        assert_eq!(ev.to_jsonl().unwrap_err().field, "spread_us");
    }
}
