//! Typed trace events and their JSONL encoding.
//!
//! A trace is an ordered sequence of [`TraceEvent`]s describing one run at
//! beacon-delivery granularity: what was transmitted, what each receiver
//! did with it (accepted, guard-rejected, µTESLA-rejected, ...), reference
//! elections, per-BP spread summaries, and invariant violations. The
//! engine-side recorder lives in the `sstsp` crate (it needs the
//! `EngineHook` seam); this module owns the event model and the encoding so
//! every consumer agrees on the schema.
//!
//! Encoding is one JSON object per line (JSONL), hand-rolled since the
//! workspace deliberately carries no serde_json. All numbers are plain
//! decimals; floats use Rust's shortest-round-trip `Display`, so a dumped
//! trace is itself deterministic.

use std::fmt::Write;

/// What a receiver did with one delivered beacon, classified from the
/// receiver's diagnostic-counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Passed every check and was admitted; `retarget` marks whether it
    /// (re-)aimed the receiver's clock discipline.
    Accept {
        /// Whether the acceptance retargeted the receiver's clock.
        retarget: bool,
    },
    /// Rejected by the guard-time check.
    GuardReject,
    /// Rejected by µTESLA verification.
    MuteslaReject,
    /// Dropped: the sender's µTESLA anchor is unknown to the receiver.
    UnknownAnchor,
    /// Consumed for coarse synchronization only.
    CoarseSync,
    /// Processed without any counted state change (e.g. a plain beacon at
    /// an already-synchronized SSTSP station, or a non-SSTSP protocol).
    Ignored,
}

impl RxOutcome {
    /// Stable token used in the JSONL encoding.
    pub fn token(&self) -> &'static str {
        match self {
            RxOutcome::Accept { .. } => "accept",
            RxOutcome::GuardReject => "guard_reject",
            RxOutcome::MuteslaReject => "mutesla_reject",
            RxOutcome::UnknownAnchor => "unknown_anchor",
            RxOutcome::CoarseSync => "coarse_sync",
            RxOutcome::Ignored => "ignored",
        }
    }
}

/// One structured trace event. Node ids are station indices.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run header: scenario identity.
    RunStart {
        /// Protocol name.
        protocol: String,
        /// Station count.
        n_nodes: u32,
        /// Master seed.
        seed: u64,
    },
    /// A station transmitted a beacon this BP.
    BeaconTx {
        /// Beacon period index (1-based).
        bp: u64,
        /// Transmitting station.
        src: u32,
    },
    /// A beacon reached a receiver and was processed.
    BeaconRx {
        /// Beacon period index.
        bp: u64,
        /// Transmitting station.
        src: u32,
        /// Receiving station.
        dst: u32,
        /// Simulated reception instant, µs.
        t_rx_us: f64,
        /// Receiver's adjusted clock immediately before processing, µs.
        clock_before_us: f64,
        /// What the receiver did with it.
        outcome: RxOutcome,
    },
    /// A hook (fault layer) dropped a beacon before the receiver saw it.
    HookDrop {
        /// Beacon period index.
        bp: u64,
        /// Transmitting station.
        src: u32,
        /// Receiver that never saw the beacon.
        dst: u32,
    },
    /// The station holding the reference role changed.
    RefChange {
        /// Beacon period index.
        bp: u64,
        /// Previous holder (`None` = role vacant).
        from: Option<u32>,
        /// New holder (`None` = role vacant).
        to: Option<u32>,
    },
    /// Mesh runs: the station holding one collision domain's reference
    /// role changed (the per-domain election transcript).
    DomainRefChange {
        /// Beacon period index.
        bp: u64,
        /// Collision-domain index.
        domain: u32,
        /// Previous holder (`None` = role vacant).
        from: Option<u32>,
        /// New holder (`None` = role vacant).
        to: Option<u32>,
    },
    /// Per-BP summary after metrics sampling.
    BpEnd {
        /// Beacon period index.
        bp: u64,
        /// Max pairwise spread of honest synchronized clocks, µs (`None`
        /// when fewer than two stations qualify — distinct from 0.0, which
        /// means perfect agreement).
        spread_us: Option<f64>,
        /// Reference holder at BP end.
        reference: Option<u32>,
        /// Whether the engine disturbed the network this BP.
        disturbed: bool,
    },
    /// An invariant violation detected this BP.
    Violation {
        /// Beacon period index.
        bp: u64,
        /// Invariant kind label.
        kind: String,
        /// Offending station, when attributable.
        node: Option<u32>,
        /// Human-readable detail.
        detail: String,
    },
    /// Run footer: aggregate counters for reconciliation.
    RunEnd {
        /// Successful beacon windows.
        tx_successes: u64,
        /// Collided beacon windows.
        tx_collisions: u64,
        /// Guard-time rejections (honest stations).
        guard_rejections: u64,
        /// µTESLA rejections (honest stations).
        mutesla_rejections: u64,
        /// Successful clock retargets.
        retargets: u64,
        /// Largest spread observed, µs.
        peak_spread_us: f64,
    },
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

/// Render a float as JSON: finite values via shortest-round-trip display,
/// non-finite ones (JSON has no NaN/Inf) as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl TraceEvent {
    /// Encode as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            TraceEvent::RunStart {
                protocol,
                n_nodes,
                seed,
            } => format!(
                "{{\"ev\":\"run_start\",\"protocol\":\"{}\",\"n_nodes\":{n_nodes},\"seed\":{seed}}}",
                json_escape(protocol)
            ),
            TraceEvent::BeaconTx { bp, src } => {
                format!("{{\"ev\":\"beacon_tx\",\"bp\":{bp},\"src\":{src}}}")
            }
            TraceEvent::BeaconRx {
                bp,
                src,
                dst,
                t_rx_us,
                clock_before_us,
                outcome,
            } => {
                let retarget = match outcome {
                    RxOutcome::Accept { retarget } => {
                        format!(",\"retarget\":{retarget}")
                    }
                    _ => String::new(),
                };
                format!(
                    "{{\"ev\":\"beacon_rx\",\"bp\":{bp},\"src\":{src},\"dst\":{dst},\"t_rx_us\":{},\"clock_before_us\":{},\"outcome\":\"{}\"{retarget}}}",
                    json_f64(*t_rx_us),
                    json_f64(*clock_before_us),
                    outcome.token()
                )
            }
            TraceEvent::HookDrop { bp, src, dst } => {
                format!("{{\"ev\":\"hook_drop\",\"bp\":{bp},\"src\":{src},\"dst\":{dst}}}")
            }
            TraceEvent::RefChange { bp, from, to } => format!(
                "{{\"ev\":\"ref_change\",\"bp\":{bp},\"from\":{},\"to\":{}}}",
                opt_u32(*from),
                opt_u32(*to)
            ),
            TraceEvent::DomainRefChange {
                bp,
                domain,
                from,
                to,
            } => format!(
                "{{\"ev\":\"domain_ref_change\",\"bp\":{bp},\"domain\":{domain},\"from\":{},\"to\":{}}}",
                opt_u32(*from),
                opt_u32(*to)
            ),
            TraceEvent::BpEnd {
                bp,
                spread_us,
                reference,
                disturbed,
            } => format!(
                "{{\"ev\":\"bp_end\",\"bp\":{bp},\"spread_us\":{},\"reference\":{},\"disturbed\":{disturbed}}}",
                spread_us.map_or("null".to_string(), json_f64),
                opt_u32(*reference)
            ),
            TraceEvent::Violation {
                bp,
                kind,
                node,
                detail,
            } => format!(
                "{{\"ev\":\"violation\",\"bp\":{bp},\"kind\":\"{}\",\"node\":{},\"detail\":\"{}\"}}",
                json_escape(kind),
                opt_u32(*node),
                json_escape(detail)
            ),
            TraceEvent::RunEnd {
                tx_successes,
                tx_collisions,
                guard_rejections,
                mutesla_rejections,
                retargets,
                peak_spread_us,
            } => format!(
                "{{\"ev\":\"run_end\",\"tx_successes\":{tx_successes},\"tx_collisions\":{tx_collisions},\"guard_rejections\":{guard_rejections},\"mutesla_rejections\":{mutesla_rejections},\"retargets\":{retargets},\"peak_spread_us\":{}}}",
                json_f64(*peak_spread_us)
            ),
        }
    }
}

/// Encode a whole trace as JSONL (one event per line, trailing newline).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn events_encode_to_stable_jsonl() {
        let ev = TraceEvent::BeaconRx {
            bp: 3,
            src: 5,
            dst: 1,
            t_rx_us: 300128.5,
            clock_before_us: 300100.25,
            outcome: RxOutcome::Accept { retarget: true },
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"ev\":\"beacon_rx\",\"bp\":3,\"src\":5,\"dst\":1,\"t_rx_us\":300128.5,\"clock_before_us\":300100.25,\"outcome\":\"accept\",\"retarget\":true}"
        );
        let ev = TraceEvent::RefChange {
            bp: 9,
            from: None,
            to: Some(4),
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"ev\":\"ref_change\",\"bp\":9,\"from\":null,\"to\":4}"
        );
        let ev = TraceEvent::BpEnd {
            bp: 2,
            spread_us: None,
            reference: None,
            disturbed: false,
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"ev\":\"bp_end\",\"bp\":2,\"spread_us\":null,\"reference\":null,\"disturbed\":false}"
        );
        let ev = TraceEvent::DomainRefChange {
            bp: 14,
            domain: 1,
            from: None,
            to: Some(8),
        };
        assert_eq!(
            ev.to_jsonl(),
            "{\"ev\":\"domain_ref_change\",\"bp\":14,\"domain\":1,\"from\":null,\"to\":8}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = TraceEvent::RunEnd {
            tx_successes: 1,
            tx_collisions: 0,
            guard_rejections: 0,
            mutesla_rejections: 0,
            retargets: 0,
            peak_spread_us: f64::NAN,
        };
        assert!(ev.to_jsonl().ends_with("\"peak_spread_us\":null}"));
    }
}
