//! Structured library logging: silent by default, env-selected stderr
//! output, and a programmatic capture sink for tests.
//!
//! Library crates must never print directly (scripts/check.sh enforces a
//! no-`println!`/`eprintln!` gate on library sources); they emit events
//! here instead. An event costs one relaxed atomic load when nothing is
//! listening — the message closure is only invoked for a live sink.
//!
//! * `SSTSP_LOG=debug|info|warn` routes events at or above that level to
//!   stderr (read once per process);
//! * [`capture_start`] / [`capture_take`] buffer events in memory so tests
//!   can assert on them without touching any stream.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics (per-node dumps, hot-path detail).
    Debug = 1,
    /// Notable but expected events.
    Info = 2,
    /// Unexpected-but-handled conditions.
    Warn = 3,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
        }
    }
}

/// Stderr threshold from `SSTSP_LOG`; `u8::MAX` = silent (the default).
fn stderr_threshold() -> u8 {
    static T: OnceLock<u8> = OnceLock::new();
    *T.get_or_init(
        || match std::env::var("SSTSP_LOG").as_deref().map(str::trim) {
            Ok("debug") => Level::Debug as u8,
            Ok("info") => Level::Info as u8,
            Ok("warn") => Level::Warn as u8,
            _ => u8::MAX,
        },
    )
}

/// A captured event: `(level, target, message)`.
pub type CapturedEvent = (Level, &'static str, String);

static CAPTURING: AtomicBool = AtomicBool::new(false);
static CAPTURED: Mutex<Vec<CapturedEvent>> = Mutex::new(Vec::new());

/// Start buffering events in memory (all levels), clearing any previous
/// buffer. Tests use this to assert library crates log instead of printing.
pub fn capture_start() {
    let mut buf = CAPTURED.lock().unwrap_or_else(|e| e.into_inner());
    buf.clear();
    CAPTURING.store(true, Ordering::SeqCst);
}

/// Stop capturing and return the buffered events.
pub fn capture_take() -> Vec<CapturedEvent> {
    CAPTURING.store(false, Ordering::SeqCst);
    let mut buf = CAPTURED.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *buf)
}

/// Emit an event. `message` is lazy: it only runs when a sink is live.
#[inline]
pub fn event(level: Level, target: &'static str, message: impl FnOnce() -> String) {
    let capturing = CAPTURING.load(Ordering::Relaxed);
    let to_stderr = (level as u8) >= stderr_threshold();
    if !capturing && !to_stderr {
        return;
    }
    let msg = message();
    if to_stderr {
        // The one sanctioned stderr write in the library stack.
        let _ = writeln!(std::io::stderr(), "[{} {}] {}", level.name(), target, msg);
    }
    if capturing {
        CAPTURED
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((level, target, msg));
    }
}

/// [`event`] at [`Level::Debug`].
#[inline]
pub fn debug(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Debug, target, message);
}

/// [`event`] at [`Level::Info`].
#[inline]
pub fn info(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Info, target, message);
}

/// [`event`] at [`Level::Warn`].
#[inline]
pub fn warn(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Warn, target, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test function: the capture sink is process-global, so the two
    // phases must not run on parallel test threads.
    #[test]
    fn silent_by_default_then_capture_buffers_in_order() {
        // No capture, no SSTSP_LOG in the test env: the closure must not run.
        let mut ran = false;
        event(Level::Warn, "test", || {
            ran = true;
            String::new()
        });
        assert!(!ran, "message closure ran with no live sink");

        capture_start();
        debug("test.cap", || "first".to_string());
        warn("test.cap", || "second".to_string());
        let events = capture_take();
        assert_eq!(
            events,
            vec![
                (Level::Debug, "test.cap", "first".to_string()),
                (Level::Warn, "test.cap", "second".to_string()),
            ]
        );
        // Capture is off again; nothing accumulates.
        info("test.cap", || "third".to_string());
        capture_start();
        assert!(capture_take().is_empty());
    }
}
