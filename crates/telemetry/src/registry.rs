//! The static-key metrics registry.
//!
//! Writers record into a per-thread shard (one uncontended mutex lock per
//! record); [`snapshot`] merges every shard that ever existed into
//! `BTreeMap`s. Merging is commutative — counters and histogram bins sum,
//! gauges take the maximum — so the merged totals are independent of thread
//! count and scheduling, which is what makes sweep-level metrics
//! reproducible. Shards of finished threads stay registered (the global
//! list holds an `Arc` clone), so nothing recorded is ever lost to thread
//! teardown.
//!
//! Keys are `&'static str` by design: the set of metrics is part of the
//! program, not of the data, and static keys keep the disabled path free of
//! any formatting or allocation.

use simcore::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the registry is currently recording. Instrumented sites check
/// this first; when `false` they cost one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Prefer [`recording`] (RAII + reset +
/// exclusivity) unless managing the flag manually.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Binning of a distribution metric: `bins` equal-width bins over
/// `[lo, hi)` plus under/overflow buckets. Every record site for a given
/// key must pass the same spec (the merge asserts identical binning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSpec {
    /// Inclusive lower bound of the binned range.
    pub lo: f64,
    /// Exclusive upper bound of the binned range.
    pub hi: f64,
    /// Number of equal-width bins.
    pub bins: usize,
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    dists: BTreeMap<&'static str, Histogram>,
}

/// Every shard ever created, including those of finished threads.
static SHARDS: Mutex<Vec<Arc<Mutex<Shard>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shards_lock().push(Arc::clone(&shard));
        shard
    };
}

/// Lock a registry mutex, surviving poisoning: a panicking test thread must
/// not wedge every later telemetry user in the process.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn shards_lock() -> MutexGuard<'static, Vec<Arc<Mutex<Shard>>>> {
    lock_or_recover(&SHARDS)
}

/// Add `delta` to the counter `key` (no-op when disabled).
#[inline]
pub fn counter_add(key: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| *lock_or_recover(s).counters.entry(key).or_insert(0) += delta);
}

/// Add a whole batch of counter deltas with a single shard access (one
/// thread-local lookup, one uncontended lock) instead of one per entry.
/// Zero-delta entries are skipped, so hot loops can accumulate into a
/// fixed, unconditionally-incremented scratch block and flush it wholesale
/// — the engine does this once per beacon period for its own per-window
/// counters. Sites whose key set is not known at the call site (the
/// protocol- and crypto-layer event counters) use [`LocalCounter`]
/// instead, which batches per thread rather than per call.
#[inline]
pub fn counter_add_many(entries: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| {
        let mut shard = lock_or_recover(s);
        for &(key, delta) in entries {
            if delta != 0 {
                *shard.counters.entry(key).or_insert(0) += delta;
            }
        }
    });
}

/// Names of every [`LocalCounter`] that has been assigned a pending slot,
/// indexed by slot. Slots are process-global and monotonic; the pending
/// vectors below are indexed by the same slots.
static LOCAL_KEYS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread pending deltas for [`LocalCounter`]s, indexed by slot.
    /// Moved into the thread's shard by [`flush_local`].
    static PENDING: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A statically-declared counter that accumulates into a plain per-thread
/// vector slot (no lock, no map lookup) and is folded into the registry by
/// [`flush_local`]. This is the per-event-site complement of
/// [`counter_add_many`]: `counter_add_many` batches a *fixed block* of keys
/// once per loop iteration, while `LocalCounter` batches *scattered* event
/// sites (µTESLA verdicts, SSTSP accept/reject classification) whose
/// firing pattern is data-dependent. An [`add`](LocalCounter::add) costs a
/// relaxed load plus a thread-local vector index — cheap enough that
/// telemetry-enabled runs stay within a few percent of disabled ones.
///
/// Deltas become visible to [`snapshot`] only after a flush. The registry
/// flushes the calling thread automatically in [`snapshot`] and when a
/// [`RecordingGuard`] drops; long-lived worker threads (e.g. a rayon
/// sweep) must call [`flush_local`] before their results are merged — the
/// engine does so at the end of every run.
pub struct LocalCounter {
    name: &'static str,
    /// `0` = unassigned; otherwise `slot + 1`.
    slot: AtomicUsize,
}

impl LocalCounter {
    /// Declare a counter with the given static key. Intended for
    /// `static C: LocalCounter = LocalCounter::new("...")` at the site.
    pub const fn new(name: &'static str) -> Self {
        LocalCounter {
            name,
            slot: AtomicUsize::new(0),
        }
    }

    /// Add `delta` to this counter's per-thread pending slot (no-op when
    /// disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if !enabled() {
            return;
        }
        self.record(delta);
    }

    #[inline]
    fn record(&self, delta: u64) {
        let slot = match self.slot.load(Ordering::Acquire) {
            0 => self.assign_slot(),
            s => s - 1,
        };
        PENDING.with(|p| {
            let mut pending = p.borrow_mut();
            if pending.len() <= slot {
                pending.resize(slot + 1, 0);
            }
            pending[slot] += delta;
        });
    }

    #[cold]
    fn assign_slot(&self) -> usize {
        let mut keys = lock_or_recover(&LOCAL_KEYS);
        // Double-check under the lock: another thread may have raced us to
        // the assignment.
        let cur = self.slot.load(Ordering::Acquire);
        if cur != 0 {
            return cur - 1;
        }
        keys.push(self.name);
        let slot = keys.len() - 1;
        self.slot.store(slot + 1, Ordering::Release);
        slot
    }
}

/// Fold the calling thread's pending [`LocalCounter`] deltas into its
/// registry shard (one key-table lock + one shard lock for the whole
/// batch; free when nothing is pending). Called automatically by
/// [`snapshot`] and on [`RecordingGuard`] drop for the dropping thread.
pub fn flush_local() {
    PENDING.with(|p| {
        let mut pending = p.borrow_mut();
        if pending.iter().all(|&v| v == 0) {
            return;
        }
        let keys = lock_or_recover(&LOCAL_KEYS);
        LOCAL.with(|s| {
            let mut shard = lock_or_recover(s);
            for (slot, v) in pending.iter_mut().enumerate() {
                if *v != 0 {
                    *shard.counters.entry(keys[slot]).or_insert(0) += *v;
                    *v = 0;
                }
            }
        });
    });
}

/// Raise the gauge `key` to at least `value` (no-op when disabled). Gauges
/// merge by maximum — the only order-independent choice for a
/// "high-water mark" observable like peak queue depth.
#[inline]
pub fn gauge_max(key: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| {
        let mut shard = lock_or_recover(s);
        let g = shard.gauges.entry(key).or_insert(0);
        *g = (*g).max(value);
    });
}

/// Record `value` into the distribution `key` binned by `spec` (no-op when
/// disabled).
#[inline]
pub fn dist_record(key: &'static str, spec: DistSpec, value: f64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| {
        lock_or_recover(s)
            .dists
            .entry(key)
            .or_insert_with(|| Histogram::new(spec.lo, spec.hi, spec.bins))
            .record(value);
    });
}

/// Merge a locally-accumulated histogram into the distribution `key` with
/// a single shard access (no-op when disabled or when `hist` is empty).
/// The batch-sink complement of [`dist_record`]: a hot loop that records
/// one sample per iteration (the engine records the clock spread once per
/// beacon period) accumulates into its own [`Histogram`] and folds it in
/// wholesale at the end of the run — one lock per run instead of one lock
/// plus one key lookup per sample. The merged totals are identical to
/// per-sample [`dist_record`] calls because bin merge is commutative; the
/// binning must match any samples already recorded under `key` (asserted
/// by [`Histogram::merge`]).
pub fn dist_merge(key: &'static str, hist: &Histogram) {
    if !enabled() || hist.count() == 0 {
        return;
    }
    LOCAL.with(|s| {
        let mut shard = lock_or_recover(s);
        match shard.dists.get_mut(key) {
            Some(acc) => acc.merge(hist),
            None => {
                shard.dists.insert(key, hist.clone());
            }
        }
    });
}

/// A deterministic merged view of every shard.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals (summed across shards), sorted by key.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge high-water marks (max across shards), sorted by key.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Merged distributions, sorted by key.
    pub dists: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// Counter total for `key` (0 when never recorded).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value for `key` (`None` when never recorded).
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// Plain-text rendering, one metric per line, keys sorted. Distribution
    /// lines report count, p50/p99 (flagging out-of-range tail estimates
    /// rather than clamping them — see `Histogram::quantile`), and
    /// under/overflow counts.
    pub fn render_text(&self) -> String {
        use simcore::stats::QuantileEstimate;
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge   {k} = {v}\n"));
        }
        let render_q = |q: Option<QuantileEstimate>| match q {
            Some(QuantileEstimate::Value(v)) => format!("{v:.3}"),
            Some(QuantileEstimate::BelowRange) => "<lo".to_string(),
            Some(QuantileEstimate::AboveRange) => ">=hi".to_string(),
            None => "-".to_string(),
        };
        for (k, h) in &self.dists {
            out.push_str(&format!(
                "dist    {k}: n={} p50={} p99={} underflow={} overflow={}\n",
                h.count(),
                render_q(h.quantile(0.5)),
                render_q(h.quantile(0.99)),
                h.underflow(),
                h.overflow(),
            ));
        }
        out
    }
}

/// Merge every shard into a [`Snapshot`]. Deterministic: commutative
/// per-key merges plus sorted maps make the result independent of shard
/// order and thread interleaving.
pub fn snapshot() -> Snapshot {
    flush_local();
    let shards = shards_lock();
    let mut snap = Snapshot::default();
    for shard in shards.iter() {
        let shard = lock_or_recover(shard);
        for (&k, &v) in &shard.counters {
            *snap.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &shard.gauges {
            let g = snap.gauges.entry(k).or_insert(0);
            *g = (*g).max(v);
        }
        for (&k, h) in &shard.dists {
            match snap.dists.get_mut(k) {
                Some(acc) => acc.merge(h),
                None => {
                    snap.dists.insert(k, h.clone());
                }
            }
        }
    }
    snap
}

/// Clear every shard's data (registrations survive; threads keep writing
/// into their existing shards).
pub fn reset() {
    let shards = shards_lock();
    for shard in shards.iter() {
        let mut shard = lock_or_recover(shard);
        shard.counters.clear();
        shard.gauges.clear();
        shard.dists.clear();
    }
    drop(shards);
    // Discard the calling thread's pending local-counter deltas too — a
    // fresh session must not inherit them.
    PENDING.with(|p| p.borrow_mut().fill(0));
}

/// Serializes recording sessions: one consumer (a CLI invocation, a test)
/// owns the registry at a time. Threads *within* a session record freely.
static SESSION: Mutex<()> = Mutex::new(());

/// RAII handle for an exclusive recording session (see [`recording`]).
pub struct RecordingGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for RecordingGuard {
    fn drop(&mut self) {
        // Fold any still-pending local-counter deltas into the shard before
        // recording stops, so a snapshot taken after the session still sees
        // everything the session recorded on this thread.
        flush_local();
        set_enabled(false);
    }
}

/// Start an exclusive recording session: takes the session lock (blocking
/// out concurrent sessions, e.g. parallel tests in one binary), resets the
/// registry, and enables recording until the guard drops.
pub fn recording() -> RecordingGuard {
    let lock = lock_or_recover(&SESSION);
    reset();
    set_enabled(true);
    RecordingGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = recording();
        set_enabled(false);
        counter_add("test.nothing", 5);
        gauge_max("test.nothing.g", 5);
        dist_record(
            "test.nothing.d",
            DistSpec {
                lo: 0.0,
                hi: 1.0,
                bins: 4,
            },
            0.5,
        );
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("test.nothing"), 0);
        assert_eq!(snap.gauge("test.nothing.g"), None);
        assert!(!snap.dists.contains_key("test.nothing.d"));
    }

    #[test]
    fn counter_add_many_matches_individual_adds() {
        let _g = recording();
        counter_add("test.batch.a", 1);
        counter_add("test.batch.b", 2);
        let individual = (
            snapshot().counter("test.batch.a"),
            snapshot().counter("test.batch.b"),
        );
        reset();
        counter_add_many(&[
            ("test.batch.a", 1),
            ("test.batch.b", 2),
            ("test.batch.c", 0),
        ]);
        let snap = snapshot();
        assert_eq!(
            (snap.counter("test.batch.a"), snap.counter("test.batch.b")),
            individual
        );
        // Zero deltas never materialize a key.
        assert!(!snap.counters.contains_key("test.batch.c"));
        // Batches accumulate like individual adds.
        counter_add_many(&[("test.batch.a", 4)]);
        assert_eq!(snapshot().counter("test.batch.a"), 5);
    }

    #[test]
    fn counter_add_many_disabled_records_nothing() {
        let _g = recording();
        set_enabled(false);
        counter_add_many(&[("test.batch.off", 9)]);
        set_enabled(true);
        assert_eq!(snapshot().counter("test.batch.off"), 0);
    }

    #[test]
    fn counters_gauges_dists_round_trip() {
        let _g = recording();
        counter_add("test.rt.c", 2);
        counter_add("test.rt.c", 3);
        gauge_max("test.rt.g", 7);
        gauge_max("test.rt.g", 4);
        let spec = DistSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 10,
        };
        for x in [1.0, 2.0, 3.0, 42.0] {
            dist_record("test.rt.d", spec, x);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.rt.c"), 5);
        assert_eq!(snap.gauge("test.rt.g"), Some(7));
        let d = &snap.dists["test.rt.d"];
        assert_eq!(d.count(), 4);
        assert_eq!(d.overflow(), 1);
        let text = snap.render_text();
        assert!(text.contains("counter test.rt.c = 5"));
        assert!(text.contains("gauge   test.rt.g = 7"));
        assert!(text.contains("dist    test.rt.d: n=4"));
    }

    #[test]
    fn dist_merge_matches_per_sample_records() {
        let _g = recording();
        let spec = DistSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 5,
        };
        let samples = [0.5, 3.2, 3.9, -1.0, 42.0];
        for x in samples {
            dist_record("test.dm.individual", spec, x);
        }
        let mut local = Histogram::new(spec.lo, spec.hi, spec.bins);
        for x in samples {
            local.record(x);
        }
        dist_merge("test.dm.batched", &local);
        // A second merge accumulates, like further record calls would.
        dist_merge("test.dm.batched", &local);
        for x in samples {
            dist_record("test.dm.individual", spec, x);
        }
        let snap = snapshot();
        let (a, b) = (
            &snap.dists["test.dm.individual"],
            &snap.dists["test.dm.batched"],
        );
        assert_eq!(a.bins(), b.bins());
        assert_eq!(a.count(), b.count());
        assert_eq!(a.underflow(), b.underflow());
        assert_eq!(a.overflow(), b.overflow());
        // An empty histogram merge must not materialize the key.
        dist_merge("test.dm.empty", &Histogram::new(0.0, 1.0, 2));
        assert!(!snapshot().dists.contains_key("test.dm.empty"));
    }

    #[test]
    fn shards_from_many_threads_merge_to_the_same_totals() {
        let _g = recording();
        let spec = DistSpec {
            lo: 0.0,
            hi: 100.0,
            bins: 20,
        };
        // The same 120 operations, partitioned over 1, 3 and 8 threads,
        // must merge to identical snapshots.
        let run_partitioned = |threads: usize| {
            reset();
            let chunk = 120 / threads;
            std::thread::scope(|s| {
                for t in 0..threads {
                    s.spawn(move || {
                        for i in (t * chunk)..((t + 1) * chunk) {
                            counter_add("test.merge.c", (i % 7) as u64);
                            gauge_max("test.merge.g", i as u64);
                            dist_record("test.merge.d", spec, i as f64);
                        }
                    });
                }
            });
            let snap = snapshot();
            (
                snap.counter("test.merge.c"),
                snap.gauge("test.merge.g"),
                snap.dists["test.merge.d"].bins().to_vec(),
                snap.dists["test.merge.d"].count(),
            )
        };
        let single = run_partitioned(1);
        for threads in [3, 8] {
            assert_eq!(run_partitioned(threads), single, "threads={threads}");
        }
    }

    #[test]
    fn reset_clears_all_shards() {
        let _g = recording();
        counter_add("test.reset.c", 9);
        reset();
        assert_eq!(snapshot().counter("test.reset.c"), 0);
    }

    #[test]
    fn local_counter_matches_counter_add() {
        static A: LocalCounter = LocalCounter::new("test.local.a");
        static B: LocalCounter = LocalCounter::new("test.local.b");
        let _g = recording();
        counter_add("test.local.a", 3);
        counter_add("test.local.b", 1);
        let direct = (
            snapshot().counter("test.local.a"),
            snapshot().counter("test.local.b"),
        );
        reset();
        A.add(1);
        A.add(2);
        B.add(1);
        // snapshot() flushes the calling thread's pending deltas itself.
        let snap = snapshot();
        assert_eq!(
            (snap.counter("test.local.a"), snap.counter("test.local.b")),
            direct
        );
        // Flushing again without new adds changes nothing.
        flush_local();
        assert_eq!(snapshot().counter("test.local.a"), direct.0);
    }

    #[test]
    fn local_counter_disabled_records_nothing() {
        static C: LocalCounter = LocalCounter::new("test.local.off");
        let _g = recording();
        set_enabled(false);
        C.add(7);
        set_enabled(true);
        assert_eq!(snapshot().counter("test.local.off"), 0);
    }

    #[test]
    fn local_counter_pending_does_not_survive_reset() {
        static D: LocalCounter = LocalCounter::new("test.local.reset");
        let _g = recording();
        D.add(5);
        // The delta is still pending, not yet in any shard; reset discards
        // it along with the shards.
        reset();
        assert_eq!(snapshot().counter("test.local.reset"), 0);
    }

    #[test]
    fn local_counters_from_worker_threads_merge_after_flush() {
        static E: LocalCounter = LocalCounter::new("test.local.workers");
        let _g = recording();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for _ in 0..=t {
                        E.add(1);
                    }
                    flush_local();
                });
            }
        });
        // 1 + 2 + 3 + 4 adds across the workers.
        assert_eq!(snapshot().counter("test.local.workers"), 10);
    }
}
