//! The static-key metrics registry.
//!
//! Writers record into a per-thread shard (one uncontended mutex lock per
//! record); [`snapshot`] merges every shard that ever existed into
//! `BTreeMap`s. Merging is commutative — counters and histogram bins sum,
//! gauges take the maximum — so the merged totals are independent of thread
//! count and scheduling, which is what makes sweep-level metrics
//! reproducible. Shards of finished threads stay registered (the global
//! list holds an `Arc` clone), so nothing recorded is ever lost to thread
//! teardown.
//!
//! Keys are `&'static str` by design: the set of metrics is part of the
//! program, not of the data, and static keys keep the disabled path free of
//! any formatting or allocation.

use simcore::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the registry is currently recording. Instrumented sites check
/// this first; when `false` they cost one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Prefer [`recording`] (RAII + reset +
/// exclusivity) unless managing the flag manually.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Binning of a distribution metric: `bins` equal-width bins over
/// `[lo, hi)` plus under/overflow buckets. Every record site for a given
/// key must pass the same spec (the merge asserts identical binning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSpec {
    /// Inclusive lower bound of the binned range.
    pub lo: f64,
    /// Exclusive upper bound of the binned range.
    pub hi: f64,
    /// Number of equal-width bins.
    pub bins: usize,
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    dists: BTreeMap<&'static str, Histogram>,
}

/// Every shard ever created, including those of finished threads.
static SHARDS: Mutex<Vec<Arc<Mutex<Shard>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shards_lock().push(Arc::clone(&shard));
        shard
    };
}

/// Lock a registry mutex, surviving poisoning: a panicking test thread must
/// not wedge every later telemetry user in the process.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn shards_lock() -> MutexGuard<'static, Vec<Arc<Mutex<Shard>>>> {
    lock_or_recover(&SHARDS)
}

/// Add `delta` to the counter `key` (no-op when disabled).
#[inline]
pub fn counter_add(key: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| *lock_or_recover(s).counters.entry(key).or_insert(0) += delta);
}

/// Add a whole batch of counter deltas with a single shard access (one
/// thread-local lookup, one uncontended lock) instead of one per entry.
/// Zero-delta entries are skipped, so hot loops can accumulate into a
/// fixed, unconditionally-incremented scratch block and flush it wholesale
/// — the engine does this once per beacon period, which is what took the
/// telemetry-enabled engine path from ~19 % overhead to under the 8 %
/// budget (see `BENCH_engine.json`'s `telemetry` block).
#[inline]
pub fn counter_add_many(entries: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| {
        let mut shard = lock_or_recover(s);
        for &(key, delta) in entries {
            if delta != 0 {
                *shard.counters.entry(key).or_insert(0) += delta;
            }
        }
    });
}

/// Raise the gauge `key` to at least `value` (no-op when disabled). Gauges
/// merge by maximum — the only order-independent choice for a
/// "high-water mark" observable like peak queue depth.
#[inline]
pub fn gauge_max(key: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| {
        let mut shard = lock_or_recover(s);
        let g = shard.gauges.entry(key).or_insert(0);
        *g = (*g).max(value);
    });
}

/// Record `value` into the distribution `key` binned by `spec` (no-op when
/// disabled).
#[inline]
pub fn dist_record(key: &'static str, spec: DistSpec, value: f64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|s| {
        lock_or_recover(s)
            .dists
            .entry(key)
            .or_insert_with(|| Histogram::new(spec.lo, spec.hi, spec.bins))
            .record(value);
    });
}

/// A deterministic merged view of every shard.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals (summed across shards), sorted by key.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge high-water marks (max across shards), sorted by key.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Merged distributions, sorted by key.
    pub dists: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// Counter total for `key` (0 when never recorded).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value for `key` (`None` when never recorded).
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// Plain-text rendering, one metric per line, keys sorted. Distribution
    /// lines report count, p50/p99 (flagging out-of-range tail estimates
    /// rather than clamping them — see `Histogram::quantile`), and
    /// under/overflow counts.
    pub fn render_text(&self) -> String {
        use simcore::stats::QuantileEstimate;
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge   {k} = {v}\n"));
        }
        let render_q = |q: Option<QuantileEstimate>| match q {
            Some(QuantileEstimate::Value(v)) => format!("{v:.3}"),
            Some(QuantileEstimate::BelowRange) => "<lo".to_string(),
            Some(QuantileEstimate::AboveRange) => ">=hi".to_string(),
            None => "-".to_string(),
        };
        for (k, h) in &self.dists {
            out.push_str(&format!(
                "dist    {k}: n={} p50={} p99={} underflow={} overflow={}\n",
                h.count(),
                render_q(h.quantile(0.5)),
                render_q(h.quantile(0.99)),
                h.underflow(),
                h.overflow(),
            ));
        }
        out
    }
}

/// Merge every shard into a [`Snapshot`]. Deterministic: commutative
/// per-key merges plus sorted maps make the result independent of shard
/// order and thread interleaving.
pub fn snapshot() -> Snapshot {
    let shards = shards_lock();
    let mut snap = Snapshot::default();
    for shard in shards.iter() {
        let shard = lock_or_recover(shard);
        for (&k, &v) in &shard.counters {
            *snap.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &shard.gauges {
            let g = snap.gauges.entry(k).or_insert(0);
            *g = (*g).max(v);
        }
        for (&k, h) in &shard.dists {
            match snap.dists.get_mut(k) {
                Some(acc) => acc.merge(h),
                None => {
                    snap.dists.insert(k, h.clone());
                }
            }
        }
    }
    snap
}

/// Clear every shard's data (registrations survive; threads keep writing
/// into their existing shards).
pub fn reset() {
    let shards = shards_lock();
    for shard in shards.iter() {
        let mut shard = lock_or_recover(shard);
        shard.counters.clear();
        shard.gauges.clear();
        shard.dists.clear();
    }
}

/// Serializes recording sessions: one consumer (a CLI invocation, a test)
/// owns the registry at a time. Threads *within* a session record freely.
static SESSION: Mutex<()> = Mutex::new(());

/// RAII handle for an exclusive recording session (see [`recording`]).
pub struct RecordingGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for RecordingGuard {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

/// Start an exclusive recording session: takes the session lock (blocking
/// out concurrent sessions, e.g. parallel tests in one binary), resets the
/// registry, and enables recording until the guard drops.
pub fn recording() -> RecordingGuard {
    let lock = lock_or_recover(&SESSION);
    reset();
    set_enabled(true);
    RecordingGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = recording();
        set_enabled(false);
        counter_add("test.nothing", 5);
        gauge_max("test.nothing.g", 5);
        dist_record(
            "test.nothing.d",
            DistSpec {
                lo: 0.0,
                hi: 1.0,
                bins: 4,
            },
            0.5,
        );
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("test.nothing"), 0);
        assert_eq!(snap.gauge("test.nothing.g"), None);
        assert!(!snap.dists.contains_key("test.nothing.d"));
    }

    #[test]
    fn counter_add_many_matches_individual_adds() {
        let _g = recording();
        counter_add("test.batch.a", 1);
        counter_add("test.batch.b", 2);
        let individual = (
            snapshot().counter("test.batch.a"),
            snapshot().counter("test.batch.b"),
        );
        reset();
        counter_add_many(&[
            ("test.batch.a", 1),
            ("test.batch.b", 2),
            ("test.batch.c", 0),
        ]);
        let snap = snapshot();
        assert_eq!(
            (snap.counter("test.batch.a"), snap.counter("test.batch.b")),
            individual
        );
        // Zero deltas never materialize a key.
        assert!(!snap.counters.contains_key("test.batch.c"));
        // Batches accumulate like individual adds.
        counter_add_many(&[("test.batch.a", 4)]);
        assert_eq!(snapshot().counter("test.batch.a"), 5);
    }

    #[test]
    fn counter_add_many_disabled_records_nothing() {
        let _g = recording();
        set_enabled(false);
        counter_add_many(&[("test.batch.off", 9)]);
        set_enabled(true);
        assert_eq!(snapshot().counter("test.batch.off"), 0);
    }

    #[test]
    fn counters_gauges_dists_round_trip() {
        let _g = recording();
        counter_add("test.rt.c", 2);
        counter_add("test.rt.c", 3);
        gauge_max("test.rt.g", 7);
        gauge_max("test.rt.g", 4);
        let spec = DistSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 10,
        };
        for x in [1.0, 2.0, 3.0, 42.0] {
            dist_record("test.rt.d", spec, x);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.rt.c"), 5);
        assert_eq!(snap.gauge("test.rt.g"), Some(7));
        let d = &snap.dists["test.rt.d"];
        assert_eq!(d.count(), 4);
        assert_eq!(d.overflow(), 1);
        let text = snap.render_text();
        assert!(text.contains("counter test.rt.c = 5"));
        assert!(text.contains("gauge   test.rt.g = 7"));
        assert!(text.contains("dist    test.rt.d: n=4"));
    }

    #[test]
    fn shards_from_many_threads_merge_to_the_same_totals() {
        let _g = recording();
        let spec = DistSpec {
            lo: 0.0,
            hi: 100.0,
            bins: 20,
        };
        // The same 120 operations, partitioned over 1, 3 and 8 threads,
        // must merge to identical snapshots.
        let run_partitioned = |threads: usize| {
            reset();
            let chunk = 120 / threads;
            std::thread::scope(|s| {
                for t in 0..threads {
                    s.spawn(move || {
                        for i in (t * chunk)..((t + 1) * chunk) {
                            counter_add("test.merge.c", (i % 7) as u64);
                            gauge_max("test.merge.g", i as u64);
                            dist_record("test.merge.d", spec, i as f64);
                        }
                    });
                }
            });
            let snap = snapshot();
            (
                snap.counter("test.merge.c"),
                snap.gauge("test.merge.g"),
                snap.dists["test.merge.d"].bins().to_vec(),
                snap.dists["test.merge.d"].count(),
            )
        };
        let single = run_partitioned(1);
        for threads in [3, 8] {
            assert_eq!(run_partitioned(threads), single, "threads={threads}");
        }
    }

    #[test]
    fn reset_clears_all_shards() {
        let _g = recording();
        counter_add("test.reset.c", 9);
        reset();
        assert_eq!(snapshot().counter("test.reset.c"), 0);
    }
}
