//! Trace reading: the exact inverse of the [`crate::trace`] JSONL writer.
//!
//! [`parse_events`] turns a JSONL dump back into the typed
//! [`TraceEvent`] stream; [`parse_trace`] additionally requires the
//! self-contained trace-file framing (a leading `meta` line carrying the
//! schema version and the case spec the trace was recorded from) and
//! enforces the schema version, so a replay tool never misinterprets a
//! trace written under a different encoding.
//!
//! The parser is hand-rolled like the writer (the workspace carries no
//! serde_json) but is a complete flat-object JSON reader: it handles every
//! escape the writer can produce (`\uXXXX` including surrogate pairs),
//! rejects malformed lines with the line number, and parses numbers
//! through Rust's shortest-round-trip `FromStr` — so
//! `parse_events(to_jsonl(events)) == events` for any encodable stream.

use crate::trace::{RxOutcome, TraceEvent, TRACE_SCHEMA};
use std::collections::BTreeMap;

/// A malformed or unreadable trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceReadError {
    /// A line failed to parse; 1-based line number plus detail.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The trace has no leading `meta` line, so the recording's case spec
    /// (and schema version) are unknown — it cannot be replayed.
    MissingMeta,
    /// The trace was written under a different schema version.
    SchemaMismatch {
        /// Version found in the trace's `meta` line.
        found: u32,
        /// Version this reader understands ([`TRACE_SCHEMA`]).
        expected: u32,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Malformed { line, msg } => {
                write!(f, "trace line {line}: {msg}")
            }
            TraceReadError::MissingMeta => {
                write!(
                    f,
                    "trace has no leading meta line (`{{\"ev\":\"meta\",...}}`); \
                     re-record it with a current `sstsp-sim trace`"
                )
            }
            TraceReadError::SchemaMismatch { found, expected } => {
                write!(
                    f,
                    "trace schema version {found} does not match this reader's {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

/// A parsed self-contained trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    /// Schema version from the meta line (always [`TRACE_SCHEMA`] after a
    /// successful parse).
    pub schema: u32,
    /// The one-line case spec the trace was recorded from.
    pub case: String,
    /// The recorded event stream (meta line excluded).
    pub events: Vec<TraceEvent>,
}

/// One JSON scalar as the flat encoder emits them.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    /// Numbers keep their source text; each field parses it at its own
    /// width so integers and floats both round-trip exactly.
    Num(String),
    Bool(bool),
    Null,
}

/// Parse one `\uXXXX` escape body (cursor sits after the `u`), combining
/// surrogate pairs.
fn parse_unicode_escape(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<char, String> {
    fn unit(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        what: &str,
    ) -> Result<u16, String> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = chars.next().ok_or_else(|| format!("truncated {what}"))?;
            v = v * 16
                + c.to_digit(16)
                    .ok_or_else(|| format!("bad hex digit `{c}` in {what}"))?;
        }
        Ok(v as u16)
    }
    let hi = unit(chars, "\\u escape")?;
    if (0xd800..0xdc00).contains(&hi) {
        // High surrogate: the writer always follows with the low half.
        if chars.next() != Some('\\') || chars.next() != Some('u') {
            return Err("high surrogate not followed by \\u escape".to_string());
        }
        let lo = unit(chars, "low surrogate")?;
        if !(0xdc00..0xe000).contains(&lo) {
            return Err(format!("invalid low surrogate {lo:#06x}"));
        }
        let cp = 0x10000 + (((hi as u32 - 0xd800) << 10) | (lo as u32 - 0xdc00));
        char::from_u32(cp).ok_or_else(|| format!("invalid code point {cp:#x}"))
    } else if (0xdc00..0xe000).contains(&hi) {
        Err(format!("unpaired low surrogate {hi:#06x}"))
    } else {
        char::from_u32(hi as u32).ok_or_else(|| format!("invalid code point {hi:#06x}"))
    }
}

/// Parse one flat JSON object line into its key → scalar map.
fn parse_object(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut chars = line.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| {
        while matches!(chars.peek(), Some(' ' | '\t')) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected string".to_string());
            }
            let mut out = String::new();
            loop {
                match chars.next().ok_or("unterminated string")? {
                    '"' => return Ok(out),
                    '\\' => match chars.next().ok_or("truncated escape")? {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => out.push(parse_unicode_escape(chars)?),
                        other => return Err(format!("unknown escape `\\{other}`")),
                    },
                    c if (c as u32) < 0x20 => {
                        return Err("raw control character inside string".to_string())
                    }
                    c => out.push(c),
                }
            }
        };

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected `{`".to_string());
    }
    let mut map = BTreeMap::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let value = match chars.peek().copied().ok_or("truncated value")? {
                '"' => Scalar::Str(parse_string(&mut chars)?),
                't' | 'f' | 'n' => {
                    let mut word = String::new();
                    while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                        word.push(chars.next().unwrap());
                    }
                    match word.as_str() {
                        "true" => Scalar::Bool(true),
                        "false" => Scalar::Bool(false),
                        "null" => Scalar::Null,
                        other => return Err(format!("unknown literal `{other}`")),
                    }
                }
                c if c == '-' || c.is_ascii_digit() => {
                    let mut num = String::new();
                    while matches!(
                        chars.peek(),
                        Some(&c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                    ) {
                        num.push(chars.next().unwrap());
                    }
                    Scalar::Num(num)
                }
                c => return Err(format!("unexpected `{c}` at start of value")),
            };
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}`".to_string()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing garbage after object".to_string());
    }
    Ok(map)
}

/// Field accessors over a parsed object, consuming fields so leftovers can
/// be rejected.
struct Fields {
    map: BTreeMap<String, Scalar>,
}

impl Fields {
    fn take(&mut self, key: &str) -> Result<Scalar, String> {
        self.map
            .remove(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    fn str(&mut self, key: &str) -> Result<String, String> {
        match self.take(key)? {
            Scalar::Str(s) => Ok(s),
            other => Err(format!("field `{key}` is not a string ({other:?})")),
        }
    }

    fn num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        match self.take(key)? {
            Scalar::Num(n) => n
                .parse()
                .map_err(|_| format!("field `{key}` has unparsable number `{n}`")),
            other => Err(format!("field `{key}` is not a number ({other:?})")),
        }
    }

    fn bool(&mut self, key: &str) -> Result<bool, String> {
        match self.take(key)? {
            Scalar::Bool(b) => Ok(b),
            other => Err(format!("field `{key}` is not a bool ({other:?})")),
        }
    }

    fn opt_u32(&mut self, key: &str) -> Result<Option<u32>, String> {
        match self.take(key)? {
            Scalar::Null => Ok(None),
            Scalar::Num(n) => n
                .parse()
                .map(Some)
                .map_err(|_| format!("field `{key}` has unparsable number `{n}`")),
            other => Err(format!("field `{key}` is not null-or-number ({other:?})")),
        }
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, String> {
        match self.take(key)? {
            Scalar::Null => Ok(None),
            Scalar::Num(n) => n
                .parse()
                .map(Some)
                .map_err(|_| format!("field `{key}` has unparsable number `{n}`")),
            other => Err(format!("field `{key}` is not null-or-number ({other:?})")),
        }
    }

    fn finish(self, ev: &str) -> Result<(), String> {
        match self.map.into_keys().next() {
            None => Ok(()),
            Some(k) => Err(format!("unexpected field `{k}` in `{ev}` event")),
        }
    }
}

/// Decode one JSONL line into a [`TraceEvent`].
fn parse_event_line(line: &str) -> Result<TraceEvent, String> {
    let mut f = Fields {
        map: parse_object(line)?,
    };
    let ev = f.str("ev")?;
    let event = match ev.as_str() {
        "meta" => TraceEvent::Meta {
            schema: f.num("schema")?,
            case: f.str("case")?,
        },
        "run_start" => TraceEvent::RunStart {
            protocol: f.str("protocol")?,
            n_nodes: f.num("n_nodes")?,
            seed: f.num("seed")?,
        },
        "beacon_tx" => TraceEvent::BeaconTx {
            bp: f.num("bp")?,
            src: f.num("src")?,
        },
        "beacon_rx" => {
            let bp = f.num("bp")?;
            let src = f.num("src")?;
            let dst = f.num("dst")?;
            let t_rx_us = f.num("t_rx_us")?;
            let clock_before_us = f.num("clock_before_us")?;
            let token = f.str("outcome")?;
            let outcome = match token.as_str() {
                "accept" => RxOutcome::Accept {
                    retarget: f.bool("retarget")?,
                },
                "guard_reject" => RxOutcome::GuardReject,
                "mutesla_reject" => RxOutcome::MuteslaReject,
                "unknown_anchor" => RxOutcome::UnknownAnchor,
                "coarse_sync" => RxOutcome::CoarseSync,
                "ignored" => RxOutcome::Ignored,
                other => return Err(format!("unknown rx outcome `{other}`")),
            };
            TraceEvent::BeaconRx {
                bp,
                src,
                dst,
                t_rx_us,
                clock_before_us,
                outcome,
            }
        }
        "campaign" => TraceEvent::Campaign {
            bp: f.num("bp")?,
            src: f.num("src")?,
            member: f.num("member")?,
            role: f.str("role")?,
        },
        "hook_drop" => TraceEvent::HookDrop {
            bp: f.num("bp")?,
            src: f.num("src")?,
            dst: f.num("dst")?,
        },
        "ref_change" => TraceEvent::RefChange {
            bp: f.num("bp")?,
            from: f.opt_u32("from")?,
            to: f.opt_u32("to")?,
        },
        "domain_ref_change" => TraceEvent::DomainRefChange {
            bp: f.num("bp")?,
            domain: f.num("domain")?,
            from: f.opt_u32("from")?,
            to: f.opt_u32("to")?,
        },
        "bp_end" => TraceEvent::BpEnd {
            bp: f.num("bp")?,
            spread_us: f.opt_f64("spread_us")?,
            reference: f.opt_u32("reference")?,
            disturbed: f.bool("disturbed")?,
        },
        "violation" => TraceEvent::Violation {
            bp: f.num("bp")?,
            kind: f.str("kind")?,
            node: f.opt_u32("node")?,
            detail: f.str("detail")?,
        },
        "run_end" => TraceEvent::RunEnd {
            tx_successes: f.num("tx_successes")?,
            tx_collisions: f.num("tx_collisions")?,
            guard_rejections: f.num("guard_rejections")?,
            mutesla_rejections: f.num("mutesla_rejections")?,
            retargets: f.num("retargets")?,
            peak_spread_us: f.num("peak_spread_us")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    f.finish(&ev)?;
    Ok(event)
}

/// Parse a JSONL event stream (empty lines skipped). Inverse of
/// [`crate::trace::to_jsonl`].
pub fn parse_events(input: &str) -> Result<Vec<TraceEvent>, TraceReadError> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(
            parse_event_line(line).map_err(|msg| TraceReadError::Malformed { line: i + 1, msg })?,
        );
    }
    Ok(events)
}

/// Parse a self-contained trace file: a `meta` header line (schema version
/// checked against [`TRACE_SCHEMA`]) followed by the recorded events.
pub fn parse_trace(input: &str) -> Result<RecordedTrace, TraceReadError> {
    let mut events = parse_events(input)?;
    let Some(TraceEvent::Meta { .. }) = events.first() else {
        return Err(TraceReadError::MissingMeta);
    };
    let TraceEvent::Meta { schema, case } = events.remove(0) else {
        unreachable!("first event checked above");
    };
    if schema != TRACE_SCHEMA {
        return Err(TraceReadError::SchemaMismatch {
            found: schema,
            expected: TRACE_SCHEMA,
        });
    }
    Ok(RecordedTrace {
        schema,
        case,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::to_jsonl;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                protocol: "SSTSP".to_string(),
                n_nodes: 6,
                seed: 11,
            },
            TraceEvent::BeaconTx { bp: 1, src: 0 },
            TraceEvent::BeaconRx {
                bp: 1,
                src: 0,
                dst: 3,
                t_rx_us: 300128.5,
                clock_before_us: -300100.254367,
                outcome: RxOutcome::Accept { retarget: true },
            },
            TraceEvent::BeaconRx {
                bp: 1,
                src: 0,
                dst: 4,
                t_rx_us: 1.0e-9,
                clock_before_us: 2.5e17,
                outcome: RxOutcome::GuardReject,
            },
            TraceEvent::Campaign {
                bp: 1,
                src: 5,
                member: 1,
                role: "amplifier".to_string(),
            },
            TraceEvent::HookDrop {
                bp: 2,
                src: 0,
                dst: 1,
            },
            TraceEvent::RefChange {
                bp: 2,
                from: None,
                to: Some(4),
            },
            TraceEvent::DomainRefChange {
                bp: 3,
                domain: 1,
                from: Some(6),
                to: None,
            },
            TraceEvent::BpEnd {
                bp: 3,
                spread_us: None,
                reference: None,
                disturbed: true,
            },
            TraceEvent::Violation {
                bp: 4,
                kind: "key_freshness".to_string(),
                node: Some(2),
                detail: "drift 3.5 µs > bound \"δ\"\n\ttab & snowman ☃ \u{1}\u{1f310}".to_string(),
            },
            TraceEvent::RunEnd {
                tx_successes: 10,
                tx_collisions: 1,
                guard_rejections: 2,
                mutesla_rejections: 3,
                retargets: 4,
                peak_spread_us: 312.53608422121033,
            },
        ]
    }

    #[test]
    fn serialize_parse_round_trip_is_exact() {
        let events = sample_events();
        let jsonl = to_jsonl(&events).expect("all floats finite");
        assert!(jsonl.is_ascii(), "writer emits pure ASCII");
        let parsed = parse_events(&jsonl).expect("own output parses");
        assert_eq!(parsed, events);
        // And a second encode is byte-identical (fixed point).
        assert_eq!(to_jsonl(&parsed).unwrap(), jsonl);
    }

    #[test]
    fn trace_framing_requires_matching_meta() {
        let mut events = vec![TraceEvent::Meta {
            schema: TRACE_SCHEMA,
            case: "n=6 dur=10 seed=11 m=4 delta=300 plan=5".to_string(),
        }];
        events.extend(sample_events());
        let jsonl = to_jsonl(&events).unwrap();
        let trace = parse_trace(&jsonl).expect("framed trace parses");
        assert_eq!(trace.schema, TRACE_SCHEMA);
        assert_eq!(trace.case, "n=6 dur=10 seed=11 m=4 delta=300 plan=5");
        assert_eq!(trace.events, sample_events());

        // No meta line at all.
        let bare = to_jsonl(&sample_events()).unwrap();
        assert_eq!(parse_trace(&bare), Err(TraceReadError::MissingMeta));

        // Wrong schema version.
        let future = jsonl.replacen("\"schema\":1", "\"schema\":999", 1);
        assert_eq!(
            parse_trace(&future),
            Err(TraceReadError::SchemaMismatch {
                found: 999,
                expected: TRACE_SCHEMA
            })
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for (bad, needle) in [
            ("{\"ev\":\"beacon_tx\",\"bp\":1,\"src\":0}trailing", "trailing"),
            ("{\"ev\":\"beacon_tx\",\"bp\":1}", "missing field `src`"),
            ("{\"ev\":\"beacon_tx\",\"bp\":1,\"src\":0,\"x\":1}", "unexpected field `x`"),
            ("{\"ev\":\"warp\",\"bp\":1}", "unknown event kind `warp`"),
            ("{\"ev\":\"beacon_tx\",\"bp\":true,\"src\":0}", "not a number"),
            ("{\"ev\":\"violation\",\"bp\":1,\"kind\":\"k\",\"node\":null,\"detail\":\"\\ud800\"}", "surrogate"),
            ("not json at all", "expected `{`"),
        ] {
            let input = format!("{{\"ev\":\"beacon_tx\",\"bp\":1,\"src\":0}}\n{bad}\n");
            match parse_events(&input) {
                Err(TraceReadError::Malformed { line, msg }) => {
                    assert_eq!(line, 2, "wrong line for `{bad}`");
                    assert!(msg.contains(needle), "`{msg}` lacks `{needle}`");
                }
                other => panic!("`{bad}` gave {other:?}"),
            }
        }
    }

    #[test]
    fn reader_accepts_whitespace_and_blank_lines() {
        let input = "\n{ \"ev\" : \"beacon_tx\" , \"bp\" : 7 , \"src\" : 2 }\n\n";
        assert_eq!(
            parse_events(input).unwrap(),
            vec![TraceEvent::BeaconTx { bp: 7, src: 2 }]
        );
    }
}
