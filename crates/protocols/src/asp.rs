//! ASP — Automatic Self-time-correcting Procedure (Sheu, Chao & Sun,
//! ICDCS 2004; the paper's reference \[9\]), single-hop instantiation.
//!
//! ASP's two tasks per the SSTSP paper's summary: (1) *increase the
//! successful transmission probability of faster nodes* by raising their
//! beacon priority and cutting everyone else's; (2) *spread the faster
//! time* by re-raising the priority of slower nodes once they have
//! accumulated enough information to self-correct. In a single-hop IBSS
//! task (2) reduces to the corrected nodes beaconing on the fast time's
//! behalf.
//!
//! Priority is realized in the contention window itself: a station that
//! believes it is fast (no timer update for a while) draws its slot from
//! the *front* fraction of the window; a station that was just corrected
//! draws from the back; a station that self-corrected (applied a rate fix)
//! returns to the front half. Like ASP — and unlike TSF — stations also
//! apply a *rate* correction estimated from successive received
//! timestamps, which is what "self-time-correcting" refers to.

use crate::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use clocks::TsfTimer;
use mac80211::frame::BeaconBody;
use rand::Rng;

/// BPs without an update after which a station considers itself fast.
const FAST_AFTER_BPS: u32 = 8;

/// Number of observations needed before applying a rate self-correction.
const SELF_CORRECT_OBS: u32 = 4;

/// A station running single-hop ASP.
#[derive(Debug, Clone)]
pub struct AspNode {
    timer: TsfTimer,
    /// Rate correction applied on top of the TSF timer (self-correction).
    rate_fix: f64,
    /// Local time the rate fix pivots around.
    rate_pivot_us: f64,
    prev_obs: Option<(f64, f64)>,
    obs_count: u32,
    bps_since_update: u32,
    self_corrected: bool,
    seq: u32,
    present: bool,
}

impl Default for AspNode {
    fn default() -> Self {
        Self::new()
    }
}

impl AspNode {
    /// Fresh ASP station.
    pub fn new() -> Self {
        AspNode {
            timer: TsfTimer::new(),
            rate_fix: 1.0,
            rate_pivot_us: 0.0,
            prev_obs: None,
            obs_count: 0,
            bps_since_update: FAST_AFTER_BPS,
            self_corrected: false,
            seq: 0,
            present: true,
        }
    }

    /// Whether the station currently believes itself fast.
    pub fn believes_fast(&self) -> bool {
        self.bps_since_update >= FAST_AFTER_BPS
    }

    /// Whether a rate self-correction has been applied.
    pub fn is_self_corrected(&self) -> bool {
        self.self_corrected
    }

    fn corrected(&self, local_us: f64) -> f64 {
        // Apply the rate fix around the pivot so the correction is
        // continuous at the instant it was introduced.
        self.timer.value_us(local_us) + (self.rate_fix - 1.0) * (local_us - self.rate_pivot_us)
    }
}

impl SyncProtocol for AspNode {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.present {
            return BeaconIntent::Silent;
        }
        // Priority through slot placement: fast or self-corrected stations
        // draw from the front third of the window; the rest from the back
        // two thirds (and only with reduced frequency, to cut their
        // contention pressure as ASP prescribes).
        let w = ctx.config.w;
        if self.believes_fast() || self.self_corrected {
            // Probabilistic participation keeps the front of the window
            // from collapsing under simultaneous fast-believers at scale.
            if ctx.rng.random_bool(0.5) {
                BeaconIntent::FixedSlot(ctx.rng.random_range(0..=w / 3))
            } else {
                BeaconIntent::Silent
            }
        } else if ctx.rng.random_bool(0.25) {
            BeaconIntent::FixedSlot(ctx.rng.random_range(w / 3 + 1..=w))
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: self.corrected(ctx.local_us).max(0.0) as u64,
            root: ctx.id,
            hop: 0,
        })
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        let ts = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
        let corrected_now = self.corrected(rx.local_rx_us);
        if ts > corrected_now {
            // Forward adoption, like TSF (no backward leaps).
            self.timer.adopt_if_later(
                ts - (self.rate_fix - 1.0) * (rx.local_rx_us - self.rate_pivot_us),
                rx.local_rx_us,
            );
            self.bps_since_update = 0;
            self.self_corrected = false;
        }
        // Rate self-correction from successive faster-clock observations.
        if let Some((pl, pt)) = self.prev_obs {
            let d_local = rx.local_rx_us - pl;
            let d_ts = ts - pt;
            if d_local > 1_000.0 && d_ts > 1_000.0 {
                self.obs_count += 1;
                if self.obs_count >= SELF_CORRECT_OBS {
                    let rel = d_ts / d_local;
                    // Continuity: re-pivot before changing the rate.
                    let base = self.corrected(rx.local_rx_us);
                    self.rate_pivot_us = rx.local_rx_us;
                    self.timer.set_to(base, rx.local_rx_us);
                    self.rate_fix = rel.clamp(0.999, 1.001);
                    self.self_corrected = true;
                    self.obs_count = 0;
                }
            }
        }
        self.prev_obs = Some((rx.local_rx_us, ts));
    }

    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.bps_since_update = self.bps_since_update.saturating_add(1);
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.corrected(local_us)
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = true;
        self.prev_obs = None;
        self.obs_count = 0;
        self.bps_since_update = FAST_AFTER_BPS;
        self.self_corrected = false;
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
    }

    fn name(&self) -> &'static str {
        "ASP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestHarness;

    fn beacon(ts: u64, local_rx: f64) -> ReceivedBeacon {
        ReceivedBeacon {
            payload: BeaconPayload::Plain(BeaconBody {
                src: 9,
                seq: 0,
                timestamp_us: ts,
                root: 9,
                hop: 0,
            }),
            local_rx_us: local_rx,
        }
    }

    #[test]
    fn fast_station_takes_front_slots() {
        let mut n = AspNode::new();
        let mut h = TestHarness::new(1);
        assert!(n.believes_fast());
        let w = h.config.w;
        let mut transmissions = 0;
        for _ in 0..60 {
            match n.intent(&mut h.ctx(0.0)) {
                BeaconIntent::FixedSlot(s) => {
                    assert!(s <= w / 3, "front-third slot, got {s}");
                    transmissions += 1;
                }
                BeaconIntent::Silent => {} // probabilistic participation
                other => panic!("ASP uses priority slots, got {other:?}"),
            }
        }
        assert!(
            transmissions > 15,
            "fast station competes about half the BPs"
        );
    }

    #[test]
    fn corrected_station_moves_to_back_slots() {
        let mut n = AspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(0.0), beacon(1_000_000, 0.0));
        assert!(!n.believes_fast());
        let w = h.config.w;
        let mut saw_tx = false;
        for _ in 0..100 {
            match n.intent(&mut h.ctx(0.0)) {
                BeaconIntent::FixedSlot(s) => {
                    assert!(s > w / 3, "back-window slot, got {s}");
                    saw_tx = true;
                }
                BeaconIntent::Silent => {}
                other => panic!("ASP uses priority slots, got {other:?}"),
            }
        }
        assert!(saw_tx, "slow stations still compete occasionally");
    }

    #[test]
    fn forward_adoption_only() {
        let mut n = AspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(5_000_000.0), beacon(100, 5_000_000.0));
        assert!((n.clock_us(5_000_000.0) - 5_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn self_correction_tracks_fast_sender_rate() {
        let mut n = AspNode::new();
        let mut h = TestHarness::new(1);
        let t_p = h.config.t_p_us;
        for k in 1..=12u64 {
            let local = k as f64 * 100_000.0;
            let remote = local * 1.0001 - t_p + 50.0; // fast sender, ahead
            n.on_beacon(&mut h.ctx(local), beacon(remote as u64, local));
        }
        assert!(n.is_self_corrected());
        assert!(
            (n.rate_fix - 1.0001).abs() < 5e-5,
            "rate fix {} should approach 1.0001",
            n.rate_fix
        );
        // Self-corrected stations regain front-slot priority (modulo the
        // probabilistic participation draw).
        let w = h.config.w;
        let mut saw_front = false;
        for _ in 0..40 {
            if let BeaconIntent::FixedSlot(s) = n.intent(&mut h.ctx(1_300_000.0)) {
                assert!(s <= w / 3, "self-corrected station got back slot {s}");
                saw_front = true;
            }
        }
        assert!(saw_front);
    }
}
