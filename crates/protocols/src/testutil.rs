//! Shared test fixtures for protocol unit tests (compiled only for tests).

use crate::api::{AnchorRegistry, NodeCtx, NodeId, ProtocolConfig};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Persistent per-test environment: one RNG stream, one anchor registry and
/// one config shared across callbacks, as the engine would provide.
pub struct TestHarness {
    pub id: NodeId,
    pub rng: ChaCha12Rng,
    pub anchors: AnchorRegistry,
    pub config: ProtocolConfig,
}

impl TestHarness {
    pub fn new(id: NodeId) -> Self {
        TestHarness {
            id,
            rng: ChaCha12Rng::seed_from_u64(1000 + id as u64),
            anchors: AnchorRegistry::new(),
            config: ProtocolConfig::paper(),
        }
    }

    /// Kept as fixture API even while no current test overrides the config.
    #[allow(dead_code)]
    pub fn with_config(id: NodeId, config: ProtocolConfig) -> Self {
        TestHarness {
            id,
            rng: ChaCha12Rng::seed_from_u64(1000 + id as u64),
            anchors: AnchorRegistry::new(),
            config,
        }
    }

    /// Build a context at the given local time.
    pub fn ctx(&mut self, local_us: f64) -> NodeCtx<'_> {
        NodeCtx {
            id: self.id,
            local_us,
            rng: &mut self.rng,
            anchors: &mut self.anchors,
            config: &self.config,
        }
    }
}
