//! ATSP — Adaptive Timing Synchronization Procedure (Lai & Zhou, AINA
//! 2003; the paper's reference \[4\]).
//!
//! The fix for TSF's fastest-node asynchronization: let the station that
//! believes itself fastest compete for beacon transmission every BP, while
//! everyone else competes only once every `I_max` BPs. Belief is maintained
//! from observed beacons:
//!
//! * a station whose timer is *updated* by a received beacon has seen a
//!   faster clock → it sets its competition interval to `I_max`;
//! * a station that goes `I_max` consecutive BPs without an update assumes
//!   it is the fastest → competition interval 1.
//!
//! ATSP inherits TSF's contention and adoption rules otherwise, so it keeps
//! TSF's "no backward leap" property but still exhibits residual collisions
//! at large N (the paper's motivation for abandoning priority schemes
//! altogether).

use crate::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use clocks::TsfTimer;
use mac80211::frame::BeaconBody;

/// A station running ATSP.
#[derive(Debug, Clone)]
pub struct AtspNode {
    timer: TsfTimer,
    seq: u32,
    present: bool,
    /// Current competition interval `I(i)` in BPs: 1 = every BP.
    interval: u32,
    /// BPs until the next competition.
    countdown: u32,
    /// Consecutive BPs without a timer update.
    bps_since_update: u32,
    /// Whether the timer was updated during the current BP.
    updated_this_bp: bool,
}

impl Default for AtspNode {
    fn default() -> Self {
        Self::new()
    }
}

impl AtspNode {
    /// Fresh ATSP station (starts competing every BP, like TSF).
    pub fn new() -> Self {
        AtspNode {
            timer: TsfTimer::new(),
            seq: 0,
            present: true,
            interval: 1,
            countdown: 0,
            bps_since_update: 0,
            updated_this_bp: false,
        }
    }

    /// Current competition interval (test introspection).
    pub fn competition_interval(&self) -> u32 {
        self.interval
    }
}

impl SyncProtocol for AtspNode {
    fn intent(&mut self, _ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.present {
            return BeaconIntent::Silent;
        }
        if self.countdown == 0 {
            self.countdown = self.interval;
            BeaconIntent::Contend
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: self.timer.read_us(ctx.local_us),
            root: ctx.id,
            hop: 0,
        })
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        let ts = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
        if self.timer.adopt_if_later(ts, rx.local_rx_us) {
            self.updated_this_bp = true;
        }
    }

    fn on_bp_end(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.updated_this_bp {
            // Someone faster exists: back off to the slow competition tier.
            self.interval = ctx.config.atsp_imax;
            self.bps_since_update = 0;
        } else {
            self.bps_since_update = self.bps_since_update.saturating_add(1);
            if self.bps_since_update >= ctx.config.atsp_imax {
                // Nothing faster heard for a full cycle: assume fastest.
                self.interval = 1;
            }
        }
        self.updated_this_bp = false;
        self.countdown = self.countdown.saturating_sub(1);
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.timer.value_us(local_us)
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = true;
        self.interval = 1;
        self.countdown = 0;
        self.bps_since_update = 0;
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
    }

    fn name(&self) -> &'static str {
        "ATSP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestHarness;

    fn beacon(ts: u64) -> ReceivedBeacon {
        ReceivedBeacon {
            payload: BeaconPayload::Plain(BeaconBody {
                src: 9,
                seq: 0,
                timestamp_us: ts,
                root: 9,
                hop: 0,
            }),
            local_rx_us: 0.0,
        }
    }

    #[test]
    fn initially_competes_every_bp() {
        let mut n = AtspNode::new();
        let mut h = TestHarness::new(1);
        for _ in 0..3 {
            assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Contend);
            n.on_bp_end(&mut h.ctx(0.0));
        }
    }

    #[test]
    fn hearing_faster_clock_backs_off() {
        let mut n = AtspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(0.0), beacon(1_000_000));
        n.on_bp_end(&mut h.ctx(0.0));
        assert_eq!(n.competition_interval(), h.config.atsp_imax);
        // Now it contends only once per I_max BPs.
        let mut contends = 0;
        for _ in 0..h.config.atsp_imax {
            if n.intent(&mut h.ctx(2_000_000.0)) == BeaconIntent::Contend {
                contends += 1;
            }
            n.on_bp_end(&mut h.ctx(2_000_000.0));
        }
        assert_eq!(contends, 1);
    }

    #[test]
    fn silence_promotes_back_to_fast_tier() {
        let mut n = AtspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(0.0), beacon(1_000_000));
        n.on_bp_end(&mut h.ctx(0.0));
        assert_eq!(n.competition_interval(), h.config.atsp_imax);
        // I_max quiet BPs → believes itself fastest again.
        for _ in 0..h.config.atsp_imax {
            n.on_bp_end(&mut h.ctx(2_000_000.0));
        }
        assert_eq!(n.competition_interval(), 1);
    }

    #[test]
    fn slower_beacons_do_not_back_off() {
        let mut n = AtspNode::new();
        let mut h = TestHarness::new(1);
        // Beacon older than local clock: not adopted, no tier change.
        n.on_beacon(
            &mut h.ctx(5_000_000.0),
            ReceivedBeacon {
                payload: BeaconPayload::Plain(BeaconBody {
                    src: 9,
                    seq: 0,
                    timestamp_us: 100,
                    root: 9,
                    hop: 0,
                }),
                local_rx_us: 5_000_000.0,
            },
        );
        n.on_bp_end(&mut h.ctx(5_000_000.0));
        assert_eq!(n.competition_interval(), 1);
    }

    #[test]
    fn rejoin_resets_tier() {
        let mut n = AtspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(0.0), beacon(1_000_000));
        n.on_bp_end(&mut h.ctx(0.0));
        n.on_leave(&mut h.ctx(0.0));
        assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Silent);
        n.on_join(&mut h.ctx(0.0));
        assert_eq!(n.competition_interval(), 1);
    }
}
