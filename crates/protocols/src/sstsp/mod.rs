//! SSTSP — the Scalable Secure Time Synchronization Procedure
//! (Chen & Leneutre, ICPP 2006). This is the paper's contribution.
//!
//! ## Protocol summary
//!
//! * **Coarse phase** (new arrivals only): scan beacons for a few BPs,
//!   collect `timestamp − local` offsets, eliminate biased offsets with a
//!   loose threshold filter, average the survivors, and step the adjusted
//!   clock once. This provides the loose synchronization µTESLA needs.
//! * **Fine phase**: one node is the **reference**. It transmits a
//!   µTESLA-secured beacon at slot 0 of every BP with no random delay.
//!   Everyone else keeps silent and disciplines an [`AdjustedClock`]
//!   (`c_i(t_i) = kʲ t_i + bʲ`) toward the reference using the paper's
//!   equations (2)–(5), with aggressiveness `m`.
//! * **Election**: a node that has not heard a reference beacon for more
//!   than `l` BPs enters TSF-style contention; the station whose beacon
//!   goes out first uncollided becomes the new reference. A reference
//!   whose own beacons keep colliding (another station is beaconing at
//!   slot 0 — e.g. the attacker of Fig. 4) steps down through the same
//!   `l`-missed rule.
//! * **Security checks** on every received beacon, in order:
//!   1. the µTESLA interval index must match the receiver's current
//!      interval (anti-replay);
//!   2. the disclosed key must hash to the published anchor (or to a cached
//!      authenticated element);
//!   3. the timestamp must be within the guard time δ of the receiver's
//!      adjusted clock;
//!   4. clock adjustment only ever uses beacons *authenticated* by a later
//!      disclosed key, i.e. beacons `j − 1` and `j − 2` at reception of
//!      beacon `j`.
//!
//! (The paper lists the guard check after key validation; the checks are
//! independent and all must pass, so we run the cheap local guard first and
//! only then pay for hash verification — same accept/reject set.)

use crate::api::{
    BeaconIntent, BeaconPayload, HasAdjustedClock, HotState, MeshRole, NodeCtx, NodeId,
    ProtocolConfig, ReceivedBeacon, SyncProtocol,
};
use clocks::{AdjustedClock, SyncSample};
use mac80211::frame::BeaconBody;
use rand::Rng;
use sstsp_crypto::{ChainElement, IntervalSchedule, MuTeslaSigner, MuTeslaVerifier};
use sstsp_telemetry as telemetry;
use std::collections::VecDeque;

/// Retired per-source verifiers kept for reuse. Bounds the cache to the
/// handful of stations a node realistically alternates between (reference
/// churn, domain merges); beyond that the oldest entry is evicted and its
/// next use pays one anchor walk again.
const VERIFIER_CACHE_CAP: usize = 8;

/// Diagnostic counters exposed for tests, ablations and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct SstspStats {
    /// Beacons rejected by the guard-time check.
    pub guard_rejections: u64,
    /// Beacons rejected by µTESLA (interval or key or MAC).
    pub mutesla_rejections: u64,
    /// Beacons from sources with no published anchor (external attacker).
    pub unknown_anchor: u64,
    /// Successful clock re-targetings.
    pub retargets: u64,
    /// Elections this node won (reference role assumptions).
    pub elections_won: u64,
    /// Coarse-phase completions.
    pub coarse_syncs: u64,
    /// Attack alerts raised by the recovery extension.
    pub alerts: u64,
    /// Synchronization restarts performed by the recovery extension.
    pub recovery_restarts: u64,
    /// Secured beacons that passed every check (guard + µTESLA) and were
    /// admitted as evidence of a live reference. External invariant
    /// checkers diff this counter around a delivery to detect acceptance.
    pub accepted: u64,
    /// Discontinuous adjusted-clock steps (coarse-phase completion, domain
    /// takeover). These are the *sanctioned* discontinuities; an external
    /// monotonicity check exempts a BP exactly when this counter moved.
    pub clock_steps: u64,
    /// Snapshot of the guard-lock state (coarse → fine δ) at the time the
    /// stats were read. Not a counter; exposed so external checkers can
    /// reconstruct which guard threshold applied to a given beacon.
    pub guard_locked: bool,
}

/// A beacon observation awaiting µTESLA authentication: reception data for
/// interval `interval`, usable for clock adjustment only once a later
/// beacon discloses the interval's key.
#[derive(Debug, Clone, Copy)]
struct PendingObs {
    interval: u32,
    local_rx_us: f64,
    ts_ref_us: f64,
}

#[derive(Debug, Clone)]
enum Phase {
    /// Pre-synchronization scan (Sec. 3.3 "coarse synchronization phase").
    Coarse { offsets: Vec<f64>, bps_left: u32 },
    /// Normal operation.
    Fine,
}

/// A station running SSTSP.
pub struct SstspNode {
    adjusted: AdjustedClock,
    phase: Phase,
    present: bool,
    /// A node joining the network does not contend until synchronized.
    synchronized: bool,
    is_reference: bool,
    seq: u32,
    /// Consecutive BPs without evidence of a live reference.
    missed_bps: u32,
    /// Consecutive BPs spent election-eligible (drives the contention
    /// probability ramp; see `ProtocolConfig::contend_prob`).
    eligible_bps: u32,
    /// The node's own µTESLA signer. Fractal-backed: it stores O(log n)
    /// chain elements, not the full chain. Constructed lazily from
    /// `chain_seed` the first time this node actually signs (reference
    /// assumption or relay duty); node initiation only draws the seed and
    /// registers a deferred anchor, so a station that never transmits
    /// never pays its chain walk. Tests that skip `init` fall back to
    /// seed-drawing at first reference assumption.
    signer: Option<MuTeslaSigner>,
    /// The chain seed drawn at initiation, pending signer construction.
    chain_seed: Option<ChainElement>,
    ref_src: Option<NodeId>,
    /// The timing-domain root this node's clock descends from (its own id
    /// while holding the reference role). Propagated in beacons so
    /// partitioned multi-hop domains can merge toward the lowest root id.
    domain_root: Option<NodeId>,
    /// Hop distance from the timing-domain root (0 as reference,
    /// upstream.hop + 1 as member). `u32::MAX` = not attached.
    my_hop: u32,
    verifier: Option<MuTeslaVerifier>,
    /// Retired verifiers by source, so re-hearing a station validates its
    /// disclosed keys against that verifier's cached authenticated element
    /// (O(Δj) hashes) instead of re-walking the chain to the anchor (O(j))
    /// on every beacon. Pending buffers are cleared on stash/reuse, which
    /// keeps accept/reject decisions identical to a freshly built verifier.
    verifier_cache: Vec<(NodeId, MuTeslaVerifier)>,
    /// Guard-time state: `false` = still converging, the loose coarse
    /// threshold applies; `true` = locked onto the reference, the tight
    /// fine-phase δ applies. The paper distinguishes exactly these two
    /// regimes ("a tighter threshold here than that in the coarse
    /// synchronization phase"); the lock engages once the observed
    /// timestamp error first drops under δ/2.
    guard_locked: bool,
    pending: VecDeque<PendingObs>,
    samples: VecDeque<SyncSample>,
    // Per-BP flags.
    saw_beacon: bool,
    tx_clean: bool,
    tx_collided: bool,
    /// Secured beacons heard this BP (local density estimate for the
    /// multi-hop relay participation probability).
    rx_secured_this_bp: u32,
    /// Previous BP's count.
    last_rx_secured: u32,
    /// A beacon of our own timing domain was heard this BP (even if it was
    /// sticky-ignored for clock purposes).
    domain_heard: bool,
    /// Consecutive BPs without hearing our domain at all. Elections (which
    /// spawn a new domain) key off this, not off upstream loss: losing an
    /// upstream relay only warrants re-attachment.
    domain_silent_bps: u32,
    /// Consecutive guard rejections of our *own* upstream's beacons. A node
    /// persistently rejecting its own domain is itself desynchronized
    /// (e.g. its clock froze mid-merge with a steep rate) and must resync.
    upstream_rejects: u32,
    /// Consecutive BPs in which beacons were heard but all rejected. A long
    /// streak means our clock left even the µTESLA interval window; only
    /// re-acquiring loose synchronization (the coarse phase) can recover.
    desync_bps: u32,
    /// Beacons rejected during the current BP (recovery detection input).
    rejections_this_bp: u32,
    /// Per-BP rejection history over the recovery window.
    rejection_window: VecDeque<u32>,
    /// Deployment-time mesh configuration (domain, gateway flag, shared
    /// station→domain map); `None` outside multi-domain topologies.
    mesh_role: Option<MeshRole>,
    /// Subordinate-reference upkeep: consecutive BPs without an accepted
    /// beacon from the gateway upstream. Past the election threshold the
    /// subordinate reverts to sovereign rule of its own domain.
    sub_missed: u32,
    /// Diagnostics.
    pub stats: SstspStats,
}

impl SstspNode {
    /// A founding member of the IBSS: starts in the fine phase, considered
    /// loosely synchronized (its initial offset is within the coarse
    /// bound), and immediately eligible for the initial reference election.
    pub fn founding() -> Self {
        SstspNode {
            adjusted: AdjustedClock::identity(),
            phase: Phase::Fine,
            present: true,
            synchronized: true,
            is_reference: false,
            seq: 0,
            missed_bps: 0,
            eligible_bps: 0,
            signer: None,
            chain_seed: None,
            ref_src: None,
            domain_root: None,
            my_hop: u32::MAX,
            verifier: None,
            verifier_cache: Vec::new(),
            guard_locked: false,
            pending: VecDeque::with_capacity(4),
            samples: VecDeque::with_capacity(2),
            saw_beacon: false,
            tx_clean: false,
            tx_collided: false,
            rx_secured_this_bp: 0,
            last_rx_secured: 0,
            domain_heard: false,
            domain_silent_bps: 0,
            upstream_rejects: 0,
            desync_bps: 0,
            rejections_this_bp: 0,
            rejection_window: VecDeque::new(),
            mesh_role: None,
            sub_missed: 0,
            stats: SstspStats::default(),
        }
    }

    /// A station joining an operating network: starts in the coarse phase.
    pub fn joining(coarse_scan_bps: u32) -> Self {
        let mut n = Self::founding();
        n.synchronized = false;
        n.missed_bps = 0;
        n.phase = Phase::Coarse {
            offsets: Vec::new(),
            bps_left: coarse_scan_bps,
        };
        n
    }

    /// Whether the node considers itself synchronized with the network.
    pub fn is_synchronized(&self) -> bool {
        self.synchronized
    }

    /// The current reference this node follows, if any.
    pub fn reference(&self) -> Option<NodeId> {
        if self.is_reference {
            None
        } else {
            self.ref_src
        }
    }

    fn schedule(ctx: &NodeCtx<'_>) -> IntervalSchedule {
        IntervalSchedule::new(0.0, ctx.config.bp_us, ctx.config.total_intervals)
    }

    /// How many missed BPs make a node election-eligible. In single-hop
    /// operation reference silence for l+1 BPs means the reference left.
    /// In relay (multi-hop) mode upstream silence is usually just a lost
    /// relay round — other upstreams are audible and re-attachment is far
    /// cheaper than spawning a new timing domain — so elections wait much
    /// longer.
    fn election_threshold(&self, config: &ProtocolConfig) -> u32 {
        if config.multihop_relay {
            config.l + 8
        } else {
            config.l
        }
    }

    /// The counter elections key off: upstream loss in single-hop (the
    /// reference *is* the domain), total domain silence in relay mode
    /// (sibling relays prove the domain is alive even when our own
    /// upstream went quiet).
    fn election_counter(&self, config: &ProtocolConfig) -> u32 {
        if config.multihop_relay {
            self.domain_silent_bps
        } else {
            self.missed_bps
        }
    }

    /// Whether per-domain election semantics apply to this node: the
    /// scenario enables them *and* a mesh role was distributed.
    fn domain_mode(&self, config: &ProtocolConfig) -> bool {
        config.domain_election && self.mesh_role.is_some()
    }

    /// A *subordinate* reference holds its domain's reference role (slot,
    /// beacons, election identity) while its clock descends from a foreign
    /// root relayed through a gateway. Detected as a reference whose
    /// timing-domain root is not itself; outside domain mode this is never
    /// true ([`Self::become_reference`] always roots at the own id and the
    /// adoption path always clears the role first).
    fn is_subordinate(&self, id: NodeId) -> bool {
        self.is_reference && self.domain_root.is_some() && self.domain_root != Some(id)
    }

    /// The fixed beacon slot this node uses while holding the reference
    /// role. Single-domain operation: slot 0 (the paper's rule). Domain
    /// mode staggers references by one beacon airtime per domain index so
    /// a gateway in range of two references can decode both.
    fn reference_slot(&self, config: &ProtocolConfig) -> u32 {
        match self.mesh_role.as_ref().filter(|_| config.domain_election) {
            Some(role) => role.domain * (config.beacon_airtime_slots + 1),
            None => 0,
        }
    }

    /// The deterministic candidacy slot a domain member beacons in when
    /// its domain has fallen silent: staggered past every reference slot
    /// — so a live reference's earlier transmission always cancels a
    /// candidate, and candidacy can never starve a working reference —
    /// and unique per station, so the lowest eligible id transmits first
    /// and every other candidate cancels on hearing it. Elections in
    /// domain mode are therefore collision-free and draw no randomness.
    fn candidate_slot(role: &MeshRole, id: NodeId, config: &ProtocolConfig) -> u32 {
        (role.num_domains + id) * (config.beacon_airtime_slots + 1)
    }

    /// The gateway relay slot in domain mode: staggered past every
    /// reference *and* candidate slot (a relaying gateway must never
    /// cancel a silent domain's election), and per-gateway so two
    /// gateways sharing an island never collide deterministically.
    fn bridge_relay_slot(role: &MeshRole, config: &ProtocolConfig) -> u32 {
        let b = role.bridge_index.unwrap_or(0);
        let stations = role.domain_of.len() as u32;
        (role.num_domains + stations + b) * (config.beacon_airtime_slots + 1)
    }

    /// The µTESLA interval for the node's current adjusted time, clamped to
    /// the chain range (beacons in the pre-chain half-window round to 1).
    fn interval_for(&self, ctx: &NodeCtx<'_>, local_us: f64) -> usize {
        let c = self.adjusted.value(local_us);
        let j = (c / ctx.config.bp_us).round();
        (j.max(1.0) as usize).min(ctx.config.total_intervals)
    }

    /// Draw the node's chain seed and register its (deferred) anchor, if
    /// not done yet (idempotent). Consumes exactly the randomness the
    /// eager chain build used to, so RNG stream positions are unchanged.
    fn ensure_seed(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.signer.is_none() && self.chain_seed.is_none() {
            let mut seed: ChainElement = [0u8; 16];
            ctx.rng.fill(&mut seed);
            ctx.anchors
                .publish_deferred(ctx.id, seed, ctx.config.total_intervals);
            self.chain_seed = Some(seed);
        }
    }

    /// Create the node's µTESLA signer (walking the chain) and publish its
    /// anchor, if not done yet (idempotent).
    fn ensure_chain(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.signer.is_none() {
            self.ensure_seed(ctx);
            let seed = self.chain_seed.take().expect("seed drawn above");
            let signer = MuTeslaSigner::new(seed, Self::schedule(ctx));
            ctx.anchors.publish(ctx.id, signer.anchor());
            self.signer = Some(signer);
        }
    }

    /// Retire the active verifier into the per-source cache (pending buffer
    /// dropped) so a later return to that source resumes from its cached
    /// authenticated element instead of the anchor.
    fn stash_verifier(&mut self) {
        let (Some(src), Some(mut v)) = (self.ref_src, self.verifier.take()) else {
            return;
        };
        v.clear_pending();
        self.cache_verifier(src, v);
    }

    fn cache_verifier(&mut self, src: NodeId, v: MuTeslaVerifier) {
        if let Some(slot) = self.verifier_cache.iter_mut().find(|(s, _)| *s == src) {
            slot.1 = v;
            return;
        }
        if self.verifier_cache.len() >= VERIFIER_CACHE_CAP {
            self.verifier_cache.remove(0);
        }
        self.verifier_cache.push((src, v));
    }

    fn become_reference(&mut self, ctx: &mut NodeCtx<'_>) {
        self.ensure_chain(ctx);
        // Retire the verifier of the upstream being left behind (keyed by
        // the *old* ref_src, so it must happen before the role flips).
        self.stash_verifier();
        // The reference's clock is frozen (it disciplines no one's clock
        // but its own hardware): replace any catch-up transient in k with
        // the best *rate* estimate available, so the network's time base
        // advances at ~1x real time.
        if self.samples.len() == 2 {
            let d_ref = self.samples[1].ref_us - self.samples[0].ref_us;
            let d_local = self.samples[1].local_us - self.samples[0].local_us;
            if d_local > 0.0 && d_ref > 0.0 {
                let rate = (d_ref / d_local).clamp(0.999, 1.001);
                self.adjusted.set_rate_continuous(ctx.local_us, rate);
            }
        } else if (self.adjusted.k() - 1.0).abs() > 1e-3 {
            // No rate estimate: at least drop an implausible transient.
            self.adjusted.set_rate_continuous(ctx.local_us, 1.0);
        }
        self.is_reference = true;
        self.ref_src = Some(ctx.id);
        self.domain_root = Some(ctx.id);
        self.my_hop = 0;
        // The reference is definitionally synchronized: if later displaced
        // it must hold the tight guard, not the joining-node threshold.
        self.guard_locked = true;
        self.samples.clear();
        self.pending.clear();
        self.missed_bps = 0;
        self.eligible_bps = 0;
        self.stats.elections_won += 1;
        telemetry::count!("sstsp.election.won");
    }

    fn step_down(&mut self) {
        self.stash_verifier();
        self.is_reference = false;
        self.ref_src = None;
        self.domain_root = None;
        self.my_hop = u32::MAX;
        self.sub_missed = 0;
        self.samples.clear();
        self.pending.clear();
    }

    fn on_secured_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: &ReceivedBeacon) {
        let BeaconPayload::Secured(body, auth) = rx.payload else {
            return;
        };
        let src = body.src;
        self.rx_secured_this_bp = self.rx_secured_this_bp.saturating_add(1);

        // Per-domain election: receivers classify senders through the
        // deployment-time mesh role (never through beacon bytes, which are
        // identical to single-domain operation). Ordinary members listen
        // only to their own domain's non-gateway stations — a gateway's
        // relays exist to couple *references*, not to discipline members,
        // and must not count as evidence the domain's own reference is
        // alive. A reference additionally accepts gateway relays (its
        // subordination path). Gateways themselves listen to everything
        // and attach by the usual lowest-root rule.
        if let Some(role) = self
            .mesh_role
            .as_ref()
            .filter(|_| ctx.config.domain_election)
        {
            if !role.is_bridge() {
                let src_bridge = role.is_bridge_node(src);
                let allowed = if self.is_reference {
                    src_bridge || role.same_domain(src)
                } else {
                    !src_bridge && role.same_domain(src)
                };
                if !allowed {
                    return;
                }
            }
        }

        // Domain priority: a beacon whose timing-domain root has a lower
        // id than ours wins (deterministic merge of concurrent domains —
        // multi-hop partitions elect independent references that must
        // converge to one). A takeover beacon is evaluated under the loose
        // guard (the domains' virtual clocks legitimately differ) but
        // still under full µTESLA authentication.
        let my_root = if self.is_reference && !self.is_subordinate(ctx.id) {
            ctx.id
        } else {
            self.domain_root.unwrap_or(u32::MAX)
        };
        // Takeover requires actually *having* a timing domain: in
        // single-hop operation a detached node (fresh, or freshly stepped
        // down) joins through the normal guarded adoption path instead of
        // the domain-merge exemption — otherwise an insider whose lies
        // exceed the guard could capture exactly those nodes. In multi-hop
        // relay mode detached nodes do use the exemption: a station that
        // led its own (since-drifted) domain must still be able to rejoin
        // the surviving one, which is part of this mode's documented
        // security trade-off.
        let takeover =
            (self.domain_root.is_some() || ctx.config.multihop_relay) && body.root < my_root;

        // Stickiness: while our reference is alive, beacons from other
        // senders are ignored (in multi-hop operation several relays are
        // audible every BP; a member disciplines its clock against exactly
        // one upstream). Exceptions: a domain takeover, or a strictly
        // shorter timing path within our own domain (which also keeps the
        // upstream graph a DAG toward the root).
        let have_live_ref =
            self.ref_src.is_some() && self.missed_bps <= ctx.config.l && self.verifier.is_some();
        if body.root == my_root && body.hop < self.my_hop {
            // A same-domain beacon from strictly closer to the root (even
            // one we won't discipline against) is evidence the domain is
            // alive *above us*. Sibling or downstream echoes do not count:
            // if the root dies, its children must notice and re-elect
            // rather than keep a zombie domain alive by echoing each other.
            self.domain_heard = true;
        }
        if have_live_ref && !self.is_reference && self.ref_src != Some(src) {
            let upgrade = ctx.config.multihop_relay
                && body.root == my_root
                && body.hop.saturating_add(1) < self.my_hop;
            if !takeover && !upgrade {
                return;
            }
        } else if !have_live_ref
            && !self.is_reference
            && ctx.config.multihop_relay
            && !takeover
            && self.ref_src != Some(src)
            && body.hop >= self.my_hop
        {
            // Re-attachment after upstream silence must move *toward* the
            // root: following an equal-or-deeper station can create a
            // follow-cycle whose subtree detaches and free-runs.
            return;
        }
        // A reference only yields to a strictly lower root id — except
        // that a subordinate reference keeps accepting its gateway
        // upstream's equal-root beacons: they are its discipline channel.
        let from_upstream =
            self.is_subordinate(ctx.id) && self.ref_src == Some(src) && body.root == my_root;
        if self.is_reference && !takeover && !from_upstream {
            return;
        }

        // Guard-time check (δ): the timestamp must be close to our own
        // adjusted clock. This is the defence of last resort against an
        // *internal* attacker that owns valid credentials. Until the node
        // has locked onto the reference the loose coarse threshold applies
        // (initial offsets can exceed any useful δ).
        let ts_ref = body.timestamp_us as f64 + ctx.config.t_p_us;
        let c_now = self.adjusted.value(rx.local_rx_us);
        let diff = (ts_ref - c_now).abs();
        // Takeover beacons are exempt from the guard: merging timing
        // domains legitimately differ by more than any useful threshold
        // once they have drifted apart. (Multi-hop security trade-off,
        // documented in DESIGN.md: a compromised low-id insider could
        // exploit root priority to drag the network's time; a production
        // design would authenticate root claims — future work, as is the
        // whole multi-hop mode.)
        let guard = if self.guard_locked {
            ctx.config.guard_fine_us
        } else {
            ctx.config.guard_coarse_us
        };
        // Test-only planted bug (mutation sanity check): treat δ as
        // infinite, disabling the guard entirely.
        #[cfg(feature = "mutation-hooks")]
        let guard = if sstsp_crypto::mu_tesla::mutation::weaken_guard_check() {
            f64::INFINITY
        } else {
            guard
        };
        if !takeover && diff > guard {
            self.stats.guard_rejections += 1;
            telemetry::count!("sstsp.reject.guard");
            self.rejections_this_bp += 1;
            // Multi-hop self-correction: persistently rejecting our own
            // upstream means *our* clock left the envelope (a clock frozen
            // mid-merge diverges at its residual rate, far faster than
            // hardware drift). Drop to the loose threshold and
            // re-converge. Single-hop keeps the paper's strict guard: an
            // out-of-envelope member recovers through re-election instead.
            if ctx.config.multihop_relay && (self.ref_src == Some(src) || body.root == my_root) {
                self.upstream_rejects += 1;
                if self.upstream_rejects > 5 {
                    self.guard_locked = false;
                    self.upstream_rejects = 0;
                    // Resync from scratch: clock-adjustment samples from
                    // before the divergence would extrapolate wildly.
                    self.samples.clear();
                    self.pending.clear();
                }
            }
            return;
        }

        // µTESLA checks: interval index, disclosed-key validity,
        // authentication of the buffered previous beacon. Beacons from a
        // *new* sender are validated against a candidate verifier that is
        // only committed on success — an invalid beacon must never evict
        // the current reference state.
        let on_current_ref = self.ref_src == Some(src);
        let released = if let Some(verifier) = self.verifier.as_mut().filter(|_| on_current_ref) {
            match verifier.observe(&body.auth_bytes(), &auth, c_now) {
                Ok(released) => released,
                Err(_) => {
                    self.stats.mutesla_rejections += 1;
                    telemetry::count!("sstsp.reject.mutesla");
                    self.rejections_this_bp += 1;
                    return;
                }
            }
        } else {
            let Some(anchor) = ctx.anchors.get(src) else {
                // No authenticated anchor for this sender: an external
                // attacker, whose beacons cannot be authenticated at all.
                self.stats.unknown_anchor += 1;
                telemetry::count!("sstsp.reject.unknown_anchor");
                return;
            };
            // Reuse the retired verifier for this source when one is
            // cached: its authenticated element turns the disclosed-key
            // walk from O(j) anchor hashes into O(Δj). Pending is always
            // clear (enforced on stash), so its accept/reject decisions
            // coincide with a fresh verifier's.
            let mut candidate = match self.verifier_cache.iter().position(|(s, _)| *s == src) {
                Some(i) => self.verifier_cache.remove(i).1,
                None => MuTeslaVerifier::new(anchor, Self::schedule(ctx)),
            };
            debug_assert!(!candidate.has_pending());
            match candidate.observe(&body.auth_bytes(), &auth, c_now) {
                Ok(released) => {
                    // Valid beacon from a new reference: adopt it. If we
                    // held the role ourselves, someone displaced us (we can
                    // only hear them if our own beacon did not go out).
                    // Domain-mode exception: a reference adopting a lower
                    // root relayed by a gateway *subordinates* — it keeps
                    // the reference role and its beacon slot for its own
                    // domain while its clock (and the root it propagates)
                    // descend from the gateway upstream. Each domain thus
                    // keeps a distinct elected reference even after the
                    // roots merge.
                    self.stash_verifier();
                    let subordinates = takeover
                        && self.is_reference
                        && self.domain_mode(ctx.config)
                        && self
                            .mesh_role
                            .as_ref()
                            .is_some_and(|r| !r.is_bridge() && r.is_bridge_node(src));
                    if subordinates {
                        self.sub_missed = 0;
                        telemetry::count!("sstsp.subordinate");
                    } else {
                        self.is_reference = false;
                    }
                    self.ref_src = Some(src);
                    self.domain_root = Some(body.root);
                    self.my_hop = body.hop.saturating_add(1);
                    self.verifier = Some(candidate);
                    self.samples.clear();
                    self.pending.clear();
                    if takeover {
                        // Joining a different timing domain is a
                        // *resynchronization*: step the adjusted clock onto
                        // the new domain immediately (so our relays carry
                        // correct time and the merge wave propagates one
                        // hop per BP) and re-lock the guard only once the
                        // fine discipline has re-converged. The paper's
                        // no-discontinuity guarantee applies within a
                        // synchronized domain; a domain merge is the same
                        // event as joining a network.
                        self.adjusted.step_to(rx.local_rx_us, ts_ref);
                        self.stats.clock_steps += 1;
                        telemetry::count!("sstsp.clock_step");
                        self.guard_locked = false;
                    }
                    released
                }
                Err(_) => {
                    // `observe` leaves the verifier untouched on rejection;
                    // keep it cached so the next beacon from this source
                    // still gets the cheap validation path.
                    self.cache_verifier(src, candidate);
                    self.stats.mutesla_rejections += 1;
                    telemetry::count!("sstsp.reject.mutesla");
                    self.rejections_this_bp += 1;
                    return;
                }
            }
        };

        // The beacon passed every check: it is evidence of a live
        // reference.
        self.stats.accepted += 1;
        telemetry::count!("sstsp.accept");
        self.saw_beacon = true;
        self.missed_bps = 0;
        self.sub_missed = 0;
        self.upstream_rejects = 0;
        if !self.is_reference {
            self.domain_root = Some(body.root);
            self.my_hop = body.hop.saturating_add(1);
        } else if self.is_subordinate(ctx.id) && self.ref_src == Some(src) {
            // Upstream root changes propagate through subordinates: if the
            // far side of the mesh re-merged under a different lowest id,
            // the gateway's next relay re-roots this domain too.
            self.domain_root = Some(body.root);
            self.my_hop = body.hop.saturating_add(1);
        }
        if !self.guard_locked && diff <= ctx.config.guard_fine_us / 2.0 {
            self.guard_locked = true;
        }

        // Promote the observation whose interval just got authenticated.
        if let Some(ab) = released {
            if let Some(pos) = self.pending.iter().position(|p| p.interval == ab.interval) {
                let obs = self.pending.remove(pos).expect("position valid");
                if self.samples.len() == 2 {
                    self.samples.pop_front();
                }
                self.samples.push_back(SyncSample {
                    local_us: obs.local_rx_us,
                    ref_us: obs.ts_ref_us,
                });
            }
        }

        // Buffer the current beacon's observation until its key discloses.
        if self.pending.len() >= 4 {
            self.pending.pop_front();
        }
        self.pending.push_back(PendingObs {
            interval: auth.interval,
            local_rx_us: rx.local_rx_us,
            ts_ref_us: ts_ref,
        });

        // Clock adjustment at reception of beacon j, using authenticated
        // beacons (j-1) and (j-2): equations (2)-(5).
        if self.samples.len() == 2 {
            let prev = self.samples[1];
            let prev2 = self.samples[0];
            let target =
                (auth.interval as f64 + ctx.config.m as f64) * ctx.config.bp_us + ctx.config.t_p_us;
            if self
                .adjusted
                .retarget(rx.local_rx_us, prev, prev2, target)
                .is_ok()
            {
                self.stats.retargets += 1;
                telemetry::count!("sstsp.retarget");
            }
        }
    }

    /// The recovery extension (paper future work): slide the rejection
    /// window; when the rejected-beacon count crosses the policy threshold,
    /// raise an alert and optionally restart synchronization from the
    /// coarse phase. The window is cleared on trigger so one burst raises
    /// one alert.
    fn run_recovery_detection(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(policy) = ctx.config.recovery else {
            return;
        };
        self.rejection_window.push_back(self.rejections_this_bp);
        while self.rejection_window.len() > policy.window_bps as usize {
            self.rejection_window.pop_front();
        }
        let total: u32 = self.rejection_window.iter().sum();
        if total >= policy.rejection_threshold {
            self.stats.alerts += 1;
            telemetry::count!("sstsp.alert");
            self.rejection_window.clear();
            if policy.restart {
                self.stats.recovery_restarts += 1;
                telemetry::count!("sstsp.recovery_restart");
                self.step_down();
                self.synchronized = false;
                self.guard_locked = false;
                self.phase = Phase::Coarse {
                    offsets: Vec::new(),
                    bps_left: ctx.config.coarse_scan_bps,
                };
            }
        }
    }

    fn finish_coarse(&mut self, ctx: &mut NodeCtx<'_>, offsets: &[f64]) -> bool {
        let filter = sync_analysis::ThresholdFilter::new(ctx.config.guard_coarse_us);
        match filter.filtered_mean(offsets) {
            Some(mean) => {
                let now = self.adjusted.value(ctx.local_us);
                self.adjusted.step_to(ctx.local_us, now + mean);
                self.stats.clock_steps += 1;
                telemetry::count!("sstsp.clock_step");
                self.synchronized = true;
                self.phase = Phase::Fine;
                self.missed_bps = 0;
                self.eligible_bps = 0;
                self.stats.coarse_syncs += 1;
                telemetry::count!("sstsp.coarse_sync");
                true
            }
            None => false,
        }
    }
}

impl SyncProtocol for SstspNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        // Node initiation (Sec. 3.3): pick a random seed and publish the
        // authenticated anchor. The chain walk itself is deferred — the
        // registry materializes the anchor on first lookup, and the signer
        // is built on first signing duty — which is observationally
        // identical (the walk is a pure function of the seed) but skips
        // the dominant O(n·N) setup cost for stations that never transmit.
        self.ensure_seed(ctx);
    }

    fn chain_seed(&self) -> Option<ChainElement> {
        self.signer.as_ref().map(|s| s.seed()).or(self.chain_seed)
    }

    fn set_mesh_role(&mut self, role: MeshRole) {
        self.mesh_role = Some(role);
    }

    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.present {
            return BeaconIntent::Silent;
        }
        match self.phase {
            Phase::Coarse { .. } => BeaconIntent::Silent,
            Phase::Fine => {
                if self.is_reference {
                    BeaconIntent::FixedSlot(self.reference_slot(ctx.config))
                } else if ctx.config.multihop_relay
                    && self.synchronized
                    && self.ref_src.is_some()
                    && self.my_hop != u32::MAX
                    && self.missed_bps <= ctx.config.l
                {
                    if let Some(role) = self
                        .mesh_role
                        .as_ref()
                        .filter(|_| ctx.config.domain_election)
                    {
                        // Domain mode is fully deterministic: a gateway
                        // relays at its reserved slot (staggered past every
                        // reference slot) and an ordinary member never
                        // relays — its domain's own reference covers the
                        // whole clique. No randomness is drawn here.
                        if role.is_bridge() {
                            BeaconIntent::RelayAfterRx(Self::bridge_relay_slot(role, ctx.config))
                        } else {
                            BeaconIntent::Silent
                        }
                    } else {
                        // Multi-hop extension: forward the timing wave at a
                        // slot staggered by hop distance, so hop h's relays
                        // do not overlap hop h-1's transmission. Three waves
                        // fit the window; deeper hops pipeline (they forward
                        // their own disciplined clock, so one-BP-old
                        // discipline is fine). Participation is
                        // probabilistic and density-adaptive: two same-wave
                        // relays sharing a receiver would otherwise collide
                        // *deterministically* every BP and partition the
                        // network into permanent timing domains, and dense
                        // neighborhoods need fewer active relays.
                        let p = (3.0 / self.last_rx_secured.max(1) as f64).clamp(0.3, 1.0);
                        if ctx.rng.random_bool(p) {
                            let gap = ctx.config.beacon_airtime_slots + 1;
                            let wave = 1 + ((self.my_hop.max(1) - 1) % 3);
                            BeaconIntent::RelayAfterRx(wave * gap)
                        } else {
                            BeaconIntent::Silent
                        }
                    }
                } else if self.synchronized
                    && self.election_counter(ctx.config) > self.election_threshold(ctx.config)
                {
                    match self
                        .mesh_role
                        .as_ref()
                        .filter(|_| ctx.config.domain_election)
                    {
                        // Gateways couple domains; they never run for a
                        // domain's reference role.
                        Some(role) if role.is_bridge() => BeaconIntent::Silent,
                        // Domain-mode candidacy is deterministic (see
                        // [`Self::candidate_slot`]): random contention
                        // slots could land *before* the sitting
                        // reference's fixed slot, cancel its beacon every
                        // BP and starve it into step-down — a permanent
                        // election thrash.
                        Some(role) => {
                            BeaconIntent::FixedSlot(Self::candidate_slot(role, ctx.id, ctx.config))
                        }
                        None => {
                            // Election-eligible: contend with ramping
                            // probability (see ProtocolConfig::contend_prob
                            // for why not always).
                            let ramp = (self.eligible_bps / 10).min(6);
                            let p = (ctx.config.contend_prob * f64::from(1u32 << ramp)).min(1.0);
                            if p >= 1.0 || ctx.rng.random_bool(p) {
                                BeaconIntent::Contend
                            } else {
                                BeaconIntent::Silent
                            }
                        }
                    }
                } else {
                    BeaconIntent::Silent
                }
            }
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        let relaying = ctx.config.multihop_relay
            && !self.is_reference
            && self.ref_src.is_some()
            && self.missed_bps <= ctx.config.l;
        if !self.is_reference && !relaying {
            // Winning the contention window makes this node the reference.
            self.become_reference(ctx);
        }
        if relaying {
            self.ensure_chain(ctx);
        }
        self.seq = self.seq.wrapping_add(1);
        let c = self.adjusted.value(ctx.local_us);
        let j = self.interval_for(ctx, ctx.local_us);
        let body = BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: c.max(0.0) as u64,
            root: self.domain_root.unwrap_or(ctx.id),
            hop: if self.is_reference && !self.is_subordinate(ctx.id) {
                0
            } else {
                // Subordinate references advertise their true distance from
                // the foreign root, so downstream gateways keep merging
                // toward it instead of treating this domain as a new root.
                self.my_hop.saturating_add(0)
            },
        };
        let signer = self.signer.as_mut().expect("reference owns a signer");
        let auth = signer.sign(&body.auth_bytes(), j);
        BeaconPayload::Secured(body, auth)
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, collided: bool) {
        if collided {
            self.tx_collided = true;
        } else {
            self.tx_clean = true;
        }
    }

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        match &mut self.phase {
            Phase::Coarse { offsets, .. } => {
                // Promiscuous scan: collect offsets from any beacon; the
                // threshold filter deals with liars at phase end.
                let ts_ref = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
                let offset = ts_ref - self.adjusted.value(rx.local_rx_us);
                offsets.push(offset);
            }
            Phase::Fine => {
                if rx.payload.is_secured() {
                    self.on_secured_beacon(ctx, &rx);
                }
                // Unsecured beacons are ignored in the fine phase: they
                // carry no authenticity and SSTSP never trusts them.
            }
        }
    }

    fn on_bp_end(&mut self, ctx: &mut NodeCtx<'_>) {
        match &mut self.phase {
            Phase::Coarse { offsets, bps_left } => {
                *bps_left = bps_left.saturating_sub(1);
                if *bps_left == 0 {
                    let collected = std::mem::take(offsets);
                    if !self.finish_coarse(ctx, &collected) {
                        // Nothing heard: keep scanning another round.
                        self.phase = Phase::Coarse {
                            offsets: Vec::new(),
                            bps_left: ctx.config.coarse_scan_bps,
                        };
                    }
                }
            }
            Phase::Fine => {
                let heard_reference = self.saw_beacon || (self.is_reference && self.tx_clean);
                if heard_reference {
                    self.missed_bps = 0;
                    self.eligible_bps = 0;
                } else {
                    self.missed_bps = self.missed_bps.saturating_add(1);
                }
                if self.domain_heard || (self.is_reference && self.tx_clean) {
                    self.domain_silent_bps = 0;
                } else {
                    self.domain_silent_bps = self.domain_silent_bps.saturating_add(1);
                }
                if self.election_counter(ctx.config) > self.election_threshold(ctx.config) {
                    self.eligible_bps = self.eligible_bps.saturating_add(1);
                } else {
                    self.eligible_bps = 0;
                }
                // Multi-hop coarse fallback: beacons keep arriving and we
                // reject them all — our clock is beyond even the loose
                // checks (µTESLA interval mismatch). Re-acquire loose
                // synchronization from scratch, exactly what the paper's
                // coarse phase exists for.
                if ctx.config.multihop_relay {
                    if self.rejections_this_bp > 0 && !self.saw_beacon {
                        self.desync_bps = self.desync_bps.saturating_add(1);
                        if self.desync_bps > 30 {
                            self.desync_bps = 0;
                            self.stats.recovery_restarts += 1;
                            telemetry::count!("sstsp.recovery_restart");
                            self.step_down();
                            self.synchronized = false;
                            self.guard_locked = false;
                            self.phase = Phase::Coarse {
                                offsets: Vec::new(),
                                bps_left: ctx.config.coarse_scan_bps,
                            };
                        }
                    } else if self.saw_beacon {
                        self.desync_bps = 0;
                    }
                }
                if self.missed_bps > ctx.config.l && self.is_reference {
                    // Our beacons keep colliding: someone else occupies
                    // slot 0. Relinquish and re-contend.
                    self.step_down();
                }
                if self.is_subordinate(ctx.id) {
                    // Subordinate upkeep: the gateway upstream must keep
                    // proving the foreign root is alive. Past the election
                    // threshold of upstream silence this reference reverts
                    // to sovereign rule of its own domain (same patience as
                    // an election, so transient gateway loss never forks
                    // the time base).
                    if self.saw_beacon {
                        self.sub_missed = 0;
                    } else {
                        self.sub_missed = self.sub_missed.saturating_add(1);
                        if self.sub_missed > self.election_threshold(ctx.config) {
                            self.stash_verifier();
                            self.ref_src = Some(ctx.id);
                            self.domain_root = Some(ctx.id);
                            self.my_hop = 0;
                            self.sub_missed = 0;
                            self.samples.clear();
                            self.pending.clear();
                            telemetry::count!("sstsp.sovereign_revert");
                        }
                    }
                }
                self.run_recovery_detection(ctx);
            }
        }
        self.saw_beacon = false;
        self.tx_clean = false;
        self.tx_collided = false;
        self.domain_heard = false;
        self.last_rx_secured = self.rx_secured_this_bp;
        self.rx_secured_this_bp = 0;
        self.rejections_this_bp = 0;
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.adjusted.value(local_us)
    }

    fn on_join(&mut self, ctx: &mut NodeCtx<'_>) {
        self.stash_verifier();
        self.present = true;
        self.synchronized = false;
        self.is_reference = false;
        self.ref_src = None;
        self.samples.clear();
        self.pending.clear();
        self.guard_locked = false;
        self.missed_bps = 0;
        self.eligible_bps = 0;
        self.phase = Phase::Coarse {
            offsets: Vec::new(),
            bps_left: ctx.config.coarse_scan_bps,
        };
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
        self.is_reference = false;
    }

    fn is_reference(&self) -> bool {
        self.is_reference
    }

    fn is_synchronized(&self) -> bool {
        self.synchronized
    }

    fn name(&self) -> &'static str {
        "SSTSP"
    }

    fn sstsp_stats(&self) -> Option<SstspStats> {
        let mut s = self.stats;
        s.guard_locked = self.guard_locked;
        Some(s)
    }

    fn current_reference(&self) -> Option<NodeId> {
        self.ref_src
    }

    fn hot_state(&self, config: &ProtocolConfig) -> HotState {
        // Mirror of `intent()`, restricted to the branches that neither
        // consume randomness nor read the clock. The two probabilistic
        // branches (multi-hop relay participation, election contention)
        // return `None` so the engine makes the real call and the RNG
        // stream advances exactly as it always did.
        let static_intent = if !self.present {
            Some(BeaconIntent::Silent)
        } else {
            match self.phase {
                Phase::Coarse { .. } => Some(BeaconIntent::Silent),
                Phase::Fine => {
                    let relay_participant = config.multihop_relay
                        && self.synchronized
                        && self.ref_src.is_some()
                        && self.my_hop != u32::MAX
                        && self.missed_bps <= config.l;
                    let election_contender = self.synchronized
                        && self.election_counter(config) > self.election_threshold(config);
                    let domain_role = self.mesh_role.as_ref().filter(|_| config.domain_election);
                    if self.is_reference {
                        Some(BeaconIntent::FixedSlot(self.reference_slot(config)))
                    } else if relay_participant {
                        // Domain-mode relays are deterministic (see
                        // `intent`): mirror them exactly. Outside domain
                        // mode participation is probabilistic — defer.
                        domain_role.map(|role| {
                            if role.is_bridge() {
                                BeaconIntent::RelayAfterRx(Self::bridge_relay_slot(role, config))
                            } else {
                                BeaconIntent::Silent
                            }
                        })
                    } else if election_contender {
                        // Domain-mode gateways never contend. Domain
                        // candidacy is deterministic but needs the station
                        // id (not known here), and single-hop contention
                        // draws randomness — defer both to the real
                        // `intent()` call. The mesh fast path takes this
                        // `None` fallback for non-bridge contenders; the
                        // deferred call is deterministic (candidate slot
                        // from role + id), so bit-identity still holds.
                        match domain_role {
                            Some(role) if role.is_bridge() => Some(BeaconIntent::Silent),
                            _ => None,
                        }
                    } else {
                        Some(BeaconIntent::Silent)
                    }
                }
            }
        };
        HotState {
            affine_clock: Some((self.adjusted.k(), self.adjusted.b())),
            synchronized: self.synchronized,
            is_reference: self.is_reference,
            current_reference: self.ref_src,
            static_intent,
        }
    }
}

impl HasAdjustedClock for SstspNode {
    fn adjusted_clock(&self) -> &AdjustedClock {
        &self.adjusted
    }
}

#[cfg(test)]
mod tests;
