//! Unit tests for the SSTSP node: a two-node micro-harness drives a
//! reference and a member through beacon periods without the full network
//! engine (integration tests at workspace level cover the full system).

use super::*;
use crate::api::{AnchorRegistry, ProtocolConfig};
use clocks::Oscillator;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use simcore::{SimDuration, SimTime};

const BP: f64 = 100_000.0;

fn bp_time(k: f64) -> SimTime {
    SimTime::from_secs_f64(k * BP / 1e6)
}

/// Two-node fixture: node 0 is the reference candidate, node 1 a member.
struct Duo {
    config: ProtocolConfig,
    anchors: AnchorRegistry,
    rngs: [ChaCha12Rng; 2],
    oscs: [Oscillator; 2],
    nodes: [SstspNode; 2],
}

impl Duo {
    fn new(config: ProtocolConfig, member_rate: f64, member_phase: f64) -> Self {
        Duo {
            // Deterministic elections in unit tests.
            config: config.with_contend_prob(1.0),
            anchors: AnchorRegistry::new(),
            rngs: [
                ChaCha12Rng::seed_from_u64(11),
                ChaCha12Rng::seed_from_u64(22),
            ],
            oscs: [
                Oscillator::perfect(),
                Oscillator::new(member_rate, member_phase),
            ],
            nodes: [SstspNode::founding(), SstspNode::founding()],
        }
    }

    /// Borrow-splitting helper: run `f` with node `who` and a context at
    /// real time `real`.
    fn with_ctx<R>(
        &mut self,
        who: usize,
        real: SimTime,
        f: impl FnOnce(&mut SstspNode, &mut NodeCtx<'_>) -> R,
    ) -> R {
        let Duo {
            config,
            anchors,
            rngs,
            oscs,
            nodes,
        } = self;
        let mut ctx = NodeCtx {
            id: who as NodeId,
            local_us: oscs[who].local_us(real),
            rng: &mut rngs[who],
            anchors,
            config,
        };
        f(&mut nodes[who], &mut ctx)
    }

    fn local(&self, who: usize, real: SimTime) -> f64 {
        self.oscs[who].local_us(real)
    }

    /// Run one BP: the reference (node 0) transmits at the window start,
    /// node 1 receives `t_p` later. Returns the member's clock error
    /// against the reference clock at the reception instant.
    fn run_bp(&mut self, k: u64) -> f64 {
        let t_tx = bp_time(k as f64);
        let t_p = self.config.t_p_us;
        let t_rx = t_tx + SimDuration::from_us_f64(t_p);

        let beacon = self.with_ctx(0, t_tx, |n, ctx| n.make_beacon(ctx));
        self.with_ctx(0, t_tx, |n, ctx| n.on_tx_outcome(ctx, false));

        let local_rx = self.local(1, t_rx);
        self.with_ctx(1, t_rx, |n, ctx| {
            n.on_beacon(
                ctx,
                ReceivedBeacon {
                    payload: beacon,
                    local_rx_us: local_rx,
                },
            )
        });

        for who in 0..2 {
            self.with_ctx(who, t_rx, |n, ctx| n.on_bp_end(ctx));
        }

        let ref_clock = self.nodes[0].clock_us(self.local(0, t_rx));
        let member_clock = self.nodes[1].clock_us(self.local(1, t_rx));
        (member_clock - ref_clock).abs()
    }

    /// Make node 0 reference by letting it win an election at BP 1.
    /// (Founding nodes become election-eligible after l+1 beaconless BPs.)
    fn elect_node0(&mut self) {
        for _ in 0..=self.config.l {
            self.with_ctx(0, bp_time(0.5), |n, ctx| n.on_bp_end(ctx));
        }
        let t = bp_time(1.0);
        let intent = self.with_ctx(0, t, |n, ctx| n.intent(ctx));
        assert_eq!(intent, BeaconIntent::Contend);
        self.with_ctx(0, t, |n, ctx| {
            let _ = n.make_beacon(ctx);
        });
        assert!(self.nodes[0].is_reference());
    }
}

#[test]
fn founding_node_contends_after_l_missed_bps() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    // Not yet eligible: no beacons missed beyond l.
    let intent = duo.with_ctx(0, bp_time(1.0), |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::Silent);
    for _ in 0..=duo.config.l {
        duo.with_ctx(0, bp_time(1.0), |n, ctx| n.on_bp_end(ctx));
    }
    let intent = duo.with_ctx(0, bp_time(1.0), |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::Contend);
}

#[test]
fn winning_contention_creates_reference_and_publishes_anchor() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    duo.elect_node0();
    assert!(duo.anchors.get(0).is_some(), "anchor published");
    assert_eq!(duo.nodes[0].stats.elections_won, 1);
    // A reference beacons at slot 0 without random delay.
    let intent = duo.with_ctx(0, bp_time(2.0), |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::FixedSlot(0));
}

#[test]
fn member_converges_to_reference() {
    // Member drifts at +100 ppm with a 40 µs initial offset.
    let mut duo = Duo::new(ProtocolConfig::paper().with_m(4), 1.0001, 40.0);
    duo.elect_node0();
    let mut last_err = f64::MAX;
    for k in 2..40 {
        last_err = duo.run_bp(k);
    }
    assert!(
        last_err < 3.0,
        "member should converge to within a few µs, got {last_err}"
    );
    assert!(duo.nodes[1].stats.retargets > 20);
    assert_eq!(duo.nodes[1].stats.guard_rejections, 0);
    assert_eq!(duo.nodes[1].stats.mutesla_rejections, 0);
}

#[test]
fn convergence_works_for_all_m() {
    for m in 1..=5u32 {
        let mut duo = Duo::new(ProtocolConfig::paper().with_m(m), 0.9999, -40.0);
        duo.elect_node0();
        let mut last_err = f64::MAX;
        for k in 2..60 {
            last_err = duo.run_bp(k);
        }
        assert!(last_err < 3.0, "m={m}: residual error {last_err} µs");
    }
}

#[test]
fn member_identifies_its_reference() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.00005, 10.0);
    duo.elect_node0();
    duo.run_bp(2);
    assert_eq!(duo.nodes[1].reference(), Some(0));
    assert!(duo.nodes[1].is_synchronized());
}

#[test]
fn guard_time_rejects_wild_timestamps() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    duo.elect_node0();
    duo.run_bp(2);

    // Hand-craft a beacon from node 0's chain with a timestamp 1 ms off.
    let t = bp_time(3.0);
    let payload = duo.with_ctx(0, t, |n, ctx| n.make_beacon(ctx));
    let BeaconPayload::Secured(mut body, _) = payload else {
        panic!("reference emits secured beacons");
    };
    body.timestamp_us += 1_000; // way past δ = 50 µs
    let auth = {
        let signer = duo.nodes[0].signer.as_mut().unwrap();
        signer.sign(&body.auth_bytes(), 3)
    };

    let before = duo.nodes[1].stats.guard_rejections;
    let t_rx = t + SimDuration::from_us_f64(duo.config.t_p_us);
    let local_rx = duo.local(1, t_rx);
    duo.with_ctx(1, t_rx, |n, ctx| {
        n.on_beacon(
            ctx,
            ReceivedBeacon {
                payload: BeaconPayload::Secured(body, auth),
                local_rx_us: local_rx,
            },
        )
    });
    assert_eq!(duo.nodes[1].stats.guard_rejections, before + 1);
}

#[test]
fn replayed_beacon_rejected() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    duo.elect_node0();
    duo.run_bp(2);

    // Capture beacon 3 and replay it during BP 5.
    let t3 = bp_time(3.0);
    let beacon3 = duo.with_ctx(0, t3, |n, ctx| n.make_beacon(ctx));
    let t_rx3 = t3 + SimDuration::from_us_f64(duo.config.t_p_us);
    let lr3 = duo.local(1, t_rx3);
    duo.with_ctx(1, t_rx3, |n, ctx| {
        n.on_beacon(
            ctx,
            ReceivedBeacon {
                payload: beacon3,
                local_rx_us: lr3,
            },
        )
    });

    let before = duo.nodes[1].stats.mutesla_rejections + duo.nodes[1].stats.guard_rejections;
    let t5 = bp_time(5.0);
    let lr5 = duo.local(1, t5);
    duo.with_ctx(1, t5, |n, ctx| {
        n.on_beacon(
            ctx,
            ReceivedBeacon {
                payload: beacon3,
                local_rx_us: lr5,
            },
        )
    });
    // The replayed timestamp is ~0.2 s behind the receiver's clock: with
    // the paper's tight δ the guard fires first; with a loose δ the µTESLA
    // interval check fires. Either way it must be rejected.
    let after = duo.nodes[1].stats.mutesla_rejections + duo.nodes[1].stats.guard_rejections;
    assert!(after > before, "replay must be rejected");
}

#[test]
fn beacons_without_published_anchor_ignored() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    // Node 1 receives a "secured" beacon from unknown node 77.
    let body = BeaconBody {
        src: 77,
        seq: 1,
        timestamp_us: 100_000,
        root: 77,
        hop: 0,
    };
    let auth = sstsp_crypto::BeaconAuth {
        interval: 1,
        mac: [0; 16],
        disclosed: [0; 16],
    };
    let t = bp_time(1.0);
    let lr = duo.local(1, t);
    duo.with_ctx(1, t, |n, ctx| {
        n.on_beacon(
            ctx,
            ReceivedBeacon {
                payload: BeaconPayload::Secured(body, auth),
                local_rx_us: lr,
            },
        )
    });
    assert_eq!(duo.nodes[1].stats.unknown_anchor, 1);
    assert_eq!(duo.nodes[1].reference(), None);
}

#[test]
fn plain_beacons_ignored_in_fine_phase() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    let body = BeaconBody {
        src: 5,
        seq: 1,
        timestamp_us: 999_999_999,
        root: 5,
        hop: 0,
    };
    let t = bp_time(1.0);
    let lr = duo.local(1, t);
    let clock_before = duo.nodes[1].clock_us(lr);
    duo.with_ctx(1, t, |n, ctx| {
        n.on_beacon(
            ctx,
            ReceivedBeacon {
                payload: BeaconPayload::Plain(body),
                local_rx_us: lr,
            },
        )
    });
    assert_eq!(duo.nodes[1].clock_us(lr), clock_before);
}

#[test]
fn missing_reference_triggers_contention_after_l() {
    let cfg = ProtocolConfig::paper(); // l = 1
    let mut duo = Duo::new(cfg, 1.0, 0.0);
    duo.elect_node0();
    duo.run_bp(2);
    duo.run_bp(3);

    // Reference goes silent: member sees nothing for l+1 = 2 BPs.
    for k in 4..6u64 {
        duo.with_ctx(1, bp_time(k as f64), |n, ctx| n.on_bp_end(ctx));
    }
    let intent = duo.with_ctx(1, bp_time(6.0), |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::Contend);
}

#[test]
fn reference_steps_down_after_persistent_collisions() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    duo.elect_node0();
    // Its beacons collide for l+1 consecutive BPs (attacker at slot 0).
    for k in 2..4u64 {
        let t = bp_time(k as f64);
        duo.with_ctx(0, t, |n, ctx| n.on_tx_outcome(ctx, true));
        duo.with_ctx(0, t, |n, ctx| n.on_bp_end(ctx));
    }
    assert!(!duo.nodes[0].is_reference(), "stepped down");
    let intent = duo.with_ctx(0, bp_time(4.0), |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::Contend);
}

#[test]
fn joining_node_runs_coarse_phase() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, -3_000.0);
    duo.elect_node0();
    // Member rejoins with a large offset: coarse phase.
    let t = bp_time(2.0);
    duo.with_ctx(1, t, |n, ctx| n.on_join(ctx));
    assert!(!duo.nodes[1].is_synchronized());
    let intent = duo.with_ctx(1, t, |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::Silent);

    // Scan coarse_scan_bps BPs of reference beacons.
    let scan = duo.config.coarse_scan_bps as u64;
    for k in 2..(2 + scan) {
        duo.run_bp(k);
    }
    assert!(duo.nodes[1].is_synchronized(), "coarse sync completed");
    assert_eq!(duo.nodes[1].stats.coarse_syncs, 1);
    // The 3 ms offset is gone; remaining error within the coarse filter's
    // tolerance.
    let t = bp_time((2 + scan) as f64);
    let err =
        (duo.nodes[1].clock_us(duo.local(1, t)) - duo.nodes[0].clock_us(duo.local(0, t))).abs();
    assert!(err < 50.0, "post-coarse error {err} µs");
}

#[test]
fn coarse_phase_filters_attacker_offsets() {
    let cfg = ProtocolConfig::paper();
    let mut duo = Duo::new(cfg, 1.0, 0.0);
    duo.with_ctx(1, bp_time(1.0), |n, ctx| n.on_join(ctx));

    // 4 honest beacons (offset ≈ +10 µs each) + 1 attacker beacon claiming
    // a timestamp 80 ms in the future.
    for k in 1..=4u64 {
        let t = bp_time(k as f64);
        let lr = duo.local(1, t);
        let t_p = duo.config.t_p_us;
        let body = BeaconBody {
            src: 3,
            seq: k as u32,
            timestamp_us: (lr + 10.0 - t_p) as u64,
            root: 3,
            hop: 0,
        };
        duo.with_ctx(1, t, |n, ctx| {
            n.on_beacon(
                ctx,
                ReceivedBeacon {
                    payload: BeaconPayload::Plain(body),
                    local_rx_us: lr,
                },
            );
            n.on_bp_end(ctx);
        });
    }
    let t = bp_time(5.0);
    let lr = duo.local(1, t);
    let evil = BeaconBody {
        src: 66,
        seq: 1,
        timestamp_us: (lr + 80_000.0) as u64,
        root: 66,
        hop: 0,
    };
    duo.with_ctx(1, t, |n, ctx| {
        n.on_beacon(
            ctx,
            ReceivedBeacon {
                payload: BeaconPayload::Plain(evil),
                local_rx_us: lr,
            },
        );
        n.on_bp_end(ctx);
    });

    assert!(duo.nodes[1].is_synchronized());
    // Clock stepped by ≈ +10 µs, not dragged toward +80 ms.
    let err = duo.nodes[1].clock_us(lr) - lr;
    assert!((err - 10.0).abs() < 15.0, "coarse step was {err} µs");
}

#[test]
fn leave_clears_reference_role() {
    let mut duo = Duo::new(ProtocolConfig::paper(), 1.0, 0.0);
    duo.elect_node0();
    duo.with_ctx(0, bp_time(2.0), |n, ctx| n.on_leave(ctx));
    assert!(!duo.nodes[0].is_reference());
    let intent = duo.with_ctx(0, bp_time(2.0), |n, ctx| n.intent(ctx));
    assert_eq!(intent, BeaconIntent::Silent);
}

#[test]
fn adjusted_clock_never_jumps() {
    // Sample the member's clock at every BP boundary through convergence;
    // consecutive readings must be strictly increasing and close to 1 BP
    // apart (no discontinuous leaps — the paper's headline property).
    let mut duo = Duo::new(ProtocolConfig::paper().with_m(3), 1.0001, 90.0);
    duo.elect_node0();
    let mut prev_clock = f64::MIN;
    for k in 2..50u64 {
        duo.run_bp(k);
        let c = duo.nodes[1].clock_us(duo.local(1, bp_time(k as f64)));
        assert!(c > prev_clock, "clock leapt backwards at BP {k}");
        if prev_clock > f64::MIN {
            let delta = c - prev_clock;
            assert!(
                (delta - BP).abs() < 300.0,
                "clock advanced by {delta} µs over one BP at k={k}"
            );
        }
        prev_clock = c;
    }
}

#[test]
fn stats_default_is_zeroed() {
    let s = SstspStats::default();
    assert_eq!(s.guard_rejections, 0);
    assert_eq!(s.retargets, 0);
    assert_eq!(s.elections_won, 0);
}

mod recovery {
    use super::*;
    use crate::api::RecoveryPolicy;

    fn duo_with_recovery(restart: bool) -> Duo {
        let cfg = ProtocolConfig::paper().with_recovery(RecoveryPolicy {
            rejection_threshold: 3,
            window_bps: 10,
            restart,
        });
        Duo::new(cfg, 1.0, 0.0)
    }

    /// Feed the member guard-violating beacons; the alert must fire once
    /// the window accumulates the threshold.
    fn inject_bad_beacons(duo: &mut Duo, count: usize) {
        duo.elect_node0();
        duo.run_bp(2); // lock the guard with one good beacon
        for i in 0..count {
            let k = 3 + i as u64;
            let t = bp_time(k as f64);
            let payload = duo.with_ctx(0, t, |n, ctx| n.make_beacon(ctx));
            let BeaconPayload::Secured(mut body, _) = payload else {
                unreachable!()
            };
            body.timestamp_us += 10_000; // far outside δ
            let auth = {
                let signer = duo.nodes[0].signer.as_mut().unwrap();
                signer.sign(&body.auth_bytes(), k as usize)
            };
            let t_rx = t + SimDuration::from_us_f64(duo.config.t_p_us);
            let lr = duo.local(1, t_rx);
            duo.with_ctx(1, t_rx, |n, ctx| {
                n.on_beacon(
                    ctx,
                    ReceivedBeacon {
                        payload: BeaconPayload::Secured(body, auth),
                        local_rx_us: lr,
                    },
                );
                n.on_bp_end(ctx);
            });
        }
    }

    #[test]
    fn alert_fires_at_threshold() {
        let mut duo = duo_with_recovery(false);
        inject_bad_beacons(&mut duo, 2);
        assert_eq!(duo.nodes[1].stats.alerts, 0, "below threshold");
        inject_bad_beacons(&mut duo, 0); // no-op; keep state
        let mut duo = duo_with_recovery(false);
        inject_bad_beacons(&mut duo, 3);
        assert_eq!(duo.nodes[1].stats.alerts, 1, "threshold crossed");
        assert_eq!(duo.nodes[1].stats.recovery_restarts, 0);
        assert!(
            duo.nodes[1].is_synchronized(),
            "alert-only policy keeps running"
        );
    }

    #[test]
    fn restart_policy_reenters_coarse_phase() {
        let mut duo = duo_with_recovery(true);
        inject_bad_beacons(&mut duo, 3);
        assert_eq!(duo.nodes[1].stats.alerts, 1);
        assert_eq!(duo.nodes[1].stats.recovery_restarts, 1);
        assert!(
            !duo.nodes[1].is_synchronized(),
            "restart policy re-enters the coarse phase"
        );
    }

    #[test]
    fn calm_network_never_alerts() {
        let mut duo = duo_with_recovery(false);
        duo.elect_node0();
        for k in 2..60u64 {
            duo.run_bp(k);
        }
        assert_eq!(duo.nodes[1].stats.alerts, 0);
    }

    #[test]
    fn one_burst_one_alert() {
        let mut duo = duo_with_recovery(false);
        inject_bad_beacons(&mut duo, 6);
        // 6 rejected beacons, threshold 3: window cleared at trigger, so
        // exactly two alerts (3 + 3), not four overlapping ones.
        assert_eq!(duo.nodes[1].stats.alerts, 2);
    }
}

/// Property tests for the guard-time locking state machine: the coarse →
/// fine transition, lock stability under clean traffic, and the reset on
/// rejoin. The paper distinguishes exactly these two guard regimes; this
/// machine deciding *which* δ applies is what the guard-influence theorem
/// leans on, so its transitions are pinned as properties over arbitrary
/// member oscillators.
mod guard_lock_props {
    use super::*;
    use proptest::prelude::*;

    /// Drive `duo` from BP `from` (exclusive) until the member guard-locks,
    /// returning the BP it locked at.
    fn drive_until_locked(duo: &mut Duo, from: u64, deadline: u64) -> Option<u64> {
        for k in (from + 1)..deadline {
            duo.run_bp(k);
            if duo.nodes[1].guard_locked {
                return Some(k);
            }
        }
        None
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Coarse → fine: whatever the member's (bounded) oscillator rate
        /// and initial phase, it reaches the fine-guard lock within a
        /// bounded number of reference BPs — and once there, clean beacons
        /// never unlock it. Before the lock the loose coarse δ applies, so
        /// no beacon may be guard-rejected on the way in.
        #[test]
        fn member_locks_within_bound_and_stays_locked(
            rate in 0.9995f64..1.0005,
            phase in -2_000.0f64..2_000.0,
        ) {
            let mut duo = Duo::new(ProtocolConfig::paper(), rate, phase);
            duo.elect_node0();
            prop_assert!(!duo.nodes[1].guard_locked, "founding member starts unlocked");

            let locked_at = drive_until_locked(&mut duo, 1, 40);
            prop_assert!(locked_at.is_some(), "member never guard-locked");
            // The coarse guard must admit the whole convergence path.
            prop_assert_eq!(duo.nodes[1].stats.guard_rejections, 0);

            // Lock is absorbing under clean traffic, and the error stays
            // small enough that the fine δ never fires either.
            let locked_at = locked_at.unwrap();
            for k in (locked_at + 1)..(locked_at + 25) {
                let err = duo.run_bp(k);
                prop_assert!(duo.nodes[1].guard_locked, "lock lost at BP {}", k);
                prop_assert!(err < duo.config.guard_fine_us,
                    "locked error {} µs at BP {}", err, k);
            }
            prop_assert_eq!(duo.nodes[1].stats.guard_rejections, 0);
        }

        /// Reset on rejoin: a locked member that leaves and rejoins drops
        /// the lock, re-enters the coarse phase (silent, unsynchronized),
        /// and re-locks through the same coarse → fine path.
        #[test]
        fn rejoin_resets_lock_and_reruns_coarse_phase(
            rate in 0.9995f64..1.0005,
            phase in -1_000.0f64..1_000.0,
        ) {
            let mut duo = Duo::new(ProtocolConfig::paper(), rate, phase);
            duo.elect_node0();
            let locked_at = drive_until_locked(&mut duo, 1, 40);
            prop_assert!(locked_at.is_some());
            let k0 = locked_at.unwrap() + 1;

            let t = bp_time(k0 as f64);
            duo.with_ctx(1, t, |n, ctx| {
                n.on_leave(ctx);
                n.on_join(ctx);
            });
            prop_assert!(!duo.nodes[1].guard_locked, "rejoin must drop the lock");
            prop_assert!(!duo.nodes[1].is_synchronized());
            prop_assert!(matches!(duo.nodes[1].phase, Phase::Coarse { .. }));
            // Coarse-phase stations do not beacon.
            let intent = duo.with_ctx(1, t, |n, ctx| n.intent(ctx));
            prop_assert_eq!(intent, BeaconIntent::Silent);

            // The coarse scan must complete and hand over to a fresh fine
            // lock within scan + convergence BPs.
            let deadline = k0 + duo.config.coarse_scan_bps as u64 + 40;
            let relocked = drive_until_locked(&mut duo, k0, deadline);
            prop_assert!(relocked.is_some(), "member never re-locked after rejoin");
            prop_assert!(duo.nodes[1].is_synchronized());
            // Re-lock goes through exactly one coarse completion.
            prop_assert_eq!(duo.nodes[1].stats.coarse_syncs, 1);
        }
    }
}
