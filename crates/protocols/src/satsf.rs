//! SATSF — Self-Adjusting TSF (Zhou & Lai, ICPP 2005; the paper's
//! reference \[10\]).
//!
//! A TSF-compatible scheme in which station `i` competes for beacon
//! transmission with a frequency governed by an adaptive score `FFT(i)`,
//! adjusted at the end of every BP so that *fast* stations gradually raise
//! their score (compete more often) and stations that hear faster clocks
//! drop back to the minimum. With the score capped at `FFT_max`, the
//! fastest station converges to competing every BP while the bulk of the
//! network competes rarely — recovering ATSP's effect without its binary
//! fast/slow split.
//!
//! Competition period for score `f` is `FFT_max + 1 − f` BPs, so the score
//! is a frequency: `f = FFT_max` → every BP, `f = 1` → every `FFT_max` BPs.

use crate::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use clocks::TsfTimer;
use mac80211::frame::BeaconBody;

/// A station running SATSF.
#[derive(Debug, Clone)]
pub struct SatsfNode {
    timer: TsfTimer,
    seq: u32,
    present: bool,
    /// Adaptive competition-frequency score in `1..=FFT_max`.
    fft: u32,
    countdown: u32,
    updated_this_bp: bool,
}

impl Default for SatsfNode {
    fn default() -> Self {
        Self::new()
    }
}

impl SatsfNode {
    /// Fresh SATSF station (starts at the minimum score).
    pub fn new() -> Self {
        SatsfNode {
            timer: TsfTimer::new(),
            seq: 0,
            present: true,
            fft: 1,
            countdown: 0,
            updated_this_bp: false,
        }
    }

    /// Current adaptive score (test introspection).
    pub fn fft(&self) -> u32 {
        self.fft
    }

    fn period(&self, fft_max: u32) -> u32 {
        fft_max + 1 - self.fft.min(fft_max)
    }
}

impl SyncProtocol for SatsfNode {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.present {
            return BeaconIntent::Silent;
        }
        if self.countdown == 0 {
            self.countdown = self.period(ctx.config.satsf_fft_max);
            BeaconIntent::Contend
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: self.timer.read_us(ctx.local_us),
            root: ctx.id,
            hop: 0,
        })
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        let ts = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
        if self.timer.adopt_if_later(ts, rx.local_rx_us) {
            self.updated_this_bp = true;
        }
    }

    fn on_bp_end(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.updated_this_bp {
            // A faster clock exists: fall back to the minimum frequency.
            self.fft = 1;
        } else {
            // No faster clock heard this BP: gradually raise the frequency.
            self.fft = (self.fft + 1).min(ctx.config.satsf_fft_max);
        }
        self.updated_this_bp = false;
        self.countdown = self.countdown.saturating_sub(1);
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.timer.value_us(local_us)
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = true;
        self.fft = 1;
        self.countdown = 0;
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
    }

    fn name(&self) -> &'static str {
        "SATSF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestHarness;

    fn fast_beacon(ts: u64) -> ReceivedBeacon {
        ReceivedBeacon {
            payload: BeaconPayload::Plain(BeaconBody {
                src: 9,
                seq: 0,
                timestamp_us: ts,
                root: 9,
                hop: 0,
            }),
            local_rx_us: 0.0,
        }
    }

    #[test]
    fn quiet_station_ramps_to_max_frequency() {
        let mut n = SatsfNode::new();
        let mut h = TestHarness::new(1);
        let max = h.config.satsf_fft_max;
        for _ in 0..max + 5 {
            n.on_bp_end(&mut h.ctx(1_000_000.0));
        }
        assert_eq!(n.fft(), max);
        // At max score the station competes every BP.
        let _ = n.intent(&mut h.ctx(1_000_000.0));
        n.on_bp_end(&mut h.ctx(1_000_000.0));
        assert_eq!(n.intent(&mut h.ctx(1_000_000.0)), BeaconIntent::Contend);
    }

    #[test]
    fn hearing_faster_clock_resets_score() {
        let mut n = SatsfNode::new();
        let mut h = TestHarness::new(1);
        for _ in 0..5 {
            n.on_bp_end(&mut h.ctx(0.0));
        }
        assert!(n.fft() > 1);
        n.on_beacon(&mut h.ctx(0.0), fast_beacon(1_000_000));
        n.on_bp_end(&mut h.ctx(0.0));
        assert_eq!(n.fft(), 1);
    }

    #[test]
    fn score_1_competes_every_fft_max_bps() {
        let mut n = SatsfNode::new();
        let mut h = TestHarness::new(1);
        let max = h.config.satsf_fft_max;
        let mut contends = 0;
        let mut ts = 1_000_000u64;
        for _ in 0..max {
            if n.intent(&mut h.ctx(0.0)) == BeaconIntent::Contend {
                contends += 1;
            }
            // Keep resetting the score so the period stays maximal.
            ts += 1_000_000;
            n.on_beacon(&mut h.ctx(0.0), fast_beacon(ts));
            n.on_bp_end(&mut h.ctx(0.0));
        }
        assert_eq!(contends, 1, "one competition per FFT_max BPs");
    }

    #[test]
    fn gradual_ramp_is_monotone() {
        let mut n = SatsfNode::new();
        let mut h = TestHarness::new(1);
        let mut last = n.fft();
        for _ in 0..h.config.satsf_fft_max + 2 {
            n.on_bp_end(&mut h.ctx(0.0));
            assert!(n.fft() >= last);
            last = n.fft();
        }
    }
}
