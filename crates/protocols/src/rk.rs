//! RK — the controlled-clock synchronization mechanism of Rentel & Kunz
//! (Carleton TR SCE-04-08, 2004; the paper's reference \[1\]).
//!
//! Unlike the priority schemes (ATSP/TATSP/SATSF), *all nodes participate
//! equally*. Each node maintains a **controlled clock** — an adjusted copy
//! of its hardware clock with a rate-correction factor
//! `s = controlled/real` — and:
//!
//! * competes for beacon transmission with probability `p` every `T_DELAY`
//!   BPs, but only if no beacon was received within the last `T_DELAY`
//!   BPs (received beacons suppress redundant transmissions);
//! * on receiving a beacon, updates the controlled clock's offset *and*
//!   rate toward the sender: the offset is stepped by a fraction of the
//!   observed difference and `s` is nudged by the difference observed
//!   across successive beacons from the network — so, unlike TSF's
//!   adopt-if-later rule, convergence is symmetric and backward-leap-free
//!   in expectation.
//!
//! This implementation follows the mechanism description in the SSTSP
//! paper's related-work section (the technical report's exact gain
//! schedule is not public); it is the "equal participation" counterpoint
//! to the fastest-node-priority family in the shootout experiments.

use crate::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use mac80211::frame::BeaconBody;
use rand::Rng;

/// Offset gain: fraction of the observed clock difference absorbed per
/// received beacon.
const OFFSET_GAIN: f64 = 0.5;

/// Rate gain: fraction of the estimated relative frequency error absorbed
/// per update.
const RATE_GAIN: f64 = 0.3;

/// Competition window `T_DELAY` in BPs.
const T_DELAY_BPS: u32 = 3;

/// Competition probability `p` when eligible.
const P_COMPETE: f64 = 0.4;

/// A station running the Rentel–Kunz controlled-clock mechanism.
#[derive(Debug, Clone)]
pub struct RkNode {
    /// Rate-correction factor `s`.
    s: f64,
    /// Offset of the controlled clock over the corrected hardware clock, µs.
    offset_us: f64,
    /// Previous observation for rate estimation:
    /// `(sender, local_rx_us, remote_ts_us)`. Rate is only estimated
    /// between successive beacons of the *same* sender — mixing senders
    /// folds their mutual offsets into the frequency estimate and
    /// destabilizes it.
    prev_obs: Option<(u32, f64, f64)>,
    /// BPs since a beacon was last received.
    bps_since_rx: u32,
    seq: u32,
    present: bool,
    /// Number of rate updates applied (introspection).
    rate_updates: u64,
}

impl Default for RkNode {
    fn default() -> Self {
        Self::new()
    }
}

impl RkNode {
    /// Fresh station: controlled clock equals the hardware clock.
    pub fn new() -> Self {
        RkNode {
            s: 1.0,
            offset_us: 0.0,
            prev_obs: None,
            bps_since_rx: T_DELAY_BPS, // eligible from the start
            seq: 0,
            present: true,
            rate_updates: 0,
        }
    }

    /// Current rate-correction factor `s`.
    pub fn rate_factor(&self) -> f64 {
        self.s
    }

    fn controlled(&self, local_us: f64) -> f64 {
        self.s * local_us + self.offset_us
    }
}

impl SyncProtocol for RkNode {
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.present {
            return BeaconIntent::Silent;
        }
        // Compete with probability p, only when nothing was heard for
        // T_DELAY BPs — equal participation, suppressed by any traffic.
        if self.bps_since_rx >= T_DELAY_BPS && ctx.rng.random_bool(P_COMPETE) {
            BeaconIntent::Contend
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: self.controlled(ctx.local_us).max(0.0) as u64,
            root: ctx.id,
            hop: 0,
        })
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        self.bps_since_rx = 0;
        let remote = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
        let local_controlled = self.controlled(rx.local_rx_us);

        // Offset discipline: absorb a fraction of the difference
        // (symmetric — can move the controlled clock backward, which this
        // mechanism accepts in exchange for convergence to the average).
        let diff = remote - local_controlled;
        self.offset_us += OFFSET_GAIN * diff;

        // Rate discipline: estimate the relative frequency against the
        // sender across successive observations of the *same* sender and
        // nudge `s`, clamped to the physically plausible band (the paper's
        // oscillators stay within ±100 ppm).
        let src = rx.payload.src();
        if let Some((prev_src, prev_local, prev_remote)) = self.prev_obs {
            if prev_src == src {
                let d_local = rx.local_rx_us - prev_local;
                let d_remote = remote - prev_remote;
                if d_local > 10_000.0 && d_remote > 10_000.0 {
                    let rel = (d_remote / d_local).clamp(0.999, 1.001);
                    self.s = (self.s + RATE_GAIN * (rel - self.s)).clamp(0.999, 1.001);
                    self.rate_updates += 1;
                }
            }
        }
        self.prev_obs = Some((src, rx.local_rx_us, remote));
    }

    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.bps_since_rx = self.bps_since_rx.saturating_add(1);
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.controlled(local_us)
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = true;
        self.prev_obs = None;
        self.bps_since_rx = T_DELAY_BPS;
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
    }

    fn name(&self) -> &'static str {
        "RK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestHarness;

    fn beacon(ts: u64, local_rx: f64) -> ReceivedBeacon {
        ReceivedBeacon {
            payload: BeaconPayload::Plain(BeaconBody {
                src: 9,
                seq: 0,
                timestamp_us: ts,
                root: 9,
                hop: 0,
            }),
            local_rx_us: local_rx,
        }
    }

    #[test]
    fn eligible_from_start_and_suppressed_by_traffic() {
        let mut n = RkNode::new();
        let mut h = TestHarness::new(1);
        // Eligible initially: over many draws, some contention.
        let mut contended = 0;
        for _ in 0..50 {
            if n.intent(&mut h.ctx(0.0)) == BeaconIntent::Contend {
                contended += 1;
            }
        }
        assert!(contended > 5, "p=0.4 must contend sometimes");
        // A received beacon suppresses competition for T_DELAY BPs.
        n.on_beacon(&mut h.ctx(0.0), beacon(1_000, 0.0));
        for _ in 0..(T_DELAY_BPS - 1) {
            assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Silent);
            n.on_bp_end(&mut h.ctx(0.0));
        }
    }

    #[test]
    fn offset_converges_symmetrically() {
        let mut n = RkNode::new();
        let mut h = TestHarness::new(1);
        let t_p = h.config.t_p_us;
        // Remote clock 100 µs *behind* — TSF would ignore it; RK converges.
        for k in 1..=20u64 {
            let local = k as f64 * 100_000.0;
            let remote_ts = (local - 100.0 - t_p) as u64;
            n.on_beacon(&mut h.ctx(local), beacon(remote_ts, local));
        }
        let local = 21.0 * 100_000.0;
        let err = n.clock_us(local) - (local - 100.0);
        assert!(err.abs() < 5.0, "controlled clock error {err} µs");
    }

    #[test]
    fn rate_factor_tracks_relative_frequency() {
        let mut n = RkNode::new();
        let mut h = TestHarness::new(1);
        let t_p = h.config.t_p_us;
        // Sender runs 100 ppm fast relative to our local clock.
        for k in 1..=30u64 {
            let local = k as f64 * 100_000.0;
            let remote = local * 1.0001 - t_p;
            n.on_beacon(&mut h.ctx(local), beacon(remote as u64, local));
        }
        assert!(n.rate_updates > 20);
        assert!(
            (n.rate_factor() - 1.0001).abs() < 3e-5,
            "s = {} should approach 1.0001",
            n.rate_factor()
        );
    }

    #[test]
    fn leave_and_rejoin() {
        let mut n = RkNode::new();
        let mut h = TestHarness::new(1);
        n.on_leave(&mut h.ctx(0.0));
        assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Silent);
        n.on_join(&mut h.ctx(0.0));
        assert!(n.prev_obs.is_none(), "stale rate observations cleared");
    }
}
