//! The IEEE 802.11-1999 Timing Synchronization Function (TSF).
//!
//! Every station competes for beacon transmission every beacon period with
//! a random delay uniform in `[0, w] × aSlotTime`; a station receiving a
//! beacon before its delay timer expires cancels its pending beacon; a
//! station receiving a beacon whose timestamp is *later* than its own TSF
//! timer adopts the timestamp.
//!
//! This is the paper's baseline, and it fails at scale in two documented
//! ways (Sec. 2):
//!
//! * **fastest-node asynchronization** — the fastest station wins the
//!   contention only ~1/N of the time, so its clock runs away between wins;
//! * **beacon collision** — with hundreds of stations in a 31-slot window,
//!   most BPs end in collisions and no timing information circulates.

use crate::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use clocks::TsfTimer;
use mac80211::frame::BeaconBody;

/// A station running plain TSF.
#[derive(Debug, Clone, Default)]
pub struct TsfNode {
    timer: TsfTimer,
    seq: u32,
    present: bool,
}

impl TsfNode {
    /// Fresh TSF station.
    pub fn new() -> Self {
        TsfNode {
            timer: TsfTimer::new(),
            seq: 0,
            present: true,
        }
    }

    /// The station's TSF timer (exposed for tests and metrics).
    pub fn timer(&self) -> &TsfTimer {
        &self.timer
    }
}

impl SyncProtocol for TsfNode {
    fn intent(&mut self, _ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if self.present {
            BeaconIntent::Contend
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: self.timer.read_us(ctx.local_us),
            root: ctx.id,
            hop: 0,
        })
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        // §11.1.2.4: adopt the timestamp (adjusted for the receive path
        // delay) iff it is later than the local TSF timer.
        let ts = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
        self.timer.adopt_if_later(ts, rx.local_rx_us);
    }

    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {}

    fn clock_us(&self, local_us: f64) -> f64 {
        self.timer.value_us(local_us)
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = true;
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
    }

    fn name(&self) -> &'static str {
        "TSF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestHarness;

    #[test]
    fn contends_every_bp() {
        let mut n = TsfNode::new();
        let mut h = TestHarness::new(1);
        for _ in 0..5 {
            assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Contend);
        }
    }

    #[test]
    fn silent_when_absent() {
        let mut n = TsfNode::new();
        let mut h = TestHarness::new(1);
        n.on_leave(&mut h.ctx(0.0));
        assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Silent);
        n.on_join(&mut h.ctx(0.0));
        assert_eq!(n.intent(&mut h.ctx(0.0)), BeaconIntent::Contend);
    }

    #[test]
    fn beacon_carries_quantized_timer() {
        let mut n = TsfNode::new();
        let mut h = TestHarness::new(1);
        let b = n.make_beacon(&mut h.ctx(1234.9));
        assert_eq!(b.body().timestamp_us, 1234);
        assert_eq!(b.src(), 1);
    }

    #[test]
    fn adopts_only_later_timestamps() {
        let mut n = TsfNode::new();
        let mut h = TestHarness::new(1);
        let t_p = h.config.t_p_us;

        // Faster clock in a beacon: adopt.
        let body = BeaconBody {
            src: 2,
            seq: 1,
            timestamp_us: 10_000,
            root: 2,
            hop: 0,
        };
        n.on_beacon(
            &mut h.ctx(1_000.0),
            ReceivedBeacon {
                payload: BeaconPayload::Plain(body),
                local_rx_us: 1_000.0,
            },
        );
        assert!((n.clock_us(1_000.0) - (10_000.0 + t_p)).abs() < 1e-9);

        // Slower clock: ignore (the fast-beacon attack against TSF exploits
        // exactly this asymmetry: slow forged beacons are never adopted,
        // but they still suppress legitimate contention).
        let slow = BeaconBody {
            src: 3,
            seq: 1,
            timestamp_us: 500,
            root: 3,
            hop: 0,
        };
        let before = n.clock_us(2_000.0);
        n.on_beacon(
            &mut h.ctx(2_000.0),
            ReceivedBeacon {
                payload: BeaconPayload::Plain(slow),
                local_rx_us: 2_000.0,
            },
        );
        assert_eq!(n.clock_us(2_000.0), before);
    }

    #[test]
    fn clock_is_timer_value() {
        let n = TsfNode::new();
        assert_eq!(n.clock_us(42.5), 42.5);
        assert_eq!(n.name(), "TSF");
        assert!(!n.is_reference());
    }
}
