//! TATSP — Tiered ATSP (Lai & Zhou 2003, the improved variant described in
//! the paper's Sec. 2).
//!
//! Stations dynamically classify themselves into three tiers by clock
//! speed: tier 1 (believed fastest) competes for beacon transmission every
//! BP, tier 2 competes once in a while, tier 3 rarely competes. We encode
//! "clock speed belief" exactly as in ATSP — how long since a received
//! beacon updated the local timer — with two thresholds instead of one.

use crate::api::{BeaconIntent, BeaconPayload, NodeCtx, ReceivedBeacon, SyncProtocol};
use clocks::TsfTimer;
use mac80211::frame::BeaconBody;

/// Competition periods of the three tiers, in BPs.
const TIER_PERIODS: [u32; 3] = [1, 10, 100];

/// BPs without a timer update required to be promoted into tier 1
/// (and half of it for tier 2).
const TIER1_QUIET_BPS: u32 = 20;

/// A station running TATSP.
#[derive(Debug, Clone)]
pub struct TatspNode {
    timer: TsfTimer,
    seq: u32,
    present: bool,
    /// Tier index 0..=2 (tier 1 = index 0).
    tier: usize,
    countdown: u32,
    bps_since_update: u32,
    updated_this_bp: bool,
}

impl Default for TatspNode {
    fn default() -> Self {
        Self::new()
    }
}

impl TatspNode {
    /// Fresh TATSP station (starts in tier 1, like TSF's everyone-competes).
    pub fn new() -> Self {
        TatspNode {
            timer: TsfTimer::new(),
            seq: 0,
            present: true,
            tier: 0,
            countdown: 0,
            bps_since_update: 0,
            updated_this_bp: false,
        }
    }

    /// Current tier, 1-based as in the paper's description.
    pub fn tier(&self) -> usize {
        self.tier + 1
    }
}

impl SyncProtocol for TatspNode {
    fn intent(&mut self, _ctx: &mut NodeCtx<'_>) -> BeaconIntent {
        if !self.present {
            return BeaconIntent::Silent;
        }
        if self.countdown == 0 {
            self.countdown = TIER_PERIODS[self.tier];
            BeaconIntent::Contend
        } else {
            BeaconIntent::Silent
        }
    }

    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload {
        self.seq = self.seq.wrapping_add(1);
        BeaconPayload::Plain(BeaconBody {
            src: ctx.id,
            seq: self.seq,
            timestamp_us: self.timer.read_us(ctx.local_us),
            root: ctx.id,
            hop: 0,
        })
    }

    fn on_tx_outcome(&mut self, _ctx: &mut NodeCtx<'_>, _collided: bool) {}

    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon) {
        let ts = rx.payload.body().timestamp_us as f64 + ctx.config.t_p_us;
        if self.timer.adopt_if_later(ts, rx.local_rx_us) {
            self.updated_this_bp = true;
        }
    }

    fn on_bp_end(&mut self, _ctx: &mut NodeCtx<'_>) {
        if self.updated_this_bp {
            // Saw a faster clock: demote to the slowest tier.
            self.tier = 2;
            self.bps_since_update = 0;
        } else {
            self.bps_since_update = self.bps_since_update.saturating_add(1);
            if self.bps_since_update >= TIER1_QUIET_BPS {
                self.tier = 0;
            } else if self.bps_since_update >= TIER1_QUIET_BPS / 2 {
                self.tier = self.tier.min(1);
            }
        }
        self.updated_this_bp = false;
        self.countdown = self.countdown.saturating_sub(1);
    }

    fn clock_us(&self, local_us: f64) -> f64 {
        self.timer.value_us(local_us)
    }

    fn on_join(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = true;
        self.tier = 0;
        self.countdown = 0;
        self.bps_since_update = 0;
    }

    fn on_leave(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.present = false;
    }

    fn name(&self) -> &'static str {
        "TATSP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestHarness;

    fn fast_beacon(ts: u64) -> ReceivedBeacon {
        ReceivedBeacon {
            payload: BeaconPayload::Plain(BeaconBody {
                src: 9,
                seq: 0,
                timestamp_us: ts,
                root: 9,
                hop: 0,
            }),
            local_rx_us: 0.0,
        }
    }

    #[test]
    fn starts_in_tier_one() {
        let n = TatspNode::new();
        assert_eq!(n.tier(), 1);
    }

    #[test]
    fn demotes_to_tier_three_on_faster_clock() {
        let mut n = TatspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(0.0), fast_beacon(1_000_000));
        n.on_bp_end(&mut h.ctx(0.0));
        assert_eq!(n.tier(), 3);
    }

    #[test]
    fn quiet_period_promotes_through_tiers() {
        let mut n = TatspNode::new();
        let mut h = TestHarness::new(1);
        n.on_beacon(&mut h.ctx(0.0), fast_beacon(1_000_000));
        n.on_bp_end(&mut h.ctx(0.0));
        assert_eq!(n.tier(), 3);
        for _ in 0..(TIER1_QUIET_BPS / 2) {
            n.on_bp_end(&mut h.ctx(2_000_000.0));
        }
        assert_eq!(n.tier(), 2);
        for _ in 0..(TIER1_QUIET_BPS / 2) {
            n.on_bp_end(&mut h.ctx(2_000_000.0));
        }
        assert_eq!(n.tier(), 1);
    }

    #[test]
    fn tier_three_competes_rarely() {
        let mut n = TatspNode::new();
        let mut h = TestHarness::new(1);
        // Keep demoting with faster beacons so the node stays in tier 3.
        let mut contends = 0;
        let mut ts = 1_000_000u64;
        for _ in 0..200 {
            if n.intent(&mut h.ctx(0.0)) == BeaconIntent::Contend {
                contends += 1;
            }
            ts += 1_000_000;
            n.on_beacon(&mut h.ctx(0.0), fast_beacon(ts));
            n.on_bp_end(&mut h.ctx(0.0));
        }
        // First BP contends (initial tier 1) plus at most a couple of
        // tier-3 competitions in 200 BPs.
        assert!(contends <= 3, "tier-3 station contended {contends} times");
    }
}
