//! # protocols — time-synchronization protocols for 802.11 IBSS
//!
//! Every protocol is a per-node state machine implementing [`SyncProtocol`];
//! the network engine (crate `sstsp`) drives all nodes through beacon
//! periods, resolves the contention window on the shared channel, and
//! delivers beacons. Protocols see only what a real station would see:
//! their own local clock, received beacons, and transmit feedback.
//!
//! Implemented protocols:
//!
//! * [`tsf`] — the IEEE 802.11-1999 Timing Synchronization Function
//!   (the paper's baseline);
//! * [`atsp`] — adaptive TSF (Lai & Zhou 2003): the self-believed fastest
//!   station competes every BP, others every `I_max` BPs;
//! * [`tatsp`] — tiered ATSP: stations sort themselves into three
//!   competition-frequency tiers;
//! * [`satsf`] — self-adjusting TSF (Zhou & Lai, ICPP 2005): per-station
//!   competition frequency adapts gradually;
//! * [`asp`] — single-hop ASP (Sheu, Chao & Sun, ICDCS 2004): faster
//!   stations get priority slots and slower stations self-correct their
//!   rate;
//! * [`rk`] — the Rentel & Kunz controlled-clock mechanism: equal
//!   participation with rate-corrected clocks;
//! * [`sstsp`] — the paper's contribution: reference-node election, µTESLA
//!   beacon authentication, guard-time check, and the continuous
//!   adjusted-clock discipline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod asp;
pub mod atsp;
pub mod rk;
pub mod satsf;
pub mod sstsp;
pub mod tatsp;
#[cfg(test)]
pub(crate) mod testutil;
pub mod tsf;

pub use api::{
    AnchorRegistry, BeaconIntent, BeaconPayload, HotState, NodeCtx, NodeId, ProtocolConfig,
    ReceivedBeacon, SyncProtocol,
};
pub use asp::AspNode;
pub use atsp::AtspNode;
pub use rk::RkNode;
pub use satsf::SatsfNode;
pub use sstsp::SstspNode;
pub use tatsp::TatspNode;
pub use tsf::TsfNode;
