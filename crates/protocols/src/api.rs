//! The protocol ⇄ engine interface.
//!
//! The engine calls protocols through [`SyncProtocol`]; protocols observe
//! the world exclusively through [`NodeCtx`] (their own clock reading, their
//! RNG stream, the anchor registry) and the beacons handed to
//! [`SyncProtocol::on_beacon`]. Real simulation time never crosses this
//! boundary — a protocol that wants the time must read its own clock, drift
//! and all.

use clocks::AdjustedClock;
use mac80211::frame::BeaconBody;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use sstsp_crypto::chain::chain_step_n;
use sstsp_crypto::{BeaconAuth, ChainElement};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

pub use rand_chacha;

/// Station identifier (index into the scenario's node table).
pub type NodeId = u32;

/// What a node wants to do in the upcoming beacon generation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconIntent {
    /// Do not transmit this BP.
    Silent,
    /// Join TSF contention: draw a random slot in `[0, w]`.
    Contend,
    /// Transmit at a fixed slot without random delay (slot 0 for the SSTSP
    /// reference node and for the fast-beacon attacker).
    FixedSlot(u32),
    /// Multi-hop relay: transmit at the given slot *only if* a beacon was
    /// decoded earlier in this window (forwarding the timing wave one hop).
    /// Treated as [`BeaconIntent::Silent`] by the single-hop channel.
    RelayAfterRx(u32),
}

/// A beacon as it travels the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconPayload {
    /// Plain TSF beacon.
    Plain(BeaconBody),
    /// µTESLA-secured SSTSP beacon.
    Secured(BeaconBody, BeaconAuth),
}

impl BeaconPayload {
    /// The carried beacon body.
    pub fn body(&self) -> &BeaconBody {
        match self {
            BeaconPayload::Plain(b) => b,
            BeaconPayload::Secured(b, _) => b,
        }
    }

    /// Sender id.
    pub fn src(&self) -> NodeId {
        self.body().src
    }

    /// Whether the beacon carries µTESLA fields.
    pub fn is_secured(&self) -> bool {
        matches!(self, BeaconPayload::Secured(..))
    }
}

/// A beacon as delivered to a receiver.
#[derive(Debug, Clone, Copy)]
pub struct ReceivedBeacon {
    /// The payload.
    pub payload: BeaconPayload,
    /// The receiver's local *unadjusted* time at the reception instant
    /// (this is `t_iʲ` in the paper's notation).
    pub local_rx_us: f64,
}

/// A registry entry: either a materialized anchor, or the `(seed, n)` pair
/// whose walk `hⁿ(seed)` is owed on first lookup.
#[derive(Debug, Clone, Copy)]
enum AnchorEntry {
    Ready(ChainElement),
    Deferred { seed: ChainElement, n: usize },
}

/// The authenticated publication channel for hash-chain anchors.
///
/// The paper assumes each node's anchor `hⁿ(s_i)` is distributed
/// authenticated (by signature, symmetric pre-keys, or out-of-band
/// imprinting — Sec. 3.2); the registry models that assumption. Publishing
/// is lazy (a node registers its anchor when it first generates its chain),
/// which is observationally equivalent to pre-publication because entries
/// are immutable once written.
///
/// Publication can even defer the anchor *walk* itself
/// ([`publish_deferred`](Self::publish_deferred)): the `n`-hash chain walk
/// is a pure function of the seed, so computing it at first lookup instead
/// of at registration returns bit-identical anchors while sparing the walk
/// entirely for stations nobody ever needs to authenticate. That walk is
/// the dominant setup cost of a large network (n hashes × N stations), and
/// in a single-collision-domain steady state only the reference's anchor
/// is ever looked up.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnchorRegistry {
    anchors: HashMap<NodeId, Cell<AnchorEntry>>,
}

impl AnchorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `anchor` for `node`. First write wins; the authenticated
    /// distribution assumption means an attacker cannot overwrite a
    /// legitimate anchor.
    pub fn publish(&mut self, node: NodeId, anchor: ChainElement) {
        self.anchors
            .entry(node)
            .or_insert(Cell::new(AnchorEntry::Ready(anchor)));
    }

    /// Publish the anchor `hⁿ(seed)` without walking the chain yet; the
    /// walk runs on the first [`get`](Self::get) for `node`. First write
    /// wins, exactly as for [`publish`](Self::publish).
    pub fn publish_deferred(&mut self, node: NodeId, seed: ChainElement, n: usize) {
        self.anchors
            .entry(node)
            .or_insert(Cell::new(AnchorEntry::Deferred { seed, n }));
    }

    /// Look up a node's published anchor, materializing a deferred entry.
    pub fn get(&self, node: NodeId) -> Option<ChainElement> {
        let cell = self.anchors.get(&node)?;
        Some(match cell.get() {
            AnchorEntry::Ready(anchor) => anchor,
            AnchorEntry::Deferred { seed, n } => {
                let anchor = chain_step_n(&seed, n);
                cell.set(AnchorEntry::Ready(anchor));
                anchor
            }
        })
    }

    /// Number of published anchors.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether no anchors have been published.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// A node's place in a multi-collision-domain mesh, distributed
/// out-of-band by the engine after node construction (deployment-time
/// configuration, like the anchor registry — it never rides in beacons,
/// whose authenticated bytes must not change shape between single- and
/// multi-domain runs).
///
/// Receivers use [`domain_of`](Self::domain_of) to classify a beacon's
/// sender as same- or cross-domain; bridge nodes are exempt from domain
/// stickiness (they attach to whichever adjacent domain currently wins
/// the lowest-root rule and relay its time).
#[derive(Debug, Clone)]
pub struct MeshRole {
    /// The domain this node belongs to.
    pub domain: u32,
    /// Total number of domains in the mesh (references stagger their fixed
    /// beacon slots by domain index so a bridge can decode both).
    pub num_domains: u32,
    /// `Some(i)` iff this node is a gateway between domains, where `i` is
    /// its index in [`bridges`](Self::bridges) (bridges stagger their relay
    /// slots by this index).
    pub bridge_index: Option<u32>,
    /// Station id → domain index, shared across the network's nodes.
    pub domain_of: Arc<Vec<u32>>,
    /// Sorted gateway station ids, shared across the network's nodes.
    pub bridges: Arc<Vec<u32>>,
}

impl MeshRole {
    /// Whether this node is a gateway between domains.
    pub fn is_bridge(&self) -> bool {
        self.bridge_index.is_some()
    }

    /// The domain of station `id`.
    pub fn domain_of(&self, id: NodeId) -> u32 {
        self.domain_of[id as usize]
    }

    /// Whether station `id` is in this node's own domain.
    pub fn same_domain(&self, id: NodeId) -> bool {
        self.domain_of(id) == self.domain
    }

    /// Whether station `id` is a gateway.
    pub fn is_bridge_node(&self, id: NodeId) -> bool {
        self.bridges.binary_search(&id).is_ok()
    }
}

/// Attack-recovery policy — the paper's "future work" (Sec. 3.4): on
/// detecting malicious beacons, raise an alert and optionally restart the
/// synchronization procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Rejected beacons within the window required to trigger.
    pub rejection_threshold: u32,
    /// Sliding detection window, in BPs.
    pub window_bps: u32,
    /// If true, a triggered node restarts synchronization (re-enters the
    /// coarse phase); if false it only raises the alert counter.
    pub restart: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            rejection_threshold: 10,
            window_bps: 50,
            restart: false,
        }
    }
}

/// Shared protocol parameters (one instance per scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Beacon period, µs (paper: 0.1 s).
    pub bp_us: f64,
    /// Beacon generation window parameter `w` (paper: 30).
    pub w: u32,
    /// SSTSP: reference considered lost after `l` consecutive BPs without
    /// its beacon (paper: 1).
    pub l: u32,
    /// SSTSP: aggressiveness parameter `m` (Table 1 sweeps 1..=5).
    pub m: u32,
    /// SSTSP: fine-phase guard time δ, µs.
    pub guard_fine_us: f64,
    /// SSTSP: loose threshold used by the coarse phase, µs.
    pub guard_coarse_us: f64,
    /// Nominal transmission + propagation delay `t_p` receivers add to
    /// beacon timestamps, µs.
    pub t_p_us: f64,
    /// SSTSP: BPs a (re)joining node spends scanning in the coarse phase.
    pub coarse_scan_bps: u32,
    /// Hash-chain length (must cover every BP of the run).
    pub total_intervals: usize,
    /// ATSP: competition interval `I_max` for non-fastest stations.
    pub atsp_imax: u32,
    /// SATSF: ceiling of the adaptive competition-frequency score.
    pub satsf_fft_max: u32,
    /// SSTSP: optional attack-recovery policy (the paper's future work —
    /// detect, alert, optionally restart synchronization).
    pub recovery: Option<RecoveryPolicy>,
    /// SSTSP multi-hop extension: synchronized members relay the timing
    /// wave each BP at staggered slots. Enabled by the engine when the
    /// scenario has a topology; meaningless (and off) in single-hop mode.
    pub multihop_relay: bool,
    /// Beacon airtime in slots (needed to stagger relay waves so they do
    /// not overlap the upstream transmission).
    pub beacon_airtime_slots: u32,
    /// SSTSP mesh extension: per-collision-domain reference election. Each
    /// domain elects its fastest in-range station; non-bridge members only
    /// discipline to same-domain sources, bridges relay the winning
    /// domain's time across, and a reference hearing a lower root through a
    /// bridge *subordinates* (keeps its role and slot, disciplines toward
    /// the relayed time) instead of abdicating. Enabled by the engine for
    /// explicitly multi-domain topologies; requires [`MeshRole`]s to have
    /// been distributed.
    pub domain_election: bool,
    /// SSTSP: probability that an election-eligible node actually joins the
    /// contention in a given BP.
    ///
    /// The paper has *every* node contend once the reference is lost; with
    /// hundreds of stations in a 31-slot window the probability of a unique
    /// earliest-slot winner is then astronomically small and the election
    /// never terminates. Randomized deferral (each eligible node contends
    /// with this probability, doubling every 10 eligible BPs until it
    /// reaches 1) keeps the expected contender count near `p·N`, so
    /// elections resolve within a few BPs at every network size — matching
    /// the paper's "in case of collision, the contention may last several
    /// BPs" and the small reference-change spikes of Fig. 2. Documented as
    /// a reproduction deviation in DESIGN.md.
    pub contend_prob: f64,
}

impl ProtocolConfig {
    /// The paper's simulation parameters (Sec. 5): BP = 0.1 s, w = 30,
    /// l = 1, and a run horizon of 1000 s (10 000 intervals + margin).
    pub fn paper() -> Self {
        ProtocolConfig {
            bp_us: 100_000.0,
            w: 30,
            l: 1,
            m: 4,
            guard_fine_us: 300.0,
            guard_coarse_us: 5_000.0,
            t_p_us: 63.5,
            coarse_scan_bps: 5,
            total_intervals: 10_100,
            atsp_imax: 10,
            satsf_fft_max: 8,
            recovery: None,
            multihop_relay: false,
            beacon_airtime_slots: 7,
            domain_election: false,
            contend_prob: 0.05,
        }
    }

    /// Enable the attack-recovery extension.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Override the election contention probability (tests use 1.0 to make
    /// elections deterministic).
    pub fn with_contend_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.contend_prob = p;
        self
    }

    /// Paper parameters with a different `m`.
    pub fn with_m(mut self, m: u32) -> Self {
        self.m = m;
        self
    }

    /// Paper parameters with a different `l`.
    pub fn with_l(mut self, l: u32) -> Self {
        self.l = l;
        self
    }
}

/// A compact snapshot of the protocol state the engine's large-n fast path
/// reads every beacon period.
///
/// The engine keeps these in dense structure-of-arrays storage so the per-BP
/// metric passes (spread sampling, reference lookup, follower counting) are
/// tight linear scans instead of virtual calls into scattered `Box<dyn>`
/// node structs. A snapshot is pure *cache*: it must describe exactly what
/// the trait methods would return at the instant it was taken, and the
/// engine refreshes it after every callback that can mutate node state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotState {
    /// The node's synchronized clock as an affine function of local
    /// unadjusted time: `clock_us(local) = k * local + b`, evaluated with
    /// exactly one multiply and one add (no re-association, no FMA) so the
    /// result is bit-identical to [`SyncProtocol::clock_us`]. `None` when
    /// the protocol's clock is not affine in local time.
    pub affine_clock: Option<(f64, f64)>,
    /// Mirror of [`SyncProtocol::is_synchronized`].
    pub synchronized: bool,
    /// Mirror of [`SyncProtocol::is_reference`].
    pub is_reference: bool,
    /// Mirror of [`SyncProtocol::current_reference`].
    pub current_reference: Option<NodeId>,
    /// The intent [`SyncProtocol::intent`] would return this BP, when that
    /// is decidable without consuming an RNG draw (and without the local
    /// clock reading). `None` means the engine must make the real call —
    /// either the decision needs randomness or the protocol does not
    /// predict its intents. Correctness requires: if `Some(i)`, the real
    /// `intent()` call would return exactly `i` *and* would not touch the
    /// node's RNG stream.
    pub static_intent: Option<BeaconIntent>,
}

/// Everything a protocol may observe or use during one callback.
pub struct NodeCtx<'a> {
    /// This node's id.
    pub id: NodeId,
    /// This node's local unadjusted clock reading at the callback instant,
    /// µs (`t_i` in the paper).
    pub local_us: f64,
    /// The node's deterministic protocol RNG stream.
    pub rng: &'a mut ChaCha12Rng,
    /// The authenticated anchor registry.
    pub anchors: &'a mut AnchorRegistry,
    /// Scenario-wide protocol parameters.
    pub config: &'a ProtocolConfig,
}

/// A per-node synchronization protocol state machine.
pub trait SyncProtocol {
    /// Node initiation, called once before the first beacon period. SSTSP
    /// nodes generate their one-way hash chain here and publish its anchor
    /// (Sec. 3.3 "Node initiation"); other protocols need nothing.
    fn init(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// The seed of the node's one-way hash chain, if it maintains one. Lets
    /// wrappers (e.g. the internal attacker, which *is* a compromised
    /// legitimate node) sign with the node's published credentials — the
    /// seed is the entire secret, and a signer rebuilt from it emits
    /// byte-identical authentication fields.
    fn chain_seed(&self) -> Option<ChainElement> {
        None
    }

    /// Deployment-time mesh configuration: the node's collision domain,
    /// bridge flag, and the shared station→domain map. Called once by the
    /// engine after construction for multi-domain topologies; protocols
    /// without per-domain behavior ignore it.
    fn set_mesh_role(&mut self, _role: MeshRole) {}

    /// Called at the start of each beacon period: what does this node do in
    /// the beacon generation window?
    fn intent(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconIntent;

    /// Called at the node's transmission instant when it won the window
    /// (exactly one transmitter). `ctx.local_us` includes the sub-µs
    /// timestamping jitter of the hardware path.
    fn make_beacon(&mut self, ctx: &mut NodeCtx<'_>) -> BeaconPayload;

    /// Transmit feedback: the node transmitted and (`collided = true`) its
    /// beacon was destroyed by a collision, or (`false`) it went out clean.
    /// Collision awareness models carrier-sense-based inference over the
    /// following beacon period.
    fn on_tx_outcome(&mut self, ctx: &mut NodeCtx<'_>, collided: bool);

    /// A beacon arrived.
    fn on_beacon(&mut self, ctx: &mut NodeCtx<'_>, rx: ReceivedBeacon);

    /// Called at the end of each beacon period (bookkeeping: missed-beacon
    /// counters, phase transitions).
    fn on_bp_end(&mut self, ctx: &mut NodeCtx<'_>);

    /// The node's *synchronized* clock — the quantity the paper's figures
    /// plot — as a function of local unadjusted time.
    fn clock_us(&self, local_us: f64) -> f64;

    /// The node (re)joined the network (churn return). Protocols reset
    /// their synchronization state; the hardware clock keeps its drift.
    fn on_join(&mut self, ctx: &mut NodeCtx<'_>);

    /// The node left the network.
    fn on_leave(&mut self, ctx: &mut NodeCtx<'_>);

    /// Whether this node currently acts as the SSTSP reference.
    fn is_reference(&self) -> bool {
        false
    }

    /// Whether this node considers itself synchronized with the network.
    /// Nodes still in a (re)synchronization phase return `false` and are
    /// excluded from the maximum-clock-difference metric — a station that
    /// has not yet joined the timing structure is not part of the
    /// synchronized set the paper measures.
    fn is_synchronized(&self) -> bool {
        true
    }

    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// SSTSP diagnostic counters, if this node runs SSTSP (used by the
    /// harness to report guard/µTESLA rejection totals).
    fn sstsp_stats(&self) -> Option<crate::sstsp::SstspStats> {
        None
    }

    /// The station this node currently treats as its reference (its own id
    /// when it holds the role itself). `None` for protocols without a
    /// reference concept or while no reference is known.
    fn current_reference(&self) -> Option<NodeId> {
        None
    }

    /// Snapshot the state the engine's fast path caches in dense arrays
    /// (see [`HotState`]). The default is maximally conservative: no affine
    /// clock, no static intent — the engine then behaves exactly as it
    /// would without the cache. Protocols overriding this must keep every
    /// field consistent with the corresponding trait methods at all times.
    fn hot_state(&self, _config: &ProtocolConfig) -> HotState {
        HotState {
            affine_clock: None,
            synchronized: self.is_synchronized(),
            is_reference: self.is_reference(),
            current_reference: self.current_reference(),
            static_intent: None,
        }
    }
}

/// Convenience: the node's adjusted clock if the protocol exposes one (used
/// by tests and the harness to introspect SSTSP nodes).
pub trait HasAdjustedClock {
    /// The current adjusted clock.
    fn adjusted_clock(&self) -> &AdjustedClock;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_first_write_wins() {
        let mut r = AnchorRegistry::new();
        r.publish(1, [0xAA; 16]);
        r.publish(1, [0xBB; 16]);
        assert_eq!(r.get(1), Some([0xAA; 16]));
        assert_eq!(r.get(2), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn payload_accessors() {
        let body = BeaconBody {
            src: 7,
            seq: 1,
            timestamp_us: 99,
            root: 7,
            hop: 0,
        };
        let plain = BeaconPayload::Plain(body);
        assert_eq!(plain.src(), 7);
        assert!(!plain.is_secured());
        let secured = BeaconPayload::Secured(
            body,
            BeaconAuth {
                interval: 1,
                mac: [0; 16],
                disclosed: [0; 16],
            },
        );
        assert!(secured.is_secured());
        assert_eq!(secured.body().timestamp_us, 99);
    }

    #[test]
    fn paper_config_invariants() {
        let c = ProtocolConfig::paper();
        assert_eq!(c.bp_us, 100_000.0);
        assert_eq!(c.w, 30);
        assert_eq!(c.l, 1);
        assert!(c.total_intervals > 10_000, "chain must cover a 1000 s run");
        assert!(c.guard_coarse_us > c.guard_fine_us);
        let c2 = ProtocolConfig::paper().with_m(2).with_l(3);
        assert_eq!(c2.m, 2);
        assert_eq!(c2.l, 3);
    }
}
