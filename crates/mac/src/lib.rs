//! # mac80211 — IEEE 802.11 IBSS beacon machinery
//!
//! Two pieces of the 802.11 ad-hoc mode that time synchronization rides on:
//!
//! * [`frame`] — beacon frame wire formats. The plain TSF beacon serializes
//!   to the paper's 56 bytes (24-byte PLCP preamble + 32-byte MAC frame
//!   carrying the 8-byte TSF timestamp); the SSTSP-secured beacon appends
//!   the 4-byte interval index, 128-bit HMAC and 128-bit disclosed key for
//!   a total of 92 bytes — the exact overhead the paper budgets in
//!   Sec. 3.4.
//! * [`contention`] — the beacon generation window: `w + 1` slots of
//!   `aSlotTime`; each contender draws a uniform slot and transmits when
//!   its delay timer expires unless it hears an earlier beacon first.
//!
//! Which stations contend in which BP is protocol policy and lives in the
//! `protocols` crate; the channel-level resolution of simultaneous slots
//! lives in `wireless`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contention;
pub mod frame;

pub use contention::ContentionWindow;
pub use frame::{BeaconBody, SecuredBeacon, WIRE_LEN_PLAIN, WIRE_LEN_SECURED};
