//! The TSF beacon generation window.
//!
//! At the beginning of each beacon period there is a beacon generation
//! window of `w + 1` slots, each `aSlotTime` long. Each competing station
//! calculates a random delay uniformly distributed in `[0, w] × aSlotTime`
//! and schedules its beacon for when the timer expires, cancelling if it
//! hears a beacon first (802.11-1999 §11.1.2.2; the paper uses `w = 30`).

use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Beacon generation window parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionWindow {
    /// The window parameter `w`: slots are drawn from `0..=w`.
    pub w: u32,
    /// Slot duration in microseconds (aSlotTime; 9 µs for OFDM).
    pub slot_us: u64,
}

impl ContentionWindow {
    /// Create a window with the given `w` and slot time.
    pub fn new(w: u32, slot_us: u64) -> Self {
        assert!(slot_us > 0, "slot time must be positive");
        ContentionWindow { w, slot_us }
    }

    /// The paper's configuration: `w = 30`, 9 µs OFDM slots.
    pub fn paper() -> Self {
        ContentionWindow { w: 30, slot_us: 9 }
    }

    /// Number of slots in the window (`w + 1`).
    pub fn slot_count(&self) -> u32 {
        self.w + 1
    }

    /// Total window span.
    pub fn span(&self) -> SimDuration {
        SimDuration::from_us(self.slot_us * (self.w as u64 + 1))
    }

    /// Draw a contention slot uniformly from `0..=w`.
    pub fn draw_slot<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.random_range(0..=self.w)
    }

    /// The random delay corresponding to a drawn slot.
    pub fn delay_of(&self, slot: u32) -> SimDuration {
        SimDuration::from_us(self.slot_us * slot as u64)
    }

    /// Probability that exactly one of `n` independent contenders occupies
    /// the earliest occupied slot (i.e. a successful, collision-free beacon
    /// this BP). Computed exactly; used by tests and the scalability
    /// analysis in the experiment harness.
    ///
    /// Derivation: condition on the earliest occupied slot being `s`; the
    /// probability all `n` draws land in `s..=w` with exactly one at `s`
    /// and none earlier is `n · (1/k) · ((k-s-1)/k)^{n-1}` summed over `s`,
    /// with `k = w + 1`.
    pub fn success_probability(&self, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let k = (self.w + 1) as f64;
        let n_f = n as f64;
        let mut p = 0.0;
        for s in 0..=self.w {
            let tail = (k - s as f64 - 1.0) / k; // P(a given other draw > s)
            p += n_f * (1.0 / k) * tail.powf(n_f - 1.0);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn paper_window_parameters() {
        let c = ContentionWindow::paper();
        assert_eq!(c.w, 30);
        assert_eq!(c.slot_count(), 31);
        assert_eq!(c.span(), SimDuration::from_us(279));
    }

    #[test]
    fn draws_cover_range_uniformly() {
        let c = ContentionWindow::paper();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut counts = vec![0u32; c.slot_count() as usize];
        let n = 310_000;
        for _ in 0..n {
            counts[c.draw_slot(&mut rng) as usize] += 1;
        }
        let expect = n as f64 / 31.0;
        for (slot, &cnt) in counts.iter().enumerate() {
            assert!(
                (cnt as f64 - expect).abs() < expect * 0.05,
                "slot {slot}: {cnt} vs expected {expect}"
            );
        }
    }

    #[test]
    fn delay_scales_with_slot() {
        let c = ContentionWindow::new(10, 9);
        assert_eq!(c.delay_of(0), SimDuration::ZERO);
        assert_eq!(c.delay_of(7), SimDuration::from_us(63));
    }

    #[test]
    fn success_probability_degenerate_cases() {
        let c = ContentionWindow::paper();
        assert_eq!(c.success_probability(0), 0.0);
        assert!((c.success_probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn success_probability_decreases_with_contenders() {
        let c = ContentionWindow::paper();
        let mut last = 1.1;
        for n in [1u32, 2, 5, 10, 50, 100, 300, 500] {
            let p = c.success_probability(n);
            assert!(p < last, "p({n}) = {p} not decreasing");
            assert!(p > 0.0);
            last = p;
        }
        // With hundreds of contenders in 31 slots, collisions dominate —
        // the root cause of TSF's beacon-collision scalability failure.
        assert!(c.success_probability(300) < 0.25);
    }

    #[test]
    fn success_probability_matches_monte_carlo() {
        let c = ContentionWindow::new(7, 9);
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let n = 5u32;
        let trials = 100_000;
        let mut successes = 0u32;
        for _ in 0..trials {
            let slots: Vec<u32> = (0..n).map(|_| c.draw_slot(&mut rng)).collect();
            let min = *slots.iter().min().unwrap();
            if slots.iter().filter(|&&s| s == min).count() == 1 {
                successes += 1;
            }
        }
        let mc = successes as f64 / trials as f64;
        let exact = c.success_probability(n);
        assert!(
            (mc - exact).abs() < 0.01,
            "monte carlo {mc} vs exact {exact}"
        );
    }
}
