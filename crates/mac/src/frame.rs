//! Beacon frame wire formats.
//!
//! The paper's size accounting (Sec. 3.4):
//!
//! * plain TSF beacon: **56 bytes** — 24 bytes of preamble + 32 bytes of
//!   data (the MAC header/FCS plus the 8-byte TSF timestamp and beacon
//!   fields);
//! * SSTSP beacon: **92 bytes** — the same 56 bytes plus the interval index
//!   (4 bytes) and two 128-bit hash values (the beacon HMAC and the
//!   disclosed chain element).
//!
//! The simulator moves typed structs around; serialization exists so the
//! byte-level overheads are *measured*, not asserted, and so the µTESLA MAC
//! is computed over real bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use sstsp_crypto::{BeaconAuth, ChainElement, Mac128};

/// Serialized size of a plain TSF beacon (preamble + data), bytes.
pub const WIRE_LEN_PLAIN: usize = 56;

/// Serialized size of an SSTSP-secured beacon, bytes.
pub const WIRE_LEN_SECURED: usize = 92;

/// PLCP preamble + PHY header length modeled as opaque bytes.
const PREAMBLE_LEN: usize = 24;

/// Length of the MAC-level data portion of a plain beacon.
const PLAIN_DATA_LEN: usize = WIRE_LEN_PLAIN - PREAMBLE_LEN; // 32

/// The unsecured synchronization beacon body `B`: what TSF transmits, and
/// what SSTSP authenticates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconBody {
    /// Sender station id (stand-in for the 6-byte source MAC address).
    pub src: u32,
    /// Beacon sequence number within the sender.
    pub seq: u32,
    /// The TSF timestamp in microseconds, inserted below the MAC layer at
    /// transmission time (the paper's assumption removing medium-access
    /// waiting time from the delay budget).
    pub timestamp_us: u64,
    /// Timing-domain root: the station id whose clock this beacon's time
    /// descends from (stand-in for the BSSID field). Equal to `src` for
    /// single-hop operation; multi-hop relays propagate their reference's
    /// root so competing timing domains can merge deterministically.
    pub root: u32,
    /// Hop distance of the *sender* from the timing-domain root (0 for the
    /// reference itself). Lets multi-hop receivers prefer shorter timing
    /// paths and prevents follow-loops.
    pub hop: u32,
}

impl BeaconBody {
    /// Serialize to the 56-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(WIRE_LEN_PLAIN);
        // Preamble: fixed training pattern (contents irrelevant, length is
        // what the airtime accounting uses).
        buf.put_bytes(0xAA, PREAMBLE_LEN);
        buf.put_u64_le(self.timestamp_us);
        buf.put_u32_le(self.src);
        buf.put_u32_le(self.seq);
        buf.put_u32_le(self.root);
        buf.put_u32_le(self.hop);
        // Remaining MAC header bytes (duration, capability, FCS...)
        // modeled as padding.
        buf.put_bytes(0x00, PLAIN_DATA_LEN - 24);
        debug_assert_eq!(buf.len(), WIRE_LEN_PLAIN);
        buf.freeze()
    }

    /// The bytes the µTESLA HMAC covers: the beacon data without the PHY
    /// preamble (a receiver authenticates the frame, not the radio
    /// training sequence). Returned as a stack array — this runs once per
    /// receiver per beacon, so it must not allocate. Byte-identical to
    /// `encode()[PREAMBLE_LEN..]`.
    pub fn auth_bytes(&self) -> [u8; PLAIN_DATA_LEN] {
        let mut out = [0u8; PLAIN_DATA_LEN];
        out[..8].copy_from_slice(&self.timestamp_us.to_le_bytes());
        out[8..12].copy_from_slice(&self.src.to_le_bytes());
        out[12..16].copy_from_slice(&self.seq.to_le_bytes());
        out[16..20].copy_from_slice(&self.root.to_le_bytes());
        out[20..24].copy_from_slice(&self.hop.to_le_bytes());
        // Bytes 24..32 stay zero: the padding `encode` writes after `hop`.
        out
    }

    /// Decode from wire form.
    pub fn decode(mut wire: Bytes) -> Result<Self, FrameError> {
        if wire.len() != WIRE_LEN_PLAIN {
            return Err(FrameError::Length {
                expected: WIRE_LEN_PLAIN,
                got: wire.len(),
            });
        }
        wire.advance(PREAMBLE_LEN);
        let timestamp_us = wire.get_u64_le();
        let src = wire.get_u32_le();
        let seq = wire.get_u32_le();
        let root = wire.get_u32_le();
        let hop = wire.get_u32_le();
        Ok(BeaconBody {
            src,
            seq,
            timestamp_us,
            root,
            hop,
        })
    }
}

/// An SSTSP-secured beacon: `<B, j, HMAC_{key_j}(B, j), disclosed_key>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecuredBeacon {
    /// The original unsecured beacon `B`.
    pub body: BeaconBody,
    /// µTESLA authentication fields.
    pub auth: BeaconAuth,
}

impl SecuredBeacon {
    /// Serialize to the 92-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(WIRE_LEN_SECURED);
        buf.put_slice(&self.body.encode());
        buf.put_u32_le(self.auth.interval);
        buf.put_slice(&self.auth.mac);
        buf.put_slice(&self.auth.disclosed);
        debug_assert_eq!(buf.len(), WIRE_LEN_SECURED);
        buf.freeze()
    }

    /// Decode from wire form.
    pub fn decode(wire: Bytes) -> Result<Self, FrameError> {
        if wire.len() != WIRE_LEN_SECURED {
            return Err(FrameError::Length {
                expected: WIRE_LEN_SECURED,
                got: wire.len(),
            });
        }
        let body = BeaconBody::decode(wire.slice(..WIRE_LEN_PLAIN))?;
        let mut rest = wire.slice(WIRE_LEN_PLAIN..);
        let interval = rest.get_u32_le();
        let mut mac: Mac128 = [0u8; 16];
        rest.copy_to_slice(&mut mac);
        let mut disclosed: ChainElement = [0u8; 16];
        rest.copy_to_slice(&mut disclosed);
        Ok(SecuredBeacon {
            body,
            auth: BeaconAuth {
                interval,
                mac,
                disclosed,
            },
        })
    }
}

/// Frame decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Wrong wire length.
    Length {
        /// Expected byte count.
        expected: usize,
        /// Actual byte count.
        got: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Length { expected, got } => {
                write!(f, "bad frame length: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> BeaconBody {
        BeaconBody {
            src: 17,
            seq: 4242,
            timestamp_us: 123_456_789,
            root: 17,
            hop: 0,
        }
    }

    fn auth() -> BeaconAuth {
        BeaconAuth {
            interval: 99,
            mac: [0x11; 16],
            disclosed: [0x22; 16],
        }
    }

    #[test]
    fn plain_beacon_is_56_bytes() {
        assert_eq!(body().encode().len(), 56);
    }

    #[test]
    fn secured_beacon_is_92_bytes() {
        let sb = SecuredBeacon {
            body: body(),
            auth: auth(),
        };
        assert_eq!(sb.encode().len(), 92);
    }

    #[test]
    fn plain_roundtrip() {
        let b = body();
        assert_eq!(BeaconBody::decode(b.encode()).unwrap(), b);
    }

    #[test]
    fn secured_roundtrip() {
        let sb = SecuredBeacon {
            body: body(),
            auth: auth(),
        };
        assert_eq!(SecuredBeacon::decode(sb.encode()).unwrap(), sb);
    }

    #[test]
    fn wrong_length_rejected() {
        let short = Bytes::from_static(&[0u8; 10]);
        assert!(matches!(
            BeaconBody::decode(short.clone()),
            Err(FrameError::Length {
                expected: 56,
                got: 10
            })
        ));
        assert!(SecuredBeacon::decode(short).is_err());
    }

    #[test]
    fn auth_bytes_exclude_preamble() {
        let b = body();
        let ab = b.auth_bytes();
        assert_eq!(ab.len(), 32);
        // Timestamp is the first field after the preamble.
        assert_eq!(&ab[..8], &123_456_789u64.to_le_bytes());
    }

    #[test]
    fn auth_bytes_match_encoded_frame() {
        // The stack-array fast path must stay byte-identical to the wire
        // encoding with the preamble stripped.
        let b = BeaconBody {
            src: u32::MAX,
            seq: 0,
            timestamp_us: u64::MAX - 3,
            root: 0xDEAD_BEEF,
            hop: 7,
        };
        assert_eq!(&b.auth_bytes()[..], &b.encode()[PREAMBLE_LEN..]);
        assert_eq!(&body().auth_bytes()[..], &body().encode()[PREAMBLE_LEN..]);
    }

    #[test]
    fn auth_bytes_bind_all_fields() {
        let b1 = body();
        let mut b2 = b1;
        b2.timestamp_us += 1;
        assert_ne!(b1.auth_bytes(), b2.auth_bytes());
        let mut b3 = b1;
        b3.src += 1;
        assert_ne!(b1.auth_bytes(), b3.auth_bytes());
        let mut b4 = b1;
        b4.seq += 1;
        assert_ne!(b1.auth_bytes(), b4.auth_bytes());
        let mut b5 = b1;
        b5.root += 1;
        assert_ne!(b1.auth_bytes(), b5.auth_bytes());
        let mut b6 = b1;
        b6.hop += 1;
        assert_ne!(b1.auth_bytes(), b6.auth_bytes());
    }

    #[test]
    fn overhead_matches_paper_budget() {
        let plain = body().encode().len();
        let secured = SecuredBeacon {
            body: body(),
            auth: auth(),
        }
        .encode()
        .len();
        assert_eq!(secured - plain, 36, "4B index + 16B MAC + 16B key");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn plain_roundtrip_any_fields(src in any::<u32>(), seq in any::<u32>(),
                                      ts in any::<u64>(), root in any::<u32>(),
                                      hop in any::<u32>()) {
            let b = BeaconBody { src, seq, timestamp_us: ts, root, hop };
            prop_assert_eq!(BeaconBody::decode(b.encode()).unwrap(), b);
        }

        #[test]
        fn secured_roundtrip_any_fields(
            src in any::<u32>(), seq in any::<u32>(), ts in any::<u64>(),
            root in any::<u32>(), hop in any::<u32>(), interval in any::<u32>(),
            mac in proptest::array::uniform16(any::<u8>()),
            disclosed in proptest::array::uniform16(any::<u8>()),
        ) {
            let sb = SecuredBeacon {
                body: BeaconBody { src, seq, timestamp_us: ts, root, hop },
                auth: BeaconAuth { interval, mac, disclosed },
            };
            prop_assert_eq!(SecuredBeacon::decode(sb.encode()).unwrap(), sb);
        }
    }
}
