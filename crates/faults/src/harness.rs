//! The fault harness: executes a [`FaultPlan`] against a run while feeding
//! an [`InvariantChecker`] every observation.
//!
//! The harness is one [`EngineHook`]: at each BP start it translates due
//! plan events into engine [`FaultAction`]s, per delivery it applies
//! corruption and targeted-loss faults from its *own* RNG stream (the
//! engine's streams are never touched, so a fault run is a pure function of
//! scenario seed + plan), and it forwards every delivery observation and BP
//! view to the embedded checker — registering clock exemptions and
//! disturbance notices so sanctioned physical faults don't read as protocol
//! violations. What remains after the exemptions is exactly the claim under
//! test: *no fault schedule can make a correct implementation accept a
//! beacon it must reject or move a clock it must not move.*

use protocols::api::{AnchorRegistry, BeaconPayload, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use simcore::SimTime;
use sstsp::engine::{Network, RunResult};
use sstsp::instrument::{
    BpView, DeliveryCtx, DeliveryFate, DeliveryObs, EngineHook, FaultAction, HookCaps,
};
use sstsp::invariants::{InvariantChecker, InvariantKind, Violation};
use sstsp::scenario::ScenarioConfig;
use sstsp::trace::TraceRecorder;
use sstsp_telemetry::TraceEvent;

use crate::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase};

/// Fault injector + invariant checker, attached to a run as a single hook.
pub struct FaultHarness {
    events: Vec<FaultEvent>,
    checker: InvariantChecker,
    rng: ChaCha12Rng,
}

impl FaultHarness {
    /// Build a harness for `plan` against `scenario`. The scenario must be
    /// the one the network is built from (the checker reads its protocol
    /// parameters — including a plan-shortened chain).
    pub fn new(plan: &FaultPlan, scenario: &ScenarioConfig) -> Self {
        FaultHarness {
            events: plan.events.clone(),
            checker: InvariantChecker::for_scenario(scenario),
            rng: ChaCha12Rng::seed_from_u64(plan.seed),
        }
    }

    /// Violations the embedded checker recorded.
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// Consume the harness, returning the recorded violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.checker.into_violations()
    }

    fn corrupt(&mut self, field: CorruptField, payload: &mut BeaconPayload) {
        let BeaconPayload::Secured(body, auth) = payload else {
            return;
        };
        match field {
            CorruptField::Timestamp => {
                // A mid-weight bit flip: large enough to matter (64 µs),
                // small enough to sometimes slip under a loose guard.
                body.timestamp_us ^= 1 << 6;
            }
            CorruptField::Mac => {
                auth.mac[0] ^= 0xff;
                auth.mac[7] ^= 0x0f;
            }
            CorruptField::Disclosed => {
                auth.disclosed[0] ^= 0xff;
                auth.disclosed[15] ^= 0x0f;
            }
            CorruptField::Truncate => {
                *payload = BeaconPayload::Plain(*body);
            }
        }
    }
}

impl EngineHook for FaultHarness {
    // Deliberately NOT fast-path-safe: the harness injects faults at BP
    // start and rewrites/drops payloads per delivery, so it needs the
    // engine's full per-event slow path. Spelled out so a future default
    // change cannot silently put fault runs on the fast path.
    fn capabilities(&self) -> HookCaps {
        HookCaps {
            fastpath_safe: false,
        }
    }

    fn on_run_start(&mut self, scenario: &ScenarioConfig, anchors: &AnchorRegistry) {
        self.checker.on_run_start(scenario, anchors);
    }

    fn on_bp_start(&mut self, bp: u64, _t0: SimTime, actions: &mut Vec<FaultAction>) {
        let mut disturbed = false;
        for ev in &self.events {
            if ev.start_bp == bp {
                match ev.kind {
                    FaultKind::BurstLoss { p } => actions.push(FaultAction::SetBurstLoss(p)),
                    FaultKind::Crash {
                        node,
                        rejoin_after_bps,
                    } => actions.push(FaultAction::Crash {
                        node,
                        rejoin_after_bps,
                    }),
                    FaultKind::KillReference { rejoin_after_bps } => {
                        actions.push(FaultAction::KillReference { rejoin_after_bps })
                    }
                    FaultKind::ClockStep { node, delta_us } => {
                        // A glitched oscillator invalidates that station's
                        // monotonicity baseline for the rest of the run
                        // (its adjusted clock legitimately jumps, then its
                        // re-discipline slews it again).
                        self.checker.exempt_clock(node, u64::MAX);
                        actions.push(FaultAction::ClockStep { node, delta_us });
                    }
                    FaultKind::ClockFreeze { node } => {
                        self.checker.exempt_clock(node, u64::MAX);
                        actions.push(FaultAction::ClockFreeze { node });
                    }
                    FaultKind::Jam => actions.push(FaultAction::SetJammed(true)),
                    FaultKind::CrashDomain {
                        domain,
                        rejoin_after_bps,
                    } => actions.push(FaultAction::CrashDomain {
                        domain,
                        rejoin_after_bps,
                    }),
                    FaultKind::KillBridge {
                        bridge,
                        rejoin_after_bps,
                    } => actions.push(FaultAction::KillBridge {
                        bridge,
                        rejoin_after_bps,
                    }),
                    FaultKind::Corrupt { .. }
                    | FaultKind::DisclosureLoss { .. }
                    | FaultKind::ChainExhaust { .. } => {}
                }
            }
            if ev.end_bp.checked_add(1) == Some(bp) {
                match ev.kind {
                    FaultKind::BurstLoss { .. } => actions.push(FaultAction::SetBurstLoss(0.0)),
                    FaultKind::ClockFreeze { node } => {
                        actions.push(FaultAction::ClockUnfreeze { node })
                    }
                    FaultKind::Jam => actions.push(FaultAction::SetJammed(false)),
                    _ => {}
                }
            }
            if ev.active_at(bp) {
                disturbed = true;
            }
            // Past chain exhaustion nothing is acceptable, so the network
            // free-runs for good: keep convergence invariants suspended
            // from slightly before the exhaustion point (clock retargets
            // aim m intervals ahead) to the end of the run.
            if let FaultKind::ChainExhaust { intervals } = ev.kind {
                const EXHAUST_MARGIN_BPS: u64 = 16;
                if bp + EXHAUST_MARGIN_BPS >= intervals {
                    disturbed = true;
                }
            }
        }
        if disturbed {
            self.checker.note_disturbance(bp);
        }
    }

    fn on_delivery(&mut self, ctx: &DeliveryCtx, payload: &mut BeaconPayload) -> DeliveryFate {
        for i in 0..self.events.len() {
            let ev = self.events[i];
            if !ev.active_at(ctx.bp) {
                continue;
            }
            match ev.kind {
                FaultKind::Corrupt { field, p } if self.rng.random_bool(p) => {
                    self.corrupt(field, payload);
                }
                FaultKind::DisclosureLoss { p }
                    if payload.is_secured() && self.rng.random_bool(p) =>
                {
                    return DeliveryFate::Drop;
                }
                _ => {}
            }
        }
        DeliveryFate::Deliver
    }

    fn post_delivery(&mut self, obs: &DeliveryObs<'_>) {
        self.checker.post_delivery(obs);
    }

    fn on_bp_end(&mut self, view: &BpView<'_>) {
        self.checker.on_bp_end(view);
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.checker.on_run_end(result);
    }
}

/// Everything a fault run produces.
pub struct CaseOutcome {
    /// The run's aggregate result.
    pub result: RunResult,
    /// Invariant violations observed under the fault plan (empty for a
    /// correct implementation, whatever the plan).
    pub violations: Vec<Violation>,
}

/// Execute `case`: build its scenario (chain shortened if the plan says
/// so), run it under the fault harness, and return result + violations.
/// Deterministic: the same case always produces the same outcome.
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let scenario = case.scenario();
    let mut harness = FaultHarness::new(&case.plan, &scenario);
    let result = Network::build(&scenario).run_with_hook(&mut harness);
    CaseOutcome {
        result,
        violations: harness.into_violations(),
    }
}

/// Stable snake-case token for an invariant kind in trace output.
fn invariant_token(kind: InvariantKind) -> &'static str {
    match kind {
        InvariantKind::ClockMonotonicity => "clock_monotonicity",
        InvariantKind::GuardInfluenceBound => "guard_influence_bound",
        InvariantKind::KeyFreshness => "key_freshness",
        InvariantKind::SpreadBound => "spread_bound",
    }
}

/// [`FaultHarness`] and [`TraceRecorder`] composed into one hook: the fault
/// plan executes exactly as in [`run_case`] while the recorder captures the
/// event stream, interleaving the fault layer's own observations — hook
/// drops and invariant violations — at the position they happened.
pub(crate) struct TracedHarness {
    pub(crate) harness: FaultHarness,
    pub(crate) recorder: TraceRecorder,
    pub(crate) violations_seen: usize,
}

impl TracedHarness {
    /// Mirror checker violations recorded since the last call into the
    /// trace, in order.
    fn drain_violations(&mut self) {
        let all = self.harness.violations();
        for v in &all[self.violations_seen..] {
            self.recorder.push(TraceEvent::Violation {
                bp: v.bp,
                kind: invariant_token(v.kind).to_string(),
                node: v.node,
                detail: v.detail.clone(),
            });
        }
        self.violations_seen = all.len();
    }
}

impl EngineHook for TracedHarness {
    // Not fast-path-safe: inherits the inner harness's need for per-event
    // fault injection, and the recorded trace doubles as the replay
    // golden, which pins the slow path's exact event stream.
    fn capabilities(&self) -> HookCaps {
        HookCaps {
            fastpath_safe: false,
        }
    }

    fn on_run_start(&mut self, scenario: &ScenarioConfig, anchors: &AnchorRegistry) {
        self.harness.on_run_start(scenario, anchors);
        self.recorder.on_run_start(scenario, anchors);
    }

    fn on_bp_start(&mut self, bp: u64, t0: SimTime, actions: &mut Vec<FaultAction>) {
        self.harness.on_bp_start(bp, t0, actions);
    }

    fn on_beacon_tx(&mut self, bp: u64, src: NodeId, t_tx: SimTime) {
        self.recorder.on_beacon_tx(bp, src, t_tx);
    }

    fn on_delivery(&mut self, ctx: &DeliveryCtx, payload: &mut BeaconPayload) -> DeliveryFate {
        let fate = self.harness.on_delivery(ctx, payload);
        if fate == DeliveryFate::Drop {
            self.recorder.push(TraceEvent::HookDrop {
                bp: ctx.bp,
                src: ctx.src,
                dst: ctx.dst,
            });
        }
        fate
    }

    fn post_delivery(&mut self, obs: &DeliveryObs<'_>) {
        self.harness.post_delivery(obs);
        self.recorder.post_delivery(obs);
        self.drain_violations();
    }

    fn on_bp_end(&mut self, view: &BpView<'_>) {
        self.harness.on_bp_end(view);
        self.drain_violations();
        self.recorder.on_bp_end(view);
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.harness.on_run_end(result);
        self.drain_violations();
        self.recorder.on_run_end(result);
    }
}

/// Everything a traced fault run produces.
pub struct TracedOutcome {
    /// The run's aggregate result.
    pub result: RunResult,
    /// Invariant violations observed under the fault plan.
    pub violations: Vec<Violation>,
    /// The full structured trace of the run, violations interleaved.
    pub events: Vec<TraceEvent>,
}

/// [`run_case`] with trace recording: same fault execution (the plan's RNG
/// stream and the engine's are both untouched by the recorder, so the run
/// is bit-identical to an untraced one), plus the structured event stream.
pub fn run_case_traced(case: &FuzzCase) -> TracedOutcome {
    let scenario = case.scenario();
    let mut hook = TracedHarness {
        harness: FaultHarness::new(&case.plan, &scenario),
        recorder: TraceRecorder::new(),
        violations_seen: 0,
    };
    let result = Network::build(&scenario).run_with_hook(&mut hook);
    let TracedHarness {
        harness, recorder, ..
    } = hook;
    TracedOutcome {
        result,
        violations: harness.into_violations(),
        events: recorder.into_events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn traced_run_matches_untraced_and_records_hook_drops() {
        // Disclosure loss exercises the hook-drop path; burst loss adds
        // channel-level losses the recorder must NOT see as hook drops.
        let case =
            FuzzCase::from_str("n=6 dur=10 seed=11 m=4 delta=300 plan=5 discloss@5..60:p=0.5")
                .expect("valid spec");
        let plain = run_case(&case);
        let traced = run_case_traced(&case);
        assert_eq!(plain.result.tx_successes, traced.result.tx_successes);
        assert_eq!(
            plain.result.guard_rejections,
            traced.result.guard_rejections
        );
        assert_eq!(
            plain.result.peak_spread_us, traced.result.peak_spread_us,
            "recorder perturbed the run"
        );
        assert_eq!(plain.violations.len(), traced.violations.len());
        let drops = traced
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::HookDrop { .. }))
            .count();
        assert!(drops > 0, "disclosure-loss plan produced no hook drops");
        assert!(matches!(
            traced.events.first(),
            Some(TraceEvent::RunStart { .. })
        ));
        assert!(matches!(
            traced.events.last(),
            Some(TraceEvent::RunEnd { .. })
        ));
        // Violations in the trace mirror the checker's list one-to-one.
        let traced_violations = traced
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Violation { .. }))
            .count();
        assert_eq!(traced_violations, traced.violations.len());
    }
}
