//! The fault harness: executes a [`FaultPlan`] against a run while feeding
//! an [`InvariantChecker`] every observation.
//!
//! The harness is one [`EngineHook`]: at each BP start it translates due
//! plan events into engine [`FaultAction`]s, per delivery it applies
//! corruption and targeted-loss faults from its *own* RNG stream (the
//! engine's streams are never touched, so a fault run is a pure function of
//! scenario seed + plan), and it forwards every delivery observation and BP
//! view to the embedded checker — registering clock exemptions and
//! disturbance notices so sanctioned physical faults don't read as protocol
//! violations. What remains after the exemptions is exactly the claim under
//! test: *no fault schedule can make a correct implementation accept a
//! beacon it must reject or move a clock it must not move.*

use protocols::api::{AnchorRegistry, BeaconPayload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use simcore::SimTime;
use sstsp::engine::{Network, RunResult};
use sstsp::instrument::{BpView, DeliveryCtx, DeliveryFate, DeliveryObs, EngineHook, FaultAction};
use sstsp::invariants::{InvariantChecker, Violation};
use sstsp::scenario::ScenarioConfig;

use crate::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase};

/// Fault injector + invariant checker, attached to a run as a single hook.
pub struct FaultHarness {
    events: Vec<FaultEvent>,
    checker: InvariantChecker,
    rng: ChaCha12Rng,
}

impl FaultHarness {
    /// Build a harness for `plan` against `scenario`. The scenario must be
    /// the one the network is built from (the checker reads its protocol
    /// parameters — including a plan-shortened chain).
    pub fn new(plan: &FaultPlan, scenario: &ScenarioConfig) -> Self {
        FaultHarness {
            events: plan.events.clone(),
            checker: InvariantChecker::for_scenario(scenario),
            rng: ChaCha12Rng::seed_from_u64(plan.seed),
        }
    }

    /// Violations the embedded checker recorded.
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// Consume the harness, returning the recorded violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.checker.into_violations()
    }

    fn corrupt(&mut self, field: CorruptField, payload: &mut BeaconPayload) {
        let BeaconPayload::Secured(body, auth) = payload else {
            return;
        };
        match field {
            CorruptField::Timestamp => {
                // A mid-weight bit flip: large enough to matter (64 µs),
                // small enough to sometimes slip under a loose guard.
                body.timestamp_us ^= 1 << 6;
            }
            CorruptField::Mac => {
                auth.mac[0] ^= 0xff;
                auth.mac[7] ^= 0x0f;
            }
            CorruptField::Disclosed => {
                auth.disclosed[0] ^= 0xff;
                auth.disclosed[15] ^= 0x0f;
            }
            CorruptField::Truncate => {
                *payload = BeaconPayload::Plain(*body);
            }
        }
    }
}

impl EngineHook for FaultHarness {
    fn on_run_start(&mut self, scenario: &ScenarioConfig, anchors: &AnchorRegistry) {
        self.checker.on_run_start(scenario, anchors);
    }

    fn on_bp_start(&mut self, bp: u64, _t0: SimTime, actions: &mut Vec<FaultAction>) {
        let mut disturbed = false;
        for ev in &self.events {
            if ev.start_bp == bp {
                match ev.kind {
                    FaultKind::BurstLoss { p } => actions.push(FaultAction::SetBurstLoss(p)),
                    FaultKind::Crash {
                        node,
                        rejoin_after_bps,
                    } => actions.push(FaultAction::Crash {
                        node,
                        rejoin_after_bps,
                    }),
                    FaultKind::KillReference { rejoin_after_bps } => {
                        actions.push(FaultAction::KillReference { rejoin_after_bps })
                    }
                    FaultKind::ClockStep { node, delta_us } => {
                        // A glitched oscillator invalidates that station's
                        // monotonicity baseline for the rest of the run
                        // (its adjusted clock legitimately jumps, then its
                        // re-discipline slews it again).
                        self.checker.exempt_clock(node, u64::MAX);
                        actions.push(FaultAction::ClockStep { node, delta_us });
                    }
                    FaultKind::ClockFreeze { node } => {
                        self.checker.exempt_clock(node, u64::MAX);
                        actions.push(FaultAction::ClockFreeze { node });
                    }
                    FaultKind::Jam => actions.push(FaultAction::SetJammed(true)),
                    FaultKind::Corrupt { .. }
                    | FaultKind::DisclosureLoss { .. }
                    | FaultKind::ChainExhaust { .. } => {}
                }
            }
            if ev.end_bp.checked_add(1) == Some(bp) {
                match ev.kind {
                    FaultKind::BurstLoss { .. } => actions.push(FaultAction::SetBurstLoss(0.0)),
                    FaultKind::ClockFreeze { node } => {
                        actions.push(FaultAction::ClockUnfreeze { node })
                    }
                    FaultKind::Jam => actions.push(FaultAction::SetJammed(false)),
                    _ => {}
                }
            }
            if ev.active_at(bp) {
                disturbed = true;
            }
            // Past chain exhaustion nothing is acceptable, so the network
            // free-runs for good: keep convergence invariants suspended
            // from slightly before the exhaustion point (clock retargets
            // aim m intervals ahead) to the end of the run.
            if let FaultKind::ChainExhaust { intervals } = ev.kind {
                const EXHAUST_MARGIN_BPS: u64 = 16;
                if bp + EXHAUST_MARGIN_BPS >= intervals {
                    disturbed = true;
                }
            }
        }
        if disturbed {
            self.checker.note_disturbance(bp);
        }
    }

    fn on_delivery(&mut self, ctx: &DeliveryCtx, payload: &mut BeaconPayload) -> DeliveryFate {
        for i in 0..self.events.len() {
            let ev = self.events[i];
            if !ev.active_at(ctx.bp) {
                continue;
            }
            match ev.kind {
                FaultKind::Corrupt { field, p } if self.rng.random_bool(p) => {
                    self.corrupt(field, payload);
                }
                FaultKind::DisclosureLoss { p }
                    if payload.is_secured() && self.rng.random_bool(p) =>
                {
                    return DeliveryFate::Drop;
                }
                _ => {}
            }
        }
        DeliveryFate::Deliver
    }

    fn post_delivery(&mut self, obs: &DeliveryObs<'_>) {
        self.checker.post_delivery(obs);
    }

    fn on_bp_end(&mut self, view: &BpView<'_>) {
        self.checker.on_bp_end(view);
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.checker.on_run_end(result);
    }
}

/// Everything a fault run produces.
pub struct CaseOutcome {
    /// The run's aggregate result.
    pub result: RunResult,
    /// Invariant violations observed under the fault plan (empty for a
    /// correct implementation, whatever the plan).
    pub violations: Vec<Violation>,
}

/// Execute `case`: build its scenario (chain shortened if the plan says
/// so), run it under the fault harness, and return result + violations.
/// Deterministic: the same case always produces the same outcome.
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let scenario = case.scenario();
    let mut harness = FaultHarness::new(&case.plan, &scenario);
    let result = Network::build(&scenario).run_with_hook(&mut harness);
    CaseOutcome {
        result,
        violations: harness.into_violations(),
    }
}
