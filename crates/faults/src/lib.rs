//! # sstsp-faults — deterministic fault injection and scenario fuzzing
//!
//! The paper argues SSTSP stays correct under loss, corruption, churn and
//! attack; this crate *adversarially exercises* that claim against the
//! reproduction:
//!
//! * [`plan`] — composable, sim-time-scheduled fault plans (burst loss,
//!   beacon bit-flips and truncation, node crash + rejoin, reference kill,
//!   clock step/freeze glitches, µTESLA disclosure loss, chain exhaustion)
//!   with a one-line replayable case spec;
//! * [`harness`] — the [`sstsp::instrument::EngineHook`] that executes a
//!   plan against a run while feeding every observation to the protocol
//!   invariant checker ([`sstsp::invariants`]);
//! * [`replay`] — trace-driven record/replay: re-executes a recorded JSONL
//!   trace, drives the MAC windows from the recorded beacon schedule, and
//!   cross-checks every event against the live model, reporting structured
//!   divergences (BP index, event kind, expected vs. recorded);
//! * [`shrink`] — greedy deterministic minimization of failing cases;
//! * [`fuzz`] — seeded random fault plans swept across N / m / δ, with
//!   automatic shrinking of any violation to a minimal reproducer;
//! * [`matrix`] — one representative plan per fault class (the
//!   EXPERIMENTS.md fault matrix and the CI smoke run).
//!
//! Everything is a pure function of seeds: a reported reproducer replays
//! bit-identically from its printed spec, on any machine.
//!
//! The `mutation-hooks` feature additionally compiles the planted protocol
//! bugs in `sstsp-crypto` so the `planted_bug` integration test can verify
//! the checker and fuzzer actually detect real acceptance bugs — a
//! mutation-style sanity check on the checking machinery itself.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fuzz;
pub mod harness;
pub mod matrix;
pub mod plan;
pub mod replay;
pub mod shrink;

pub use fuzz::{fuzz, FuzzConfig, FuzzFailure, FuzzReport};
pub use harness::{run_case, run_case_traced, CaseOutcome, FaultHarness, TracedOutcome};
pub use plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase};
pub use replay::{
    replay, replay_trace, to_replayable_jsonl, Divergence, RecordedSchedule, ReplayError,
    ReplayReport,
};
pub use shrink::shrink;
