//! Scenario fuzzer / fault-matrix CLI.
//!
//! ```text
//! scenario_fuzz fuzz [--iters N] [--seed S] [--mesh] [--campaign]
//!                                             random fault plans, shrink any violation
//!                                             (--mesh adds a topology dimension,
//!                                              --campaign a coordinated-adversary one)
//! scenario_fuzz replay "<spec>"               re-run a one-line reproducer spec
//! scenario_fuzz matrix                        one representative run per fault class
//! ```
//!
//! Exit status: 0 when every invariant held, 1 when a violation was found
//! (the shrunk reproducer spec is printed for `replay`), 2 on usage errors.

use std::process::ExitCode;

use sstsp_faults::fuzz::{fuzz, FuzzConfig};
use sstsp_faults::harness::run_case;
use sstsp_faults::matrix::run_matrix;
use sstsp_faults::plan::FuzzCase;

fn usage() -> ExitCode {
    eprintln!(
        "usage: scenario_fuzz fuzz [--iters N] [--seed S] [--mesh] [--campaign] \
         | replay \"<spec>\" | matrix"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => {
            let mut cfg = FuzzConfig::default();
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                if flag == "--mesh" {
                    cfg.mesh = true;
                    continue;
                }
                if flag == "--campaign" {
                    cfg.campaign = true;
                    continue;
                }
                let Some(value) = it.next() else {
                    return usage();
                };
                match (flag.as_str(), value.parse::<u64>()) {
                    ("--iters", Ok(v)) => cfg.iterations = v as u32,
                    ("--seed", Ok(v)) => cfg.master_seed = v,
                    _ => return usage(),
                }
            }
            println!(
                "fuzzing {} cases from master seed {}{}{}",
                cfg.iterations,
                cfg.master_seed,
                if cfg.mesh { " (mesh topologies)" } else { "" },
                if cfg.campaign {
                    " (adversary campaigns)"
                } else {
                    ""
                }
            );
            let report = fuzz(&cfg, |line| println!("  {line}"));
            match report.failure {
                None => {
                    println!("PASS: {} cases, no invariant violations", report.cases_run);
                    ExitCode::SUCCESS
                }
                Some(f) => {
                    println!("FAIL after {} cases", report.cases_run);
                    println!("original: {}", f.original);
                    println!("shrunk:   {}", f.shrunk);
                    for v in &f.violations {
                        println!("  {v}");
                    }
                    println!("replay with: scenario_fuzz replay \"{}\"", f.shrunk);
                    ExitCode::FAILURE
                }
            }
        }
        Some("replay") => {
            let Some(spec) = args.get(1) else {
                return usage();
            };
            let case: FuzzCase = match spec.parse() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let outcome = run_case(&case);
            println!(
                "replayed: sync={} peak_spread={:.1} µs",
                outcome.result.sync_latency_s.is_some(),
                outcome.result.peak_spread_us
            );
            if outcome.violations.is_empty() {
                println!("PASS: no invariant violations");
                ExitCode::SUCCESS
            } else {
                println!("FAIL: {} violation(s)", outcome.violations.len());
                for v in &outcome.violations {
                    println!("  {v}");
                }
                ExitCode::FAILURE
            }
        }
        Some("matrix") => {
            println!(
                "{:<30} {:>10} {:>7} {:>12}  spec",
                "fault class", "violations", "synced", "peak µs"
            );
            let mut failed = false;
            for row in run_matrix() {
                failed |= row.violations > 0;
                println!(
                    "{:<30} {:>10} {:>7} {:>12.1}  {}",
                    row.label, row.violations, row.synced, row.peak_spread_us, row.case
                );
            }
            if failed {
                println!("FAIL: violations under fault injection");
                ExitCode::FAILURE
            } else {
                println!("PASS: all invariants held under every fault class");
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
