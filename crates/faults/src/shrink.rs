//! Greedy deterministic case shrinking.
//!
//! Given a failing [`FuzzCase`] and a predicate that re-checks failure, the
//! shrinker repeats four reduction passes to a fixpoint: drop whole events,
//! halve event windows, halve fault magnitudes (clock-step sizes; loss and
//! corruption probabilities are *raised* toward 1 — a deterministic fault
//! is simpler to reason about than a probabilistic one), and shrink the
//! scenario itself (fewer stations, shorter run). Every candidate is
//! validated by re-running the predicate, so the final case is a local
//! minimum that still fails — and, being a plain [`FuzzCase`], replays from
//! its one-line spec.

use crate::fuzz::retarget_nodes;
use crate::plan::{FaultKind, FuzzCase, MeshSpec};

/// Smallest network the shrinker will try.
const MIN_NODES: u32 = 4;
/// Shortest run the shrinker will try, seconds.
const MIN_DURATION_S: f64 = 5.0;

/// Shrink `case` while `still_fails` holds. `still_fails(&case)` must be
/// `true` on entry; the result is a minimal failing case under the passes
/// above. Fully deterministic — same input and predicate, same output.
pub fn shrink<F: FnMut(&FuzzCase) -> bool>(mut case: FuzzCase, mut still_fails: F) -> FuzzCase {
    loop {
        let mut progress = false;

        // Pass 1: drop events one at a time, restarting after each success
        // (dropping one event can make another droppable).
        let mut i = 0;
        while i < case.plan.events.len() {
            let mut cand = case.clone();
            cand.plan.events.remove(i);
            if still_fails(&cand) {
                case = cand;
                progress = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: halve each surviving event's window toward a point.
        for i in 0..case.plan.events.len() {
            loop {
                let ev = case.plan.events[i];
                let len = ev.end_bp.saturating_sub(ev.start_bp);
                if len == 0 {
                    break;
                }
                let mut cand = case.clone();
                cand.plan.events[i].end_bp = ev.start_bp + len / 2;
                if still_fails(&cand) {
                    case = cand;
                    progress = true;
                } else {
                    break;
                }
            }
        }

        // Pass 3: simplify magnitudes — steps toward zero, probabilities
        // toward certainty.
        for i in 0..case.plan.events.len() {
            let simpler = match case.plan.events[i].kind {
                FaultKind::ClockStep { node, delta_us } if delta_us.abs() > 1.0 => {
                    Some(FaultKind::ClockStep {
                        node,
                        delta_us: (delta_us / 2.0 * 100.0).round() / 100.0,
                    })
                }
                FaultKind::BurstLoss { p } if p < 1.0 => Some(FaultKind::BurstLoss { p: 1.0 }),
                FaultKind::DisclosureLoss { p } if p < 1.0 => {
                    Some(FaultKind::DisclosureLoss { p: 1.0 })
                }
                FaultKind::Corrupt { field, p } if p < 1.0 => {
                    Some(FaultKind::Corrupt { field, p: 1.0 })
                }
                _ => None,
            };
            if let Some(kind) = simpler {
                let mut cand = case.clone();
                cand.plan.events[i].kind = kind;
                if still_fails(&cand) {
                    case = cand;
                    progress = true;
                }
            }
        }

        // Pass 4: shrink the scenario dimensions.
        if case.n > MIN_NODES {
            let mut cand = case.clone();
            cand.n = (case.n / 2).max(MIN_NODES);
            retarget(&mut cand);
            if still_fails(&cand) {
                case = cand;
                progress = true;
            }
        }
        if case.duration_s > MIN_DURATION_S {
            let mut cand = case.clone();
            cand.duration_s = (case.duration_s / 2.0).max(MIN_DURATION_S);
            // Drop events scheduled past the shortened horizon.
            let bps = cand.total_bps();
            cand.plan.events.retain(|ev| ev.start_bp < bps);
            if !cand.plan.events.is_empty() && still_fails(&cand) {
                case = cand;
                progress = true;
            }
        }

        // Pass 5: shrink the topology dimension — first try dropping the
        // mesh entirely (a single-hop reproducer is the simplest of all),
        // then walk bridged dimensions toward the smallest failing graph
        // (fewest domains, then thinnest islands).
        if case.mesh.is_some() {
            let mut cand = case.clone();
            cand.mesh = None;
            retarget(&mut cand);
            if still_fails(&cand) {
                case = cand;
                progress = true;
            }
        }
        if let Some(MeshSpec::Bridged {
            domains,
            cols,
            rows,
        }) = case.mesh
        {
            let smaller = [
                (domains - 1, cols, rows),
                (domains, cols - 1, rows),
                (domains, cols, rows - 1),
            ];
            for (d, c, r) in smaller {
                if d < 2 || c < 1 || r < 1 {
                    continue;
                }
                let mut cand = case.clone();
                cand.mesh = Some(MeshSpec::Bridged {
                    domains: d,
                    cols: c,
                    rows: r,
                });
                retarget(&mut cand);
                if still_fails(&cand) {
                    case = cand;
                    progress = true;
                    break;
                }
            }
        }

        // Pass 6: shrink the adversary — first try dropping the campaign
        // entirely (an honest-network reproducer is simpler), then walk
        // the coalition down toward the minimal colluding subset.
        if case.campaign.is_some() {
            let mut cand = case.clone();
            cand.campaign = None;
            if still_fails(&cand) {
                case = cand;
                progress = true;
            }
        }
        if let Some(c) = case.campaign {
            if c.attackers > c.min_attackers() {
                let mut cand = case.clone();
                cand.campaign = Some(sstsp::scenario::CampaignSpec {
                    attackers: c.attackers - 1,
                    ..c
                });
                if still_fails(&cand) {
                    case = cand;
                    progress = true;
                }
            }
        }

        if !progress {
            return case;
        }
    }
}

/// Re-aim node-targeted faults into the candidate's actual station range
/// after a dimension change (the engine indexes stations directly), and
/// clamp the campaign's coalition into the candidate's station budget
/// (dropping it when the budget can no longer field a valid coalition).
fn retarget(cand: &mut FuzzCase) {
    let n = cand.scenario().n_nodes;
    for ev in &mut cand.plan.events {
        retarget_nodes(&mut ev.kind, n);
    }
    if let Some(mut c) = cand.campaign {
        let (island, n_eff) = cand.campaign_capacity();
        let cap = island.saturating_sub(1).min(n_eff.saturating_sub(2));
        cand.campaign = if cap < c.min_attackers() {
            None
        } else {
            c.attackers = c.attackers.min(cap);
            Some(c)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultPlan};

    /// Synthetic predicate: fails iff the plan still contains a crash of
    /// station 3 — no simulation needed to exercise the passes.
    fn fails(case: &FuzzCase) -> bool {
        case.plan
            .events
            .iter()
            .any(|ev| matches!(ev.kind, FaultKind::Crash { node: 3, .. }))
    }

    #[test]
    fn shrinks_to_the_single_triggering_event() {
        let mut case = FuzzCase::base(16, 40.0, 1);
        case.plan = FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    start_bp: 10,
                    end_bp: 90,
                    kind: FaultKind::BurstLoss { p: 0.4 },
                },
                FaultEvent {
                    start_bp: 20,
                    end_bp: 80,
                    kind: FaultKind::Crash {
                        node: 3,
                        rejoin_after_bps: Some(10),
                    },
                },
                FaultEvent {
                    start_bp: 30,
                    end_bp: 70,
                    kind: FaultKind::Jam,
                },
                FaultEvent {
                    start_bp: 40,
                    end_bp: 60,
                    kind: FaultKind::ClockStep {
                        node: 1,
                        delta_us: -500.0,
                    },
                },
            ],
        };
        let small = shrink(case, fails);
        assert_eq!(small.plan.events.len(), 1, "only the trigger survives");
        assert!(matches!(
            small.plan.events[0].kind,
            FaultKind::Crash { node: 3, .. }
        ));
        // Window collapsed to a point, scenario shrunk to the floors.
        assert_eq!(small.plan.events[0].start_bp, small.plan.events[0].end_bp);
        assert_eq!(small.n, MIN_NODES);
        assert_eq!(small.duration_s, MIN_DURATION_S);
    }

    #[test]
    fn mesh_dimension_shrinks_toward_smallest_failing_graph() {
        // A failure that needs *some* bridged mesh: the mesh can't be
        // dropped, so the shrinker must walk the dimensions down instead.
        let mut case = FuzzCase::base(16, 40.0, 1);
        case.mesh = Some(MeshSpec::Bridged {
            domains: 3,
            cols: 3,
            rows: 2,
        });
        case.plan.events = vec![crate::plan::FaultEvent {
            start_bp: 60,
            end_bp: 60,
            kind: FaultKind::CrashDomain {
                domain: 1,
                rejoin_after_bps: None,
            },
        }];
        let small = shrink(case, |c| {
            matches!(c.mesh, Some(MeshSpec::Bridged { .. }))
                && c.plan
                    .events
                    .iter()
                    .any(|ev| matches!(ev.kind, FaultKind::CrashDomain { .. }))
        });
        assert_eq!(
            small.mesh,
            Some(MeshSpec::Bridged {
                domains: 2,
                cols: 1,
                rows: 1,
            }),
            "bridged dims walk to the smallest graph"
        );
        // A failure that doesn't need the mesh sheds it entirely.
        let mut case = FuzzCase::base(8, 20.0, 1);
        case.mesh = Some(MeshSpec::Ring);
        case.plan.events = vec![crate::plan::FaultEvent {
            start_bp: 10,
            end_bp: 10,
            kind: FaultKind::Jam,
        }];
        let small = shrink(case, |c| {
            c.plan
                .events
                .iter()
                .any(|ev| matches!(ev.kind, FaultKind::Jam))
        });
        assert_eq!(small.mesh, None, "irrelevant mesh dimension is dropped");
    }

    #[test]
    fn campaigns_shrink_to_the_minimal_colluding_subset() {
        use sstsp::scenario::{CampaignKind, CampaignSpec};
        let mut case = FuzzCase::base(16, 40.0, 1);
        case.campaign = Some(CampaignSpec {
            kind: CampaignKind::Coalition {
                error_us: 800.0,
                delay_bps: 2,
            },
            attackers: 3,
            start_s: 10.0,
            end_s: 20.0,
        });
        case.plan.events = vec![FaultEvent {
            start_bp: 10,
            end_bp: 10,
            kind: FaultKind::Jam,
        }];
        // Predicate needs *a* coalition, but not its full size: the
        // shrinker walks attackers down to the two-member floor.
        let small = shrink(case, |c| {
            matches!(
                c.campaign,
                Some(CampaignSpec {
                    kind: CampaignKind::Coalition { .. },
                    ..
                })
            )
        });
        assert_eq!(
            small.campaign.unwrap().attackers,
            2,
            "coalition shrinks to leader + one amplifier"
        );
        // An irrelevant campaign is dropped entirely.
        let mut case = FuzzCase::base(8, 20.0, 1);
        case.campaign = Some(CampaignSpec {
            kind: CampaignKind::RefSlotJam,
            attackers: 1,
            start_s: 5.0,
            end_s: 10.0,
        });
        case.plan.events = vec![FaultEvent {
            start_bp: 10,
            end_bp: 10,
            kind: FaultKind::Jam,
        }];
        let small = shrink(case, |c| {
            c.plan
                .events
                .iter()
                .any(|ev| matches!(ev.kind, FaultKind::Jam))
        });
        assert_eq!(small.campaign, None, "irrelevant campaign is dropped");
    }

    #[test]
    fn probabilities_shrink_toward_certainty() {
        let mut case = FuzzCase::base(8, 20.0, 1);
        case.plan.events = vec![
            FaultEvent {
                start_bp: 5,
                end_bp: 5,
                kind: FaultKind::Crash {
                    node: 3,
                    rejoin_after_bps: None,
                },
            },
            FaultEvent {
                start_bp: 10,
                end_bp: 20,
                kind: FaultKind::BurstLoss { p: 0.3 },
            },
        ];
        // Predicate keeps both events alive so pass 3 gets to act.
        let small = shrink(case, |c| c.plan.events.len() == 2);
        assert!(small
            .plan
            .events
            .iter()
            .any(|ev| matches!(ev.kind, FaultKind::BurstLoss { p } if p == 1.0)));
    }
}
