//! Fault plans and the one-line replayable case spec.
//!
//! A [`FaultPlan`] is a list of sim-time-scheduled [`FaultEvent`]s plus the
//! seed of the fault layer's own RNG stream (per-delivery corruption draws
//! never touch the engine's streams). A [`FuzzCase`] bundles a plan with the
//! scenario dimensions the fuzzer sweeps (N, duration, seed, m, δ) and
//! serializes to a single whitespace-separated line that parses back
//! losslessly — every reported reproducer is replayable from its printed
//! spec alone.

use std::fmt;
use std::str::FromStr;

use sstsp::scenario::{CampaignSpec, ProtocolKind, ScenarioConfig, TopologySpec};

/// Which field of a secured beacon a corruption fault damages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptField {
    /// Flip a mid-weight bit of the TSF timestamp.
    Timestamp,
    /// Flip bits of the µTESLA MAC.
    Mac,
    /// Flip bits of the disclosed chain element.
    Disclosed,
    /// Truncate the frame: the µTESLA trailer is lost and the beacon
    /// degrades to a plain TSF beacon.
    Truncate,
}

impl CorruptField {
    fn token(self) -> &'static str {
        match self {
            CorruptField::Timestamp => "ts",
            CorruptField::Mac => "mac",
            CorruptField::Disclosed => "key",
            CorruptField::Truncate => "trunc",
        }
    }

    fn parse(s: &str) -> Result<Self, SpecError> {
        Ok(match s {
            "ts" => CorruptField::Timestamp,
            "mac" => CorruptField::Mac,
            "key" => CorruptField::Disclosed,
            "trunc" => CorruptField::Truncate,
            _ => return Err(SpecError(format!("unknown corrupt field `{s}`"))),
        })
    }
}

/// One class of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Extra packet loss composed with the channel PER over the window.
    BurstLoss {
        /// Added loss probability in `[0, 1]`.
        p: f64,
    },
    /// Per-delivery beacon corruption over the window.
    Corrupt {
        /// Which field gets damaged.
        field: CorruptField,
        /// Per-delivery corruption probability in `[0, 1]`.
        p: f64,
    },
    /// Crash a station at the window start.
    Crash {
        /// Station to crash.
        node: u32,
        /// BPs until it reboots and rejoins; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Crash whichever station holds the reference role at the window
    /// start.
    KillReference {
        /// BPs until it reboots and rejoins; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Step a station's hardware clock at the window start.
    ClockStep {
        /// Affected station.
        node: u32,
        /// Signed step, µs.
        delta_us: f64,
    },
    /// Freeze a station's hardware clock for the window.
    ClockFreeze {
        /// Affected station.
        node: u32,
    },
    /// Drop secured beacons at receivers over the window — the µTESLA
    /// disclosure-loss fault (disclosures ride in the next beacon, so
    /// losing beacons is losing disclosures; the verifier's chain-walk
    /// recovery must absorb it).
    DisclosureLoss {
        /// Per-delivery drop probability in `[0, 1]`.
        p: f64,
    },
    /// Jam the channel for the window.
    Jam,
    /// Crash every non-gateway member of one collision domain at the
    /// window start (mesh cases with a bridged topology only; no-op
    /// otherwise). The index wraps modulo the domain count so shrunk
    /// cases stay valid.
    CrashDomain {
        /// Collision-domain index.
        domain: u32,
        /// BPs until the members reboot; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Crash one gateway (bridge) station of a bridged mesh at the window
    /// start (no-op without a decomposition). Wraps modulo bridge count.
    KillBridge {
        /// Bridge index.
        bridge: u32,
        /// BPs until the gateway reboots; `None` = permanent.
        rejoin_after_bps: Option<u64>,
    },
    /// Shorten every station's hash chain to `intervals` so the chains
    /// exhaust mid-run (EXPERIMENTS.md deviation #5: the paper never
    /// discusses re-keying). Applied before the network is built; the
    /// event window starts at the exhaustion BP.
    ChainExhaust {
        /// Chain length in intervals (= the exhaustion BP index).
        intervals: u64,
    },
}

/// A fault with its activation window (BP indices, inclusive on both ends;
/// point events have `start_bp == end_bp`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// First BP the fault is active in.
    pub start_bp: u64,
    /// Last BP the fault is active in.
    pub end_bp: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the fault is active at `bp`.
    pub fn active_at(&self, bp: u64) -> bool {
        bp >= self.start_bp && bp <= self.end_bp
    }
}

/// A composable, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the fault layer's own RNG stream (corruption/loss draws).
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

/// The topology dimension of a fuzz case. `None` on a [`FuzzCase`] keeps
/// the paper's single-hop IBSS; each variant maps onto a [`TopologySpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeshSpec {
    /// A path of stations.
    Line,
    /// A cycle of stations.
    Ring,
    /// Seeded unit-disk graph (side, radio range); the generator rejects
    /// disconnected samples deterministically.
    Rgg {
        /// Square side length.
        side: f64,
        /// Radio range.
        range: f64,
    },
    /// Bridged multi-collision-domain mesh; overrides the case's `n` with
    /// the station count the decomposition requires.
    Bridged {
        /// Island count.
        domains: u32,
        /// Island grid columns.
        cols: u32,
        /// Island grid rows.
        rows: u32,
    },
}

impl MeshSpec {
    /// The [`TopologySpec`] this mesh dimension materializes as.
    pub fn topology(self) -> TopologySpec {
        match self {
            MeshSpec::Line => TopologySpec::Line,
            MeshSpec::Ring => TopologySpec::Ring,
            MeshSpec::Rgg { side, range } => TopologySpec::RandomDisk { side, range },
            MeshSpec::Bridged {
                domains,
                cols,
                rows,
            } => TopologySpec::Bridged {
                domains,
                cols,
                rows,
            },
        }
    }
}

impl fmt::Display for MeshSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MeshSpec::Line => write!(f, "line"),
            MeshSpec::Ring => write!(f, "ring"),
            MeshSpec::Rgg { side, range } => write!(f, "rgg:{side}:{range}"),
            MeshSpec::Bridged {
                domains,
                cols,
                rows,
            } => write!(f, "bridged:{domains}:{cols}:{rows}"),
        }
    }
}

impl FromStr for MeshSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let mut arg = |what: &str| {
            parts
                .next()
                .ok_or_else(|| SpecError(format!("`{head}` mesh needs `{what}`")))
        };
        let mesh = match head {
            "line" => MeshSpec::Line,
            "ring" => MeshSpec::Ring,
            "rgg" => MeshSpec::Rgg {
                side: parse_num("side", arg("side")?)?,
                range: parse_num("range", arg("range")?)?,
            },
            "bridged" => MeshSpec::Bridged {
                domains: parse_num("domains", arg("domains")?)?,
                cols: parse_num("cols", arg("cols")?)?,
                rows: parse_num("rows", arg("rows")?)?,
            },
            _ => return Err(SpecError(format!("unknown mesh kind `{head}`"))),
        };
        if parts.next().is_some() {
            return Err(SpecError(format!("trailing mesh args in `{s}`")));
        }
        // Value validation: a degenerate spec that parses but panics the
        // topology generators (zero islands, empty island grid, zero-area
        // disk) must be a named-token parse error, not a downstream panic.
        match mesh {
            MeshSpec::Rgg { side, range } => {
                if !(side.is_finite() && side > 0.0) {
                    return Err(SpecError(format!(
                        "rgg `side` must be a positive finite number, got `{side}`"
                    )));
                }
                if !(range.is_finite() && range > 0.0) {
                    return Err(SpecError(format!(
                        "rgg `range` must be a positive finite number, got `{range}`"
                    )));
                }
            }
            MeshSpec::Bridged {
                domains,
                cols,
                rows,
            } => {
                if domains < 2 {
                    return Err(SpecError(format!(
                        "bridged `domains` must be at least 2, got `{domains}`"
                    )));
                }
                if cols == 0 {
                    return Err(SpecError("bridged `cols` must be at least 1".into()));
                }
                if rows == 0 {
                    return Err(SpecError("bridged `rows` must be at least 1".into()));
                }
            }
            MeshSpec::Line | MeshSpec::Ring => {}
        }
        Ok(mesh)
    }
}

/// A fuzzer case: scenario dimensions plus the fault plan. `Display`
/// produces the one-line spec; `FromStr` parses it back (round-trip exact —
/// floats print in shortest-round-trip form).
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Network size.
    pub n: u32,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Scenario master seed.
    pub seed: u64,
    /// SSTSP aggressiveness parameter m.
    pub m: u32,
    /// Fine guard time δ, µs.
    pub guard_fine_us: f64,
    /// Topology dimension (`None` = single-hop IBSS).
    pub mesh: Option<MeshSpec>,
    /// Coordinated-adversary campaign (`None` = all stations honest).
    pub campaign: Option<CampaignSpec>,
    /// The fault schedule.
    pub plan: FaultPlan,
}

impl FuzzCase {
    /// A fault-free case at the repo's quick-check dimensions.
    pub fn base(n: u32, duration_s: f64, seed: u64) -> Self {
        FuzzCase {
            n,
            duration_s,
            seed,
            m: 4,
            guard_fine_us: 300.0,
            mesh: None,
            campaign: None,
            plan: FaultPlan::default(),
        }
    }

    /// How many stations the case's mesh dimension can compromise: the
    /// campaign takes the tail of the last *island* on bridged meshes
    /// (gateways stay honest), the tail of the id space otherwise. The
    /// second value is the effective total station count.
    pub(crate) fn campaign_capacity(&self) -> (u32, u32) {
        match self.mesh {
            Some(MeshSpec::Bridged {
                domains,
                cols,
                rows,
            }) => {
                let island = domains * cols * rows;
                (island, island + domains - 1)
            }
            _ => (self.n, self.n),
        }
    }

    /// Number of beacon periods this case simulates.
    pub fn total_bps(&self) -> u64 {
        self.scenario().total_bps()
    }

    /// Materialize the scenario: single-hop SSTSP with the case's
    /// dimensions, no scripted churn or departures (the fault plan supplies
    /// all disturbances), and the chain shortened if the plan carries a
    /// [`FaultKind::ChainExhaust`] event.
    pub fn scenario(&self) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::new(ProtocolKind::Sstsp, self.n, self.duration_s, self.seed);
        if let Some(mesh) = self.mesh {
            let topo = mesh.topology();
            if let Some(required) = topo.required_nodes() {
                cfg.n_nodes = required;
            }
            cfg.topology = Some(topo);
        }
        cfg.campaign = self.campaign;
        cfg.protocol_config.m = self.m;
        cfg.protocol_config.guard_fine_us = self.guard_fine_us;
        for ev in &self.plan.events {
            if let FaultKind::ChainExhaust { intervals } = ev.kind {
                cfg.protocol_config.total_intervals = intervals as usize;
            }
        }
        cfg
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", kind_token(&self.kind))?;
        write!(f, "@{}..{}", self.start_bp, self.end_bp)?;
        match self.kind {
            FaultKind::BurstLoss { p } | FaultKind::DisclosureLoss { p } => write!(f, ":p={p}"),
            FaultKind::Corrupt { field, p } => write!(f, ":field={},p={p}", field.token()),
            FaultKind::Crash {
                node,
                rejoin_after_bps,
            } => write!(f, ":node={node},rejoin={}", rejoin_token(rejoin_after_bps)),
            FaultKind::KillReference { rejoin_after_bps } => {
                write!(f, ":rejoin={}", rejoin_token(rejoin_after_bps))
            }
            FaultKind::ClockStep { node, delta_us } => write!(f, ":node={node},us={delta_us}"),
            FaultKind::ClockFreeze { node } => write!(f, ":node={node}"),
            FaultKind::Jam => Ok(()),
            FaultKind::CrashDomain {
                domain,
                rejoin_after_bps,
            } => write!(
                f,
                ":domain={domain},rejoin={}",
                rejoin_token(rejoin_after_bps)
            ),
            FaultKind::KillBridge {
                bridge,
                rejoin_after_bps,
            } => write!(
                f,
                ":bridge={bridge},rejoin={}",
                rejoin_token(rejoin_after_bps)
            ),
            FaultKind::ChainExhaust { intervals } => write!(f, ":at={intervals}"),
        }
    }
}

fn kind_token(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::BurstLoss { .. } => "burst",
        FaultKind::Corrupt { .. } => "corrupt",
        FaultKind::Crash { .. } => "crash",
        FaultKind::KillReference { .. } => "killref",
        FaultKind::ClockStep { .. } => "step",
        FaultKind::ClockFreeze { .. } => "freeze",
        FaultKind::DisclosureLoss { .. } => "discloss",
        FaultKind::Jam => "jam",
        FaultKind::CrashDomain { .. } => "crashdom",
        FaultKind::KillBridge { .. } => "killbridge",
        FaultKind::ChainExhaust { .. } => "exhaust",
    }
}

fn rejoin_token(r: Option<u64>) -> String {
    match r {
        Some(bps) => bps.to_string(),
        None => "never".to_string(),
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} dur={} seed={} m={} delta={} plan={}",
            self.n, self.duration_s, self.seed, self.m, self.guard_fine_us, self.plan.seed
        )?;
        if let Some(mesh) = self.mesh {
            write!(f, " mesh={mesh}")?;
        }
        if let Some(campaign) = self.campaign {
            write!(f, " campaign={campaign}")?;
        }
        for ev in &self.plan.events {
            write!(f, " {ev}")?;
        }
        Ok(())
    }
}

/// A malformed case spec.
#[derive(Debug, Clone)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad case spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn parse_num<T: FromStr>(key: &str, v: &str) -> Result<T, SpecError> {
    v.parse()
        .map_err(|_| SpecError(format!("bad value `{v}` for `{key}`")))
}

fn split_kv<'a>(token: &'a str, what: &str) -> Result<(&'a str, &'a str), SpecError> {
    token
        .split_once('=')
        .ok_or_else(|| SpecError(format!("expected key=value in {what}, got `{token}`")))
}

fn parse_rejoin(v: &str) -> Result<Option<u64>, SpecError> {
    if v == "never" {
        Ok(None)
    } else {
        parse_num("rejoin", v).map(Some)
    }
}

impl FromStr for FaultEvent {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let (head, args) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let (kind_tok, window) = head
            .split_once('@')
            .ok_or_else(|| SpecError(format!("expected kind@start..end in `{s}`")))?;
        let (start, end) = window
            .split_once("..")
            .ok_or_else(|| SpecError(format!("expected start..end in `{s}`")))?;
        let start_bp: u64 = parse_num("start", start)?;
        let end_bp: u64 = parse_num("end", end)?;

        // Collect the comma-separated key=value arguments.
        let mut node: Option<u32> = None;
        let mut p: Option<f64> = None;
        let mut field: Option<CorruptField> = None;
        let mut rejoin: Option<Option<u64>> = None;
        let mut us: Option<f64> = None;
        let mut at: Option<u64> = None;
        let mut domain: Option<u32> = None;
        let mut bridge: Option<u32> = None;
        for token in args.unwrap_or("").split(',').filter(|t| !t.is_empty()) {
            let (k, v) = split_kv(token, "event args")?;
            match k {
                "node" => node = Some(parse_num(k, v)?),
                "p" => p = Some(parse_num(k, v)?),
                "field" => field = Some(CorruptField::parse(v)?),
                "rejoin" => rejoin = Some(parse_rejoin(v)?),
                "us" => us = Some(parse_num(k, v)?),
                "at" => at = Some(parse_num(k, v)?),
                "domain" => domain = Some(parse_num(k, v)?),
                "bridge" => bridge = Some(parse_num(k, v)?),
                _ => return Err(SpecError(format!("unknown event arg `{k}`"))),
            }
        }
        let missing = |what: &str| SpecError(format!("`{kind_tok}` needs `{what}`"));
        let kind = match kind_tok {
            "burst" => FaultKind::BurstLoss {
                p: p.ok_or_else(|| missing("p"))?,
            },
            "corrupt" => FaultKind::Corrupt {
                field: field.ok_or_else(|| missing("field"))?,
                p: p.ok_or_else(|| missing("p"))?,
            },
            "crash" => FaultKind::Crash {
                node: node.ok_or_else(|| missing("node"))?,
                rejoin_after_bps: rejoin.ok_or_else(|| missing("rejoin"))?,
            },
            "killref" => FaultKind::KillReference {
                rejoin_after_bps: rejoin.ok_or_else(|| missing("rejoin"))?,
            },
            "step" => FaultKind::ClockStep {
                node: node.ok_or_else(|| missing("node"))?,
                delta_us: us.ok_or_else(|| missing("us"))?,
            },
            "freeze" => FaultKind::ClockFreeze {
                node: node.ok_or_else(|| missing("node"))?,
            },
            "discloss" => FaultKind::DisclosureLoss {
                p: p.ok_or_else(|| missing("p"))?,
            },
            "jam" => FaultKind::Jam,
            "crashdom" => FaultKind::CrashDomain {
                domain: domain.ok_or_else(|| missing("domain"))?,
                rejoin_after_bps: rejoin.ok_or_else(|| missing("rejoin"))?,
            },
            "killbridge" => FaultKind::KillBridge {
                bridge: bridge.ok_or_else(|| missing("bridge"))?,
                rejoin_after_bps: rejoin.ok_or_else(|| missing("rejoin"))?,
            },
            "exhaust" => FaultKind::ChainExhaust {
                intervals: at.ok_or_else(|| missing("at"))?,
            },
            _ => return Err(SpecError(format!("unknown fault kind `{kind_tok}`"))),
        };
        Ok(FaultEvent {
            start_bp,
            end_bp,
            kind,
        })
    }
}

impl FromStr for FuzzCase {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let mut n = None;
        let mut dur = None;
        let mut seed = None;
        let mut m = None;
        let mut delta = None;
        let mut plan_seed = None;
        let mut mesh = None;
        let mut campaign = None;
        let mut events = Vec::new();
        // Name the offending token in every error: a failing reproducer
        // spec is a long line, and "bad value" without the token forces a
        // manual bisection.
        let in_token = |token: &str| {
            let token = token.to_string();
            move |SpecError(msg)| SpecError(format!("in `{token}`: {msg}"))
        };
        for token in s.split_whitespace() {
            if token.contains('@') {
                events.push(token.parse().map_err(in_token(token))?);
                continue;
            }
            let (k, v) = split_kv(token, "case dims")?;
            match k {
                "n" => n = Some(parse_num(k, v)?),
                "dur" => dur = Some(parse_num(k, v)?),
                "seed" => seed = Some(parse_num(k, v)?),
                "m" => m = Some(parse_num(k, v)?),
                "delta" => delta = Some(parse_num(k, v)?),
                "plan" => plan_seed = Some(parse_num(k, v)?),
                "mesh" => mesh = Some(v.parse::<MeshSpec>().map_err(in_token(token))?),
                "campaign" => {
                    campaign = Some(
                        v.parse::<CampaignSpec>()
                            .map_err(SpecError)
                            .map_err(in_token(token))?,
                    )
                }
                _ => return Err(SpecError(format!("unknown case dim `{k}` in `{token}`"))),
            }
        }
        let need = |what: &str| SpecError(format!("missing `{what}`"));
        let case = FuzzCase {
            n: n.ok_or_else(|| need("n"))?,
            duration_s: dur.ok_or_else(|| need("dur"))?,
            seed: seed.ok_or_else(|| need("seed"))?,
            m: m.ok_or_else(|| need("m"))?,
            guard_fine_us: delta.ok_or_else(|| need("delta"))?,
            mesh,
            campaign,
            plan: FaultPlan {
                seed: plan_seed.ok_or_else(|| need("plan"))?,
                events,
            },
        };
        // Cross-dimension validation: a campaign that parses on its own but
        // compromises too many of this case's stations must be a named-token
        // parse error, not an engine assertion later.
        if let Some(c) = case.campaign {
            let (island, n_eff) = case.campaign_capacity();
            if c.attackers >= island || c.attackers + 2 > n_eff {
                return Err(SpecError(format!(
                    "campaign `attackers` = {} needs more stations than the \
                     case provides ({n_eff} total, {island} compromisable)",
                    c.attackers
                )));
            }
        }
        Ok(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> FuzzCase {
        let mut case = FuzzCase::base(12, 30.0, 7);
        case.plan.seed = 3;
        case.plan.events = vec![
            FaultEvent {
                start_bp: 40,
                end_bp: 90,
                kind: FaultKind::BurstLoss { p: 0.85 },
            },
            FaultEvent {
                start_bp: 60,
                end_bp: 60,
                kind: FaultKind::Crash {
                    node: 3,
                    rejoin_after_bps: Some(50),
                },
            },
            FaultEvent {
                start_bp: 100,
                end_bp: 100,
                kind: FaultKind::KillReference {
                    rejoin_after_bps: None,
                },
            },
            FaultEvent {
                start_bp: 120,
                end_bp: 160,
                kind: FaultKind::Corrupt {
                    field: CorruptField::Disclosed,
                    p: 0.5,
                },
            },
            FaultEvent {
                start_bp: 170,
                end_bp: 170,
                kind: FaultKind::ClockStep {
                    node: 2,
                    delta_us: -137.25,
                },
            },
            FaultEvent {
                start_bp: 180,
                end_bp: 220,
                kind: FaultKind::ClockFreeze { node: 5 },
            },
            FaultEvent {
                start_bp: 200,
                end_bp: 210,
                kind: FaultKind::Jam,
            },
            FaultEvent {
                start_bp: 230,
                end_bp: 260,
                kind: FaultKind::DisclosureLoss { p: 0.9 },
            },
            FaultEvent {
                start_bp: 262,
                end_bp: 262,
                kind: FaultKind::CrashDomain {
                    domain: 1,
                    rejoin_after_bps: Some(40),
                },
            },
            FaultEvent {
                start_bp: 270,
                end_bp: 270,
                kind: FaultKind::KillBridge {
                    bridge: 0,
                    rejoin_after_bps: None,
                },
            },
            FaultEvent {
                start_bp: 280,
                end_bp: 300,
                kind: FaultKind::ChainExhaust { intervals: 280 },
            },
        ];
        case
    }

    #[test]
    fn spec_round_trips_every_fault_kind() {
        let case = sample_case();
        let spec = case.to_string();
        let parsed: FuzzCase = spec.parse().expect("spec parses");
        assert_eq!(parsed, case, "round-trip mismatch for `{spec}`");
        // And the spec is genuinely one line.
        assert!(!spec.contains('\n'));
    }

    #[test]
    fn exhaust_event_shortens_the_chain() {
        let case = sample_case();
        assert_eq!(case.scenario().protocol_config.total_intervals, 280);
        let base = FuzzCase::base(8, 20.0, 1);
        assert!(base.scenario().protocol_config.total_intervals > 200);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "n=8",                                                  // missing dims
            "n=8 dur=20 seed=1 m=4 delta=300 plan=0 zap@1..2",      // unknown kind
            "n=8 dur=20 seed=1 m=4 delta=300 plan=0 crash@1..2",    // missing args
            "n=8 dur=20 seed=1 m=4 delta=300 plan=0 burst@5:p=0.5", // no window
            "n=8 dur=x seed=1 m=4 delta=300 plan=0",                // bad number
        ] {
            assert!(bad.parse::<FuzzCase>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn mesh_dims_round_trip_and_materialize() {
        for mesh in [
            MeshSpec::Line,
            MeshSpec::Ring,
            MeshSpec::Rgg {
                side: 4.5,
                range: 1.25,
            },
            MeshSpec::Bridged {
                domains: 2,
                cols: 3,
                rows: 2,
            },
        ] {
            let mut case = FuzzCase::base(9, 20.0, 3);
            case.mesh = Some(mesh);
            let spec = case.to_string();
            let parsed: FuzzCase = spec.parse().expect("mesh spec parses");
            assert_eq!(parsed, case, "round-trip mismatch for `{spec}`");
        }
        // Bridged overrides n with the derived station count (2·3·2 + 1).
        let mut case = FuzzCase::base(9, 20.0, 3);
        case.mesh = Some(MeshSpec::Bridged {
            domains: 2,
            cols: 3,
            rows: 2,
        });
        let cfg = case.scenario();
        assert_eq!(cfg.n_nodes, 13);
        assert!(matches!(
            cfg.topology,
            Some(TopologySpec::Bridged {
                domains: 2,
                cols: 3,
                rows: 2
            })
        ));
        // Non-derived meshes keep the case's n.
        let mut case = FuzzCase::base(9, 20.0, 3);
        case.mesh = Some(MeshSpec::Ring);
        assert_eq!(case.scenario().n_nodes, 9);
        // Malformed mesh tokens are rejected.
        for bad in [
            "mesh=hex",
            "mesh=rgg:4.5",
            "mesh=bridged:2:3:2:9",
            "mesh=x=y",
        ] {
            let spec = format!("n=8 dur=20 seed=1 m=4 delta=300 plan=0 {bad}");
            assert!(spec.parse::<FuzzCase>().is_err(), "accepted `{bad}`");
        }
    }

    /// Degenerate mesh values parse numerically but would panic the
    /// topology generators; they must be named-token parse errors instead.
    #[test]
    fn degenerate_mesh_values_are_rejected_with_named_tokens() {
        for (bad, token) in [
            ("bridged:0:3:2", "domains"),
            ("bridged:1:3:2", "domains"),
            ("bridged:2:0:2", "cols"),
            ("bridged:2:3:0", "rows"),
            ("rgg:0:1", "side"),
            ("rgg:-3:1", "side"),
            ("rgg:inf:1", "side"),
            ("rgg:100:0", "range"),
            ("rgg:100:NaN", "range"),
        ] {
            let SpecError(msg) = bad.parse::<MeshSpec>().unwrap_err();
            assert!(
                msg.contains(&format!("`{token}`")),
                "error for `{bad}` does not name `{token}`: {msg}"
            );
        }
        // The smallest legal shapes still parse.
        for ok in ["bridged:2:1:1", "rgg:0.5:0.5"] {
            ok.parse::<MeshSpec>()
                .unwrap_or_else(|e| panic!("rejected `{ok}`: {e:?}"));
        }
    }

    #[test]
    fn parse_errors_name_the_offending_token() {
        for (spec, token) in [
            (
                "n=8 dur=20 seed=1 m=4 delta=300 plan=0 crash@1..2:node=3,rejoin=zz",
                "crash@1..2:node=3,rejoin=zz",
            ),
            (
                "n=8 dur=20 seed=1 m=4 delta=300 plan=0 zap@1..2",
                "zap@1..2",
            ),
            (
                "n=8 dur=20 seed=1 m=4 delta=300 plan=0 mesh=rgg:4.5",
                "mesh=rgg:4.5",
            ),
            ("n=8 dur=20 seed=1 m=4 delta=300 plan=0 bogus=7", "bogus=7"),
        ] {
            let SpecError(msg) = spec.parse::<FuzzCase>().unwrap_err();
            assert!(
                msg.contains(&format!("`{token}`")),
                "error for `{spec}` does not name `{token}`: {msg}"
            );
        }
    }

    #[test]
    fn campaign_dims_round_trip_and_materialize() {
        use sstsp::scenario::CampaignKind;
        for (campaign, mesh) in [
            (
                CampaignSpec {
                    kind: CampaignKind::Coalition {
                        error_us: 800.0,
                        delay_bps: 2,
                    },
                    attackers: 3,
                    start_s: 10.0,
                    end_s: 25.5,
                },
                None,
            ),
            (
                CampaignSpec {
                    kind: CampaignKind::SybilFlood { error_us: 1500.0 },
                    attackers: 2,
                    start_s: 8.0,
                    end_s: 20.0,
                },
                Some(MeshSpec::Bridged {
                    domains: 2,
                    cols: 3,
                    rows: 2,
                }),
            ),
            (
                CampaignSpec {
                    kind: CampaignKind::RefSlotJam,
                    attackers: 1,
                    start_s: 5.25,
                    end_s: 18.0,
                },
                Some(MeshSpec::Bridged {
                    domains: 2,
                    cols: 2,
                    rows: 2,
                }),
            ),
        ] {
            let mut case = FuzzCase::base(10, 30.0, 3);
            case.mesh = mesh;
            case.campaign = Some(campaign);
            let spec = case.to_string();
            let parsed: FuzzCase = spec.parse().expect("campaign spec parses");
            assert_eq!(parsed, case, "round-trip mismatch for `{spec}`");
            assert_eq!(case.scenario().campaign, Some(campaign));
        }
    }

    #[test]
    fn malformed_campaigns_are_named_token_errors() {
        for (bad, token) in [
            ("campaign=coalition:1:30:2:20:40", "attackers"),
            ("campaign=sybil:0:30:20:40", "attackers"),
            ("campaign=coalition:2:nan:2:20:40", "error_us"),
            ("campaign=jamref:2:40:20", "end_s"),
            ("campaign=warp:2:20:40", "warp"),
        ] {
            let spec = format!("n=8 dur=20 seed=1 m=4 delta=300 plan=0 {bad}");
            let SpecError(msg) = spec.parse::<FuzzCase>().unwrap_err();
            assert!(
                msg.contains(&format!("`{token}`")),
                "error for `{bad}` does not name `{token}`: {msg}"
            );
            assert!(
                msg.contains(bad),
                "error for `{bad}` omits the token: {msg}"
            );
        }
        // A campaign that parses alone but compromises too much of this
        // case's station budget is also rejected with the field named.
        for spec in [
            // Single-hop: 8 stations cannot spare 7 attackers.
            "n=8 dur=20 seed=1 m=4 delta=300 plan=0 campaign=coalition:7:30:2:5:15",
            // Bridged: the 4-station island caps compromisable stations.
            "n=8 dur=20 seed=1 m=4 delta=300 plan=0 mesh=bridged:2:2:1 \
             campaign=sybil:4:30:5:15",
        ] {
            let SpecError(msg) = spec.parse::<FuzzCase>().unwrap_err();
            assert!(
                msg.contains("`attackers`"),
                "error for `{spec}` does not name `attackers`: {msg}"
            );
        }
    }

    #[test]
    fn float_dims_round_trip() {
        let mut case = FuzzCase::base(6, 12.5, 9);
        case.guard_fine_us = 287.125;
        let parsed: FuzzCase = case.to_string().parse().unwrap();
        assert_eq!(parsed, case);
    }
}
