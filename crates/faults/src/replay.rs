//! Trace-driven record/replay with divergence detection.
//!
//! `sstsp-sim trace` records a run as a self-contained JSONL file (a
//! `meta` header carrying the schema version and the one-line case spec,
//! then the full [`TraceEvent`] stream). This module is the inverse: it
//! parses such a file into a [`RecordedSchedule`], re-executes the case
//! under a [`ReplayHook`] that drives the engine's MAC contention windows
//! from the *recorded* beacon schedule instead of trusting the live
//! resolver, and cross-checks everything the live model produces — every
//! beacon transmission, µTESLA disclosure verdict, and domain-election
//! event — against the recording. Disagreements surface as structured
//! [`Divergence`] records (BP index, event kind, expected vs. recorded
//! fields) instead of silently drifting.
//!
//! Two detection layers compose:
//!
//! 1. **Window cross-check** (during the run): at every single-hop MAC
//!    window the live outcome is compared against the recorded schedule
//!    *before* the recorded one is substituted. This pins the divergence to
//!    its first observable BP even though the rest of the run then follows
//!    the recording — a checker that only diffed the regenerated stream
//!    would converge onto a mutated recording and miss the mutation.
//! 2. **Stream diff** (after the run): the regenerated event stream is
//!    compared index-wise against the recording; the first mismatch (a
//!    reordered disclosure verdict, a flipped domain-election winner, ...)
//!    becomes a divergence. Mesh runs resolve windows per-link, so they
//!    skip layer 1 and rely wholly on this diff — the engine regenerates
//!    the ground truth deterministically from the case spec.
//!
//! A clean replay is *byte-identical*: same `RunResult`, same telemetry,
//! and [`ReplayReport::to_jsonl`] reproduces the input file exactly.

use std::collections::BTreeMap;
use std::fmt;

use protocols::api::{AnchorRegistry, BeaconPayload, NodeId};
use simcore::SimTime;
use sstsp::engine::{Network, RunResult};
use sstsp::instrument::{
    BpView, DeliveryCtx, DeliveryFate, DeliveryObs, EngineHook, FaultAction, HookCaps,
    WindowOutcome,
};
use sstsp::invariants::Violation;
use sstsp::scenario::ScenarioConfig;
use sstsp::trace::TraceRecorder;
use sstsp_telemetry::reader::{parse_trace, TraceReadError};
use sstsp_telemetry::trace::{to_jsonl, TraceEncodeError, TraceEvent, TRACE_SCHEMA};

use crate::harness::{FaultHarness, TracedHarness};
use crate::plan::{FuzzCase, SpecError};

/// Why a trace file could not be turned into a replayable schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The JSONL itself failed to parse (malformed line, missing meta
    /// header, or schema-version mismatch).
    Read(TraceReadError),
    /// The meta header's case spec failed to parse.
    BadCase {
        /// The offending spec line.
        case: String,
        /// The parse failure.
        msg: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Read(e) => write!(f, "{e}"),
            ReplayError::BadCase { case, msg } => {
                write!(f, "trace meta carries unparsable case `{case}`: {msg}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceReadError> for ReplayError {
    fn from(e: TraceReadError) -> Self {
        ReplayError::Read(e)
    }
}

/// One disagreement between the recorded trace and what the live model
/// produced at the same point.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Beacon period the disagreement belongs to (0 when neither side
    /// carries a BP, e.g. a `run_end` footer mismatch).
    pub bp: u64,
    /// Event kind token (`beacon_tx`, `beacon_rx`, `domain_ref_change`,
    /// ...) of the disagreeing event.
    pub kind: String,
    /// What the live model produced (JSONL-rendered fields).
    pub expected: String,
    /// What the trace recorded (JSONL-rendered fields).
    pub recorded: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BP {} [{}]: expected {}, recorded {}",
            self.bp, self.kind, self.expected, self.recorded
        )
    }
}

/// A recorded trace resolved into everything replay needs: the case to
/// re-run, the event stream to check against, and (single-hop cases) the
/// per-BP beacon schedule that drives the MAC windows.
#[derive(Debug, Clone)]
pub struct RecordedSchedule {
    /// The case the trace was recorded from (parsed out of the meta line).
    pub case: FuzzCase,
    /// The recorded event stream (meta header excluded).
    pub events: Vec<TraceEvent>,
    /// Single-hop runs admit at most one successful transmitter per window;
    /// mesh traces leave this empty (windows resolve per-link there, and
    /// the stream diff alone carries detection).
    tx_by_bp: BTreeMap<u64, NodeId>,
}

impl RecordedSchedule {
    /// Parse a self-contained JSONL trace (as written by `sstsp-sim trace`
    /// or [`to_replayable_jsonl`]) into a replayable schedule. Enforces the
    /// trace schema version.
    pub fn parse(input: &str) -> Result<Self, ReplayError> {
        let trace = parse_trace(input)?;
        let case: FuzzCase = trace
            .case
            .parse()
            .map_err(|SpecError(msg)| ReplayError::BadCase {
                case: trace.case.clone(),
                msg,
            })?;
        let mut tx_by_bp = BTreeMap::new();
        if case.mesh.is_none() {
            for ev in &trace.events {
                if let TraceEvent::BeaconTx { bp, src } = ev {
                    tx_by_bp.insert(*bp, *src);
                }
            }
        }
        Ok(RecordedSchedule {
            case,
            events: trace.events,
            tx_by_bp,
        })
    }

    /// The station the recording says won the beacon window at `bp`
    /// (`None` = the recording shows no successful transmission).
    pub fn recorded_tx(&self, bp: u64) -> Option<NodeId> {
        self.tx_by_bp.get(&bp).copied()
    }
}

/// Everything a replay produces: the regenerated run plus the divergence
/// report, sorted by BP (window cross-checks before stream diffs at the
/// same BP).
pub struct ReplayReport {
    /// The replayed case.
    pub case: FuzzCase,
    /// The regenerated run result (byte-identical to the recorded run's
    /// when the trace is faithful).
    pub result: RunResult,
    /// Invariant violations the re-run's checker observed.
    pub violations: Vec<Violation>,
    /// The regenerated event stream.
    pub events: Vec<TraceEvent>,
    /// Disagreements between recording and live model; empty = faithful.
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// Whether the recording matched the live model everywhere.
    pub fn is_faithful(&self) -> bool {
        self.divergences.is_empty()
    }

    /// The earliest disagreement, if any.
    pub fn first_divergence(&self) -> Option<&Divergence> {
        self.divergences.first()
    }

    /// Re-encode the regenerated run as a self-contained trace file. For a
    /// faithful replay this reproduces the input byte-for-byte.
    pub fn to_jsonl(&self) -> Result<String, TraceEncodeError> {
        to_replayable_jsonl(&self.case, &self.events)
    }
}

/// Encode a recorded run as a self-contained replayable trace file: the
/// versioned meta header (schema + case spec), then the event stream.
pub fn to_replayable_jsonl(
    case: &FuzzCase,
    events: &[TraceEvent],
) -> Result<String, TraceEncodeError> {
    let meta = TraceEvent::Meta {
        schema: TRACE_SCHEMA,
        case: case.to_string(),
    };
    let mut out = meta.to_jsonl()?;
    out.push('\n');
    out.push_str(&to_jsonl(events)?);
    Ok(out)
}

fn render_event(ev: &TraceEvent) -> String {
    ev.to_jsonl().unwrap_or_else(|_| format!("{ev:?}"))
}

fn render_window(outcome: &WindowOutcome) -> String {
    match outcome {
        WindowOutcome::Silent => "silent window".to_string(),
        WindowOutcome::Jammed { .. } => "jammed window".to_string(),
        WindowOutcome::Collision { colliders, .. } => {
            format!("collision among {colliders:?}")
        }
        WindowOutcome::Success { winner, slot } => {
            format!("success src={winner} slot={slot}")
        }
    }
}

/// The replay hook: the same fault execution + trace recording as a
/// recording run ([`crate::run_case_traced`]), plus the window override
/// seam that substitutes the recorded beacon schedule after cross-checking
/// the live outcome against it. The hook is always active, so a replay
/// takes the engine's instrumented slow path by construction — visible as
/// `engine.path.slow` in the telemetry snapshot.
struct ReplayHook<'a> {
    inner: TracedHarness,
    schedule: &'a RecordedSchedule,
    window_divergences: Vec<Divergence>,
}

impl EngineHook for ReplayHook<'_> {
    // Not fast-path-safe: replay substitutes recorded window outcomes via
    // `on_window`, a seam only the per-event slow path offers — and the
    // divergence check needs the event-for-event trace it produces.
    fn capabilities(&self) -> HookCaps {
        HookCaps {
            fastpath_safe: false,
        }
    }

    fn on_run_start(&mut self, scenario: &ScenarioConfig, anchors: &AnchorRegistry) {
        self.inner.on_run_start(scenario, anchors);
    }

    fn on_bp_start(&mut self, bp: u64, t0: SimTime, actions: &mut Vec<FaultAction>) {
        self.inner.on_bp_start(bp, t0, actions);
    }

    fn on_window(&mut self, bp: u64, live: &WindowOutcome) -> Option<WindowOutcome> {
        let recorded = self.schedule.recorded_tx(bp);
        let live_winner = match live {
            WindowOutcome::Success { winner, .. } => Some(*winner),
            _ => None,
        };
        if live_winner == recorded {
            return None;
        }
        self.window_divergences.push(Divergence {
            bp,
            kind: "beacon_tx".to_string(),
            expected: render_window(live),
            recorded: match recorded {
                Some(src) => format!("success src={src}"),
                None => "no transmission".to_string(),
            },
        });
        // Drive the recorded outcome so the rest of the run follows the
        // trace under inspection. The recording carries no slot, so reuse
        // the live window's slot when it has one — post-divergence
        // continuation is best-effort by definition.
        Some(match recorded {
            Some(src) => WindowOutcome::Success {
                winner: src,
                slot: match live {
                    WindowOutcome::Success { slot, .. } | WindowOutcome::Collision { slot, .. } => {
                        *slot
                    }
                    _ => 0,
                },
            },
            None => WindowOutcome::Silent,
        })
    }

    fn on_beacon_tx(&mut self, bp: u64, src: NodeId, t_tx: SimTime) {
        self.inner.on_beacon_tx(bp, src, t_tx);
    }

    fn on_delivery(&mut self, ctx: &DeliveryCtx, payload: &mut BeaconPayload) -> DeliveryFate {
        self.inner.on_delivery(ctx, payload)
    }

    fn post_delivery(&mut self, obs: &DeliveryObs<'_>) {
        self.inner.post_delivery(obs);
    }

    fn on_bp_end(&mut self, view: &BpView<'_>) {
        self.inner.on_bp_end(view);
    }

    fn on_run_end(&mut self, result: &RunResult) {
        self.inner.on_run_end(result);
    }
}

/// Index-wise diff of the regenerated stream against the recording; the
/// first mismatch becomes a [`Divergence`].
fn diff_streams(expected: &[TraceEvent], recorded: &[TraceEvent]) -> Option<Divergence> {
    let n = expected.len().max(recorded.len());
    for i in 0..n {
        let (e, r) = (expected.get(i), recorded.get(i));
        if e == r {
            continue;
        }
        let probe = r.or(e).expect("at least one stream has an event here");
        return Some(Divergence {
            bp: r
                .and_then(TraceEvent::bp)
                .or(e.and_then(TraceEvent::bp))
                .unwrap_or(0),
            kind: probe.kind_token().to_string(),
            expected: e.map_or_else(|| "end of stream".to_string(), render_event),
            recorded: r.map_or_else(|| "end of stream".to_string(), render_event),
        });
    }
    None
}

/// Re-execute a recorded schedule and cross-check it against the live
/// model. Deterministic: the same trace always yields the same report.
pub fn replay(schedule: &RecordedSchedule) -> ReplayReport {
    let scenario = schedule.case.scenario();
    let mut hook = ReplayHook {
        inner: TracedHarness {
            harness: FaultHarness::new(&schedule.case.plan, &scenario),
            recorder: TraceRecorder::new(),
            violations_seen: 0,
        },
        schedule,
        window_divergences: Vec::new(),
    };
    let result = Network::build(&scenario).run_with_hook(&mut hook);
    let ReplayHook {
        inner,
        window_divergences: mut divergences,
        ..
    } = hook;
    let TracedHarness {
        harness, recorder, ..
    } = inner;
    let events = recorder.into_events();
    if let Some(d) = diff_streams(&events, &schedule.events) {
        divergences.push(d);
    }
    // Stable: window cross-checks stay ahead of the stream diff at the
    // same BP, so `first_divergence` names the earliest observable cause.
    divergences.sort_by_key(|d| d.bp);
    ReplayReport {
        case: schedule.case.clone(),
        result,
        violations: harness.into_violations(),
        events,
        divergences,
    }
}

/// [`RecordedSchedule::parse`] + [`replay`] in one call.
pub fn replay_trace(input: &str) -> Result<ReplayReport, ReplayError> {
    Ok(replay(&RecordedSchedule::parse(input)?))
}
