//! The fault matrix: one representative plan per fault class, each run
//! under the invariant checker at the repo's quick-fidelity defaults.
//!
//! This is the table EXPERIMENTS.md's "Fault matrix" section reports and
//! the smoke run `scripts/check.sh` executes: every fault class must leave
//! all four invariants intact (a correct implementation rejects or absorbs
//! the fault; it never accepts what it must not).

use rayon::prelude::*;

use sstsp::scenario::{CampaignKind, CampaignSpec};

use crate::harness::run_case;
use crate::plan::{CorruptField, FaultEvent, FaultKind, FaultPlan, FuzzCase, MeshSpec};

/// One row of the fault matrix.
#[derive(Debug)]
pub struct MatrixRow {
    /// Fault class label.
    pub label: &'static str,
    /// The case that was run (printable as a replay spec).
    pub case: FuzzCase,
    /// Invariant violations (must be empty).
    pub violations: usize,
    /// Whether the network was synchronized under the 25 µs criterion at
    /// some point (shows the fault hit a live network).
    pub synced: bool,
    /// Peak spread observed, µs (shows the fault actually disturbed).
    pub peak_spread_us: f64,
}

fn case_with(label_seed: u64, events: Vec<FaultEvent>) -> FuzzCase {
    let mut case = FuzzCase::base(12, 30.0, 7);
    case.plan = FaultPlan {
        seed: label_seed,
        events,
    };
    case
}

/// A fault-free case carrying a coordinated-adversary campaign (and
/// optionally the bridged mesh its kind targets).
fn campaign_case(label_seed: u64, mesh: Option<MeshSpec>, campaign: CampaignSpec) -> FuzzCase {
    let mut case = case_with(label_seed, Vec::new());
    case.mesh = mesh;
    case.campaign = Some(campaign);
    case
}

/// The representative plan for every fault class. Windows sit after the
/// ~5 s election/convergence transient of a 12-station network.
pub fn matrix_cases() -> Vec<(&'static str, FuzzCase)> {
    let ev = |start_bp, end_bp, kind| FaultEvent {
        start_bp,
        end_bp,
        kind,
    };
    vec![
        (
            "burst loss 90 % for 5 s",
            case_with(1, vec![ev(80, 130, FaultKind::BurstLoss { p: 0.9 })]),
        ),
        (
            "timestamp bit-flips 50 %",
            case_with(
                2,
                vec![ev(
                    80,
                    130,
                    FaultKind::Corrupt {
                        field: CorruptField::Timestamp,
                        p: 0.5,
                    },
                )],
            ),
        ),
        (
            "MAC bit-flips 50 %",
            case_with(
                3,
                vec![ev(
                    80,
                    130,
                    FaultKind::Corrupt {
                        field: CorruptField::Mac,
                        p: 0.5,
                    },
                )],
            ),
        ),
        (
            "disclosed-key bit-flips 50 %",
            case_with(
                4,
                vec![ev(
                    80,
                    130,
                    FaultKind::Corrupt {
                        field: CorruptField::Disclosed,
                        p: 0.5,
                    },
                )],
            ),
        ),
        (
            "beacon truncation 50 %",
            case_with(
                5,
                vec![ev(
                    80,
                    130,
                    FaultKind::Corrupt {
                        field: CorruptField::Truncate,
                        p: 0.5,
                    },
                )],
            ),
        ),
        (
            "node crash + rejoin",
            case_with(
                6,
                vec![ev(
                    100,
                    100,
                    FaultKind::Crash {
                        node: 3,
                        rejoin_after_bps: Some(50),
                    },
                )],
            ),
        ),
        (
            "reference kill + rejoin",
            case_with(
                7,
                vec![ev(
                    100,
                    100,
                    FaultKind::KillReference {
                        rejoin_after_bps: Some(80),
                    },
                )],
            ),
        ),
        (
            "clock step −1 ms",
            case_with(
                8,
                vec![ev(
                    100,
                    100,
                    FaultKind::ClockStep {
                        node: 2,
                        delta_us: -1000.0,
                    },
                )],
            ),
        ),
        (
            "clock freeze for 8 s",
            case_with(9, vec![ev(100, 180, FaultKind::ClockFreeze { node: 2 })]),
        ),
        (
            "µTESLA disclosure loss 80 %",
            case_with(10, vec![ev(80, 130, FaultKind::DisclosureLoss { p: 0.8 })]),
        ),
        (
            "jamming for 4 s",
            case_with(11, vec![ev(100, 140, FaultKind::Jam)]),
        ),
        (
            "chain exhaustion at 20 s",
            case_with(
                12,
                vec![ev(200, 300, FaultKind::ChainExhaust { intervals: 200 })],
            ),
        ),
        (
            "coalition: fast-beacon + replay ×3",
            campaign_case(
                13,
                None,
                CampaignSpec {
                    kind: CampaignKind::Coalition {
                        error_us: 800.0,
                        delay_bps: 2,
                    },
                    attackers: 3,
                    start_s: 10.0,
                    end_s: 20.0,
                },
            ),
        ),
        (
            "Sybil candidacy flood (bridged)",
            campaign_case(
                14,
                Some(MeshSpec::Bridged {
                    domains: 2,
                    cols: 3,
                    rows: 2,
                }),
                // The window covers t = 0 so the flood contests the
                // initial per-domain election (candidacy beacons only
                // fire while an election is open).
                CampaignSpec {
                    kind: CampaignKind::SybilFlood { error_us: 1500.0 },
                    attackers: 2,
                    start_s: 0.0,
                    end_s: 15.0,
                },
            ),
        ),
        (
            "reference-slot jammer (bridged)",
            campaign_case(
                15,
                Some(MeshSpec::Bridged {
                    domains: 2,
                    cols: 3,
                    rows: 2,
                }),
                CampaignSpec {
                    kind: CampaignKind::RefSlotJam,
                    attackers: 1,
                    start_s: 10.0,
                    end_s: 20.0,
                },
            ),
        ),
    ]
}

/// Run the full matrix, returning one row per fault class.
///
/// Rows are computed in parallel on the current rayon pool — each case is
/// a pure function of its plan, and `collect` preserves input order — so
/// the table is byte-identical to a sequential run at any pool size.
pub fn run_matrix() -> Vec<MatrixRow> {
    let cases = matrix_cases();
    cases
        .par_iter()
        .map(|&(label, ref case)| {
            let outcome = run_case(case);
            MatrixRow {
                label,
                violations: outcome.violations.len(),
                synced: outcome.result.sync_latency_s.is_some(),
                peak_spread_us: outcome.result.peak_spread_us,
                case: case.clone(),
            }
        })
        .collect()
}
